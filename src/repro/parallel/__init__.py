"""Parallel execution helpers.

Generating and parsing a thousand-report corpus is embarrassingly parallel.
:func:`parallel_map` provides an ordered, chunked map over a worker pool
(processes by default, threads on request) with a transparent serial
fallback so all code paths stay debuggable and deterministic.
"""

from .executor import ParallelConfig, parallel_map, parallel_starmap
from .chunking import chunk_indices, split_evenly

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "parallel_starmap",
    "chunk_indices",
    "split_evenly",
]
