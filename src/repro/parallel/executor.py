"""Ordered parallel map with chunking.

The executor keeps the public contract simple:

* results are returned in input order regardless of completion order,
* exceptions raised by a worker propagate to the caller,
* ``max_workers <= 1`` (or very small inputs) run serially in-process,
  which keeps unit tests fast and stack traces readable,
* thread and process back-ends share one code path.

Process pools require picklable callables; the corpus generator and parser
pass module-level functions, satisfying that constraint.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from ..errors import ReproError
from ..obs.trace import get_tracer
from .chunking import chunk_indices

__all__ = ["ParallelConfig", "parallel_map", "parallel_starmap"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of the worker pool.

    Attributes
    ----------
    max_workers:
        Number of workers.  ``0`` or ``1`` selects the serial fallback.
        ``None`` uses ``os.cpu_count()``.
    backend:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.
    chunk_size:
        Items handed to a worker per task; larger chunks amortise IPC cost.
    serial_threshold:
        Inputs up to this size always run serially (pool start-up costs more
        than the work itself for small corpora).
    """

    max_workers: int | None = None
    backend: str = "process"
    chunk_size: int = 32
    serial_threshold: int = 64

    def __post_init__(self) -> None:
        if self.backend not in ("process", "thread", "serial"):
            raise ReproError(f"unknown parallel backend {self.backend!r}")
        if self.chunk_size < 1:
            raise ReproError("chunk_size must be >= 1")
        if self.max_workers is not None and self.max_workers < 0:
            raise ReproError("max_workers must be >= 0")

    @property
    def effective_workers(self) -> int:
        if self.backend == "serial":
            return 1
        if self.max_workers is None:
            return max(os.cpu_count() or 1, 1)
        return max(self.max_workers, 1)


def _apply_chunk(func: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    return [func(item) for item in chunk]


def _apply_star_chunk(func: Callable[..., R], chunk: Sequence[tuple]) -> list[R]:
    return [func(*args) for args in chunk]


def _run_chunked(
    chunk_worker: Callable,
    func: Callable,
    items: Sequence,
    config: ParallelConfig,
) -> list:
    items = list(items)
    n = len(items)
    serial = (
        config.backend == "serial"
        or config.effective_workers <= 1
        or n <= config.serial_threshold
    )
    with get_tracer().span(
        "parallel.map",
        func=getattr(func, "__name__", repr(func)),
        n=n,
        backend="serial" if serial else config.backend,
        workers=1 if serial else config.effective_workers,
    ):
        if serial:
            return chunk_worker(func, items)

        chunks = [items[a:b] for a, b in chunk_indices(n, config.chunk_size)]
        executor_cls = (
            ProcessPoolExecutor if config.backend == "process" else ThreadPoolExecutor
        )
        results: list = []
        with executor_cls(max_workers=config.effective_workers) as pool:
            futures = [pool.submit(chunk_worker, func, chunk) for chunk in chunks]
            for future in futures:  # preserves submission (input) order
                results.extend(future.result())
        return results


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``func`` to every item, preserving input order."""
    return _run_chunked(_apply_chunk, func, list(items), config or ParallelConfig())


def parallel_starmap(
    func: Callable[..., R],
    argument_tuples: Iterable[tuple],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``func(*args)`` to every argument tuple, preserving input order."""
    return _run_chunked(
        _apply_star_chunk, func, list(argument_tuples), config or ParallelConfig()
    )
