"""Work partitioning helpers for the parallel executor."""

from __future__ import annotations

from typing import Sequence, TypeVar

from ..errors import ReproError

__all__ = ["chunk_indices", "split_evenly"]

T = TypeVar("T")


def chunk_indices(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into contiguous ``[start, stop)`` chunks."""
    if chunk_size < 1:
        raise ReproError("chunk_size must be >= 1")
    if total < 0:
        raise ReproError("total must be >= 0")
    return [(start, min(start + chunk_size, total)) for start in range(0, total, chunk_size)]


def split_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split ``items`` into ``parts`` lists whose sizes differ by at most one.

    Empty tails are kept so the result always has exactly ``parts`` entries,
    which simplifies mapping results back to workers.
    """
    if parts < 1:
        raise ReproError("parts must be >= 1")
    items = list(items)
    n = len(items)
    base, remainder = divmod(n, parts)
    chunks: list[list[T]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        chunks.append(items[start: start + size])
        start += size
    return chunks
