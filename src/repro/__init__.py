"""repro — reproduction of "16 Years of SPEC Power" (CLUSTER 2024).

The package is organised in three layers:

1. **Substrates** that stand in for unavailable dependencies and data:
   :mod:`repro.frame` (columnar tables), :mod:`repro.stats`,
   :mod:`repro.plotting`, :mod:`repro.parallel`, :mod:`repro.powermodel`,
   :mod:`repro.simulator`, :mod:`repro.market`, :mod:`repro.reportgen`,
   :mod:`repro.speccpu`.
2. **Parsing** of SPEC-style result files: :mod:`repro.parser`.
3. **The paper's analysis**: :mod:`repro.core` (dataset assembly, filter
   pipeline, metrics, trends, figures, tables, report).

Quickstart
----------
A :class:`repro.session.Session` fronts the whole pipeline: stages are
lazy, composable methods whose results are content-hash cached in a
workspace directory::

    from repro import Session

    with Session(workspace="ws/") as session:
        runs = session.dataset(runs=120, seed=7).result()
        result = session.analysis().result()
        print(result.summary())

(The module-level ``quick_dataset``/``analyze``/... functions still work,
but are deprecated shims over the session layer.)
"""

from __future__ import annotations

from .errors import ReproError
from .frame import Column, Frame, concat, read_csv
from .units import MonthDate

from .api import (
    quick_dataset,
    generate_corpus,
    parse_corpus,
    load_dataset,
    analyze,
    run_campaign,
    AnalysisResult,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "ReproError",
    "Column",
    "Frame",
    "concat",
    "read_csv",
    "MonthDate",
    "quick_dataset",
    "generate_corpus",
    "parse_corpus",
    "load_dataset",
    "analyze",
    "run_campaign",
    "AnalysisResult",
    "Session",
    "ExecutionPolicy",
]

_SESSION_EXPORTS = {"Session", "ExecutionPolicy"}


def __getattr__(name: str):
    # The session layer pulls in the campaign/parser/simulator stack; load
    # it lazily so ``import repro`` stays light for frame-only consumers.
    if name in _SESSION_EXPORTS:
        from . import session as _session_pkg

        value = getattr(_session_pkg, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
