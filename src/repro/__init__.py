"""repro — reproduction of "16 Years of SPEC Power" (CLUSTER 2024).

The package is organised in three layers:

1. **Substrates** that stand in for unavailable dependencies and data:
   :mod:`repro.frame` (columnar tables), :mod:`repro.stats`,
   :mod:`repro.plotting`, :mod:`repro.parallel`, :mod:`repro.powermodel`,
   :mod:`repro.simulator`, :mod:`repro.market`, :mod:`repro.reportgen`,
   :mod:`repro.speccpu`.
2. **Parsing** of SPEC-style result files: :mod:`repro.parser`.
3. **The paper's analysis**: :mod:`repro.core` (dataset assembly, filter
   pipeline, metrics, trends, figures, tables, report).

Quickstart
----------
``quick_dataset`` produces a small synthetic corpus already parsed into a
run table; ``analyze`` runs the full paper pipeline over it::

    from repro import quick_dataset, analyze

    runs = quick_dataset(n_runs=120, seed=7)
    result = analyze(runs)
    print(result.summary())
"""

from __future__ import annotations

from .errors import ReproError
from .frame import Column, Frame, concat, read_csv
from .units import MonthDate

from .api import (
    quick_dataset,
    generate_corpus,
    parse_corpus,
    load_dataset,
    analyze,
    run_campaign,
    AnalysisResult,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "Column",
    "Frame",
    "concat",
    "read_csv",
    "MonthDate",
    "quick_dataset",
    "generate_corpus",
    "parse_corpus",
    "load_dataset",
    "analyze",
    "run_campaign",
    "AnalysisResult",
]
