"""Deterministic fault injection and retry policy for the campaign plane.

The package has two halves that meet in the streaming runner:

* :mod:`repro.faults.plan` — the injection harness: a seeded
  :class:`FaultPlan` of site x trigger x kind rules, installed via
  ``REPRO_FAULTS`` or :func:`install_fault_plan`, probed from the real
  code paths through :func:`fault_point`;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, the declarative
  retry/backoff/quarantine contract the runner applies when a unit
  fails, injected or real.
"""

from __future__ import annotations

from ..errors import InjectedFault
from .plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    clear_fault_plan,
    fault_plan_from_env,
    fault_point,
    install_fault_plan,
    resolve_fault_plan,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "fault_point",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "resolve_fault_plan",
    "fault_plan_from_env",
]
