"""Retry policy: capped exponential backoff with deterministic jitter.

:class:`RetryPolicy` is the declarative half of the campaign plane's
failure handling — *how many times* a failing unit is re-attempted, *how
long* to wait between rounds, and *when* a unit is given up on and
quarantined (recorded in the store's ``quarantine.jsonl``; see
:mod:`repro.campaign.sharding`).  It lives in :mod:`repro.faults` rather
than :mod:`repro.campaign` so :class:`~repro.session.policy.ExecutionPolicy`
can carry one without an import cycle.

Jitter is deterministic: the delay for a retry round is a pure function of
``(salt, attempt)``, so two runs of the same plan wait the same amount —
chaos tests replay bit-identically, and a fleet of workers retrying the
same shard still decorrelates because each salts with its own identity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import CampaignError

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How failing campaign units are re-attempted before quarantine.

    Attributes
    ----------
    max_attempts:
        Total attempts per unit (first try included).  ``1`` disables
        retries entirely — every failure goes straight to the ledger (and,
        if it keeps a shard incomplete, to quarantine).
    backoff_base:
        Delay before the first retry round, in seconds.
    backoff_cap:
        Upper bound on any single round's delay.
    jitter:
        Fraction of the delay randomised (deterministically, from the
        salt) to decorrelate concurrent retriers; ``0`` disables.
    shard_retry_budget:
        Upper bound on *retry attempts* (attempts beyond each unit's
        first) spent within one shard — a shard where everything fails
        must not multiply the sweep's cost by ``max_attempts``.  ``None``
        is unbounded.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    shard_retry_budget: int | None = 256

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise CampaignError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise CampaignError("jitter must be within [0, 1]")
        if self.shard_retry_budget is not None and self.shard_retry_budget < 0:
            raise CampaignError("shard_retry_budget must be >= 0")

    def delay(self, attempt: int, salt: str = "") -> float:
        """Seconds to wait before retry round ``attempt`` (1-based).

        Capped exponential: ``base * 2**(attempt-1)``, bounded by
        ``backoff_cap``, with a deterministic jitter drawn from
        ``(salt, attempt)`` scaling the delay into
        ``[1 - jitter, 1] * full``.
        """
        if attempt < 1:
            return 0.0
        full = min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
        if self.jitter <= 0.0 or full <= 0.0:
            return full
        draw = random.Random(f"{salt}:{attempt}").random()
        return full * (1.0 - self.jitter * draw)


#: The streaming runner's default: two retries with sub-second backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()
