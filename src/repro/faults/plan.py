"""Deterministic, seeded fault injection for the campaign/service plane.

A :class:`FaultPlan` is a registry of :class:`FaultRule`\\ s: named *sites*
(hook points threaded through the real code paths — unit execution, shard
flush, ledger append, artifact read, service socket reads) crossed with
*triggers* (fire on the nth call to the site, or with a seeded
probability) and *kinds*:

``raise``
    raise :class:`~repro.errors.InjectedFault` at the site — the loud
    failure every per-unit/per-shard error path must capture,
``partial_write``
    at a write site, truncate the bytes actually written to ``fraction``
    of their length *without* raising — silent corruption, exactly what
    checksums and the corrupt-line-tolerant readers must catch,
``delay``
    sleep ``delay_s`` at the site — hung-socket and slow-worker
    scenarios,
``kill``
    ``SIGKILL`` the current process at the site — the crash-mid-window
    scenarios the lease/recovery protocol exists for.

Determinism: probability triggers draw from one seeded
:class:`random.Random` per (rule, site-call-counter) pair, and ``nth``
triggers count calls per site, so a plan replays identically run to run —
a failing chaos test reproduces with the same plan and seed.

Production cost: injection is enabled only when a plan is installed
(``REPRO_FAULTS`` env or :func:`install_fault_plan`); with no plan the
hook is one module-global ``is None`` check (gated ≤5% analytically in
``benchmarks/test_bench_faults.py``, same style as the tracing gate).

``REPRO_FAULTS`` accepts inline JSON or a path to a JSON file::

    REPRO_FAULTS='{"seed": 7, "rules": [
        {"site": "unit.execute", "kind": "raise", "nth": 3}
    ]}'

Known sites (``ctx`` is the per-call context string rules can ``where``-
match against):

==================  =====================================================
site                fires
==================  =====================================================
``unit.execute``    once per unit result round-trip (ctx: unit key)
``batch.run``       once per vectorized batch chunk (falls back to scalar)
``shard.flush``     once per shard artifact write (ctx: ``shard<i>``)
``artifact.read``   once per shard artifact load (ctx: artifact key)
``jsonl.append``    once per ledger/event append (ctx: file name)
``service.read``    once per service request read (ctx: client address)
==================  =====================================================
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import CampaignError, InjectedFault

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "resolve_fault_plan",
    "fault_plan_from_env",
]

FAULT_KINDS = ("raise", "partial_write", "delay", "kill")


@dataclass(frozen=True)
class FaultRule:
    """One site x trigger x kind injection rule.

    ``nth`` fires on exactly the nth call to the site (1-based);
    ``probability`` fires on each call with that seeded probability; a rule
    with neither fires on every call.  ``times`` caps total firings
    (``None`` = unlimited), ``where`` restricts firing to calls whose
    context string contains the substring — how a plan poisons one
    specific unit key or one specific ledger file.
    """

    site: str
    kind: str
    nth: int | None = None
    probability: float | None = None
    times: int | None = None
    where: str | None = None
    delay_s: float = 0.05
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise CampaignError(
                f"unknown fault kind {self.kind!r}; valid kinds: {FAULT_KINDS}"
            )
        if self.nth is not None and self.nth < 1:
            raise CampaignError(f"fault nth must be >= 1, got {self.nth}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise CampaignError("fault probability must be within [0, 1]")
        if not 0.0 < self.fraction < 1.0:
            raise CampaignError("partial-write fraction must be within (0, 1)")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"unknown fault rule fields: {sorted(unknown)}")
        if "site" not in data or "kind" not in data:
            raise CampaignError("a fault rule needs at least 'site' and 'kind'")
        return cls(**{str(k): v for k, v in data.items()})


class FaultPlan:
    """A set of rules plus the per-site call accounting that triggers them.

    Thread-safe: concurrent sites (service handler threads, the executor)
    share one counter table under a lock.  Worker *processes* re-resolve
    the plan from ``REPRO_FAULTS`` independently — each process replays
    its own deterministic schedule.
    """

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0):
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.counters: dict[str, int] = {}
        self.fired: list[tuple[str, str, int]] = []  # (site, kind, call_no)
        self._lock = threading.Lock()

    def to_dict(self) -> dict[str, Any]:
        rules = []
        for rule in self.rules:
            entry: dict[str, Any] = {"site": rule.site, "kind": rule.kind}
            for name in ("nth", "probability", "times", "where"):
                value = getattr(rule, name)
                if value is not None:
                    entry[name] = value
            if rule.kind == "delay":
                entry["delay_s"] = rule.delay_s
            if rule.kind == "partial_write":
                entry["fraction"] = rule.fraction
            rules.append(entry)
        return {"seed": self.seed, "rules": rules}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        rules_data = data.get("rules", [])
        if not isinstance(rules_data, list):
            raise CampaignError("fault plan 'rules' must be a list")
        rules = [FaultRule.from_dict(entry) for entry in rules_data]
        return cls(rules, seed=int(data.get("seed", 0)))

    # ------------------------------------------------------------------ #
    def _fired_count(self, rule: FaultRule) -> int:
        return sum(1 for site, kind, _ in self.fired if site == rule.site and kind == rule.kind)

    def check(self, site: str, ctx: str = "") -> FaultRule | None:
        """Advance the site's call counter; return the rule that fires, if any.

        At most one rule fires per call (first match in plan order), so a
        plan's behaviour is independent of dict/set iteration order.
        """
        with self._lock:
            call_no = self.counters.get(site, 0) + 1
            self.counters[site] = call_no
            for rule in self.rules:
                if rule.site != site:
                    continue
                if rule.where is not None and rule.where not in ctx:
                    continue
                if rule.times is not None and self._fired_count(rule) >= rule.times:
                    continue
                if rule.nth is not None:
                    if call_no != rule.nth:
                        continue
                elif rule.probability is not None:
                    # One deterministic draw per (seed, rule identity, call):
                    # replaying the same plan replays the same schedule.
                    draw = random.Random(
                        f"{self.seed}:{rule.site}:{rule.kind}:{rule.where}:{call_no}"
                    ).random()
                    if draw >= rule.probability:
                        continue
                self.fired.append((site, rule.kind, call_no))
                return rule
        return None


# --------------------------------------------------------------------------- #
# The process-wide active plan and the hook the instrumented sites call
# --------------------------------------------------------------------------- #
_active_plan: FaultPlan | None = None
_install_lock = threading.Lock()


def fault_plan_from_env(environ: Mapping[str, str] | None = None) -> FaultPlan | None:
    """The plan ``REPRO_FAULTS`` asks for, or ``None`` when unset."""
    env = os.environ if environ is None else environ
    spec = env.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    return resolve_fault_plan(spec)


def resolve_fault_plan(spec: "FaultPlan | str | Mapping[str, Any]") -> FaultPlan:
    """A :class:`FaultPlan` from a plan, inline JSON, a JSON file path or a dict."""
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, Mapping):
        return FaultPlan.from_dict(spec)
    text = spec.strip()
    if not text.startswith("{"):
        try:
            text = open(text, encoding="utf-8").read()
        except OSError as exc:
            raise CampaignError(f"cannot read fault plan file {spec!r}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CampaignError(f"malformed fault plan JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise CampaignError("a fault plan must be a JSON object")
    return FaultPlan.from_dict(data)


def install_fault_plan(
    plan: "FaultPlan | str | Mapping[str, Any] | None",
) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previously active plan.

    ``None`` uninstalls.  Callers that install a scoped plan (a policy-
    driven campaign run) restore the returned previous plan afterwards.
    """
    global _active_plan
    with _install_lock:
        previous = _active_plan
        _active_plan = None if plan is None else resolve_fault_plan(plan)
        return previous


def clear_fault_plan() -> None:
    """Uninstall any active plan (tests; idempotent)."""
    install_fault_plan(None)


def active_fault_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _active_plan


def fault_point(site: str, ctx: str = "") -> FaultRule | None:
    """Injection hook threaded through the real code paths.

    With no plan installed this is one global ``is None`` check — the
    production path.  With a plan, the firing rule's kind is applied:
    ``raise``/``delay``/``kill`` are handled here; a ``partial_write``
    rule is *returned* so the write site can tear its own bytes (only
    write sites honour it — elsewhere it is a no-op).
    """
    plan = _active_plan
    if plan is None:
        return None
    rule = plan.check(site, ctx)
    if rule is None:
        return None
    if rule.kind == "raise":
        raise InjectedFault(f"injected fault at {site}" + (f" ({ctx})" if ctx else ""))
    if rule.kind == "delay":
        time.sleep(rule.delay_s)
        return None
    if rule.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    return rule  # partial_write: the caller applies the truncation


# Resolve REPRO_FAULTS once at import: the instrumented modules import this
# module anyway, and eager resolution keeps fault_point a single global read.
_env_plan = fault_plan_from_env()
if _env_plan is not None:  # pragma: no cover - exercised via subprocess tests
    _active_plan = _env_plan
del _env_plan
