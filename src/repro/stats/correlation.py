"""Correlation measures for the Section IV feature exploration.

The paper explores correlations between run features (core count, nominal
frequency, TDP, idle fraction, ...) for runs since 2021 and finds them
confounded by vendor lineups.  :func:`correlation_matrix` reproduces that
exploration over a :class:`repro.frame.Frame`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import StatsError
from ..frame import Frame

__all__ = ["pearson", "spearman", "correlation_matrix", "CorrelationResult"]


def _paired(x: Iterable[float], y: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray([np.nan if v is None else float(v) for v in x], dtype=np.float64)
    ya = np.asarray([np.nan if v is None else float(v) for v in y], dtype=np.float64)
    if len(xa) != len(ya):
        raise StatsError("x and y must have the same length")
    keep = ~(np.isnan(xa) | np.isnan(ya))
    return xa[keep], ya[keep]


def pearson(x: Iterable[float], y: Iterable[float]) -> float:
    """Pearson product-moment correlation coefficient.

    Returns NaN for fewer than two points or zero variance.
    """
    xa, ya = _paired(x, y)
    if len(xa) < 2:
        return float("nan")
    xs = xa - xa.mean()
    ys = ya - ya.mean()
    denom = np.sqrt(np.sum(xs**2) * np.sum(ys**2))
    if denom == 0:
        return float("nan")
    return float(np.sum(xs * ys) / denom)


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their rank range)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    i = 0
    sorted_values = values[order]
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        ranks[order[i: j + 1]] = average_rank
        i = j + 1
    return ranks


def spearman(x: Iterable[float], y: Iterable[float]) -> float:
    """Spearman rank correlation (Pearson correlation of ranks)."""
    xa, ya = _paired(x, y)
    if len(xa) < 2:
        return float("nan")
    return pearson(_rank(xa), _rank(ya))


@dataclass(frozen=True)
class CorrelationResult:
    """Pairwise correlation matrix over a set of numeric features."""

    features: tuple[str, ...]
    matrix: np.ndarray
    method: str
    n: int

    def value(self, a: str, b: str) -> float:
        """Correlation between two named features."""
        try:
            i, j = self.features.index(a), self.features.index(b)
        except ValueError as exc:
            raise StatsError(f"unknown feature in correlation result: {exc}") from None
        return float(self.matrix[i, j])

    def strongest_pairs(self, limit: int = 10) -> list[tuple[str, str, float]]:
        """Feature pairs ordered by absolute correlation, strongest first."""
        pairs = []
        for i in range(len(self.features)):
            for j in range(i + 1, len(self.features)):
                value = float(self.matrix[i, j])
                if not np.isnan(value):
                    pairs.append((self.features[i], self.features[j], value))
        pairs.sort(key=lambda item: -abs(item[2]))
        return pairs[:limit]

    def to_frame(self) -> Frame:
        """The matrix as a frame with a ``feature`` key column."""
        data: dict[str, list] = {"feature": list(self.features)}
        for j, name in enumerate(self.features):
            data[name] = [float(self.matrix[i, j]) for i in range(len(self.features))]
        return Frame.from_dict(data)


def correlation_matrix(
    frame: Frame, features: Sequence[str], method: str = "pearson"
) -> CorrelationResult:
    """Pairwise correlations between numeric columns of ``frame``."""
    if method not in ("pearson", "spearman"):
        raise StatsError(f"unknown correlation method {method!r}")
    func = pearson if method == "pearson" else spearman
    columns = []
    for name in features:
        if name not in frame:
            raise StatsError(f"unknown column {name!r} for correlation matrix")
        column = frame[name]
        if column.kind not in ("float", "int", "bool"):
            raise StatsError(f"column {name!r} is not numeric")
        columns.append(column.to_list())
    k = len(features)
    matrix = np.eye(k, dtype=np.float64)
    for i in range(k):
        for j in range(i + 1, k):
            value = func(columns[i], columns[j])
            matrix[i, j] = matrix[j, i] = value
    return CorrelationResult(tuple(features), matrix, method, len(frame))
