"""Year binning and era comparisons.

All figures in the paper plot statistics against the *hardware availability
date*, binned by calendar year.  The headline scalar comparisons contrast
"eras": e.g. mean full-load power per socket of runs up to 2010 vs runs since
2022.  This module provides both helpers on top of :class:`repro.frame.Frame`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import StatsError
from ..frame import Frame
from .descriptive import Summary, summarize

__all__ = ["year_bins", "bin_by_year", "EraComparison", "compare_eras"]


def year_bins(frame: Frame, date_column: str = "hw_avail_year") -> list[int]:
    """Sorted list of distinct years present in ``date_column``."""
    if date_column not in frame:
        raise StatsError(f"no column {date_column!r} in frame")
    years = sorted({int(v) for v in frame[date_column].to_list() if v is not None})
    return years


def bin_by_year(
    frame: Frame,
    value_column: str,
    date_column: str = "hw_avail_year",
    group_columns: Sequence[str] = (),
) -> Frame:
    """Per-year (optionally per extra group) summary statistics of a column.

    Returns a frame with the grouping keys plus ``count``, ``mean``, ``std``,
    ``median``, ``q25``, ``q75``, ``min`` and ``max`` — the statistics the
    figures plot.
    """
    for name in (value_column, date_column, *group_columns):
        if name not in frame:
            raise StatsError(f"no column {name!r} in frame")
    keys = [date_column, *group_columns]

    def _stats(sub: Frame) -> Mapping[str, float]:
        summary = summarize(sub[value_column].to_list())
        return {
            "count": summary.count,
            "mean": summary.mean,
            "std": summary.std,
            "median": summary.median,
            "q25": summary.q25,
            "q75": summary.q75,
            "min": summary.minimum,
            "max": summary.maximum,
        }

    result = frame.groupby(keys).apply(_stats)
    return result.sort_by(keys)


@dataclass(frozen=True)
class EraComparison:
    """Comparison of a metric between two date ranges ("eras")."""

    metric: str
    early_label: str
    late_label: str
    early: Summary
    late: Summary

    @property
    def ratio(self) -> float:
        """late mean / early mean (the "~2.5x" style numbers in the paper)."""
        if self.early.mean == 0 or np.isnan(self.early.mean):
            return float("nan")
        return self.late.mean / self.early.mean

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.early_label} mean {self.early.mean:.1f} "
            f"(n={self.early.count}) vs {self.late_label} mean {self.late.mean:.1f} "
            f"(n={self.late.count}), ratio {self.ratio:.2f}x"
        )


def compare_eras(
    frame: Frame,
    value_column: str,
    early: tuple[int | None, int | None],
    late: tuple[int | None, int | None],
    date_column: str = "hw_avail_year",
    metric_name: str | None = None,
) -> EraComparison:
    """Compare the mean of ``value_column`` between two year ranges.

    Each era is an inclusive ``(first_year, last_year)`` pair; ``None`` means
    unbounded on that side.  The paper's "runs up to 2010" era is
    ``(None, 2010)`` and "since 2022" is ``(2022, None)``.
    """
    if value_column not in frame or date_column not in frame:
        raise StatsError("value or date column missing from frame")

    years = frame[date_column]

    def era_mask(bounds: tuple[int | None, int | None]) -> np.ndarray:
        low, high = bounds
        mask = years.notna()
        if low is not None:
            mask &= years >= low
        if high is not None:
            mask &= years <= high
        return mask

    early_values = frame.filter(era_mask(early))[value_column].to_list()
    late_values = frame.filter(era_mask(late))[value_column].to_list()

    def label(bounds: tuple[int | None, int | None]) -> str:
        low, high = bounds
        if low is None and high is not None:
            return f"<= {high}"
        if high is None and low is not None:
            return f">= {low}"
        if low is None and high is None:
            return "all"
        return f"{low}-{high}"

    return EraComparison(
        metric=metric_name or value_column,
        early_label=label(early),
        late_label=label(late),
        early=summarize(early_values),
        late=summarize(late_values),
    )
