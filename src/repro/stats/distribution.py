"""Distribution summaries: quantiles, box-plot statistics and histograms.

Figure 4 of the paper shows the *distribution* of relative efficiency per
year/vendor bin (drawn as box-like summaries).  The plotting layer consumes
:class:`BoxStats` produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import StatsError

__all__ = ["BoxStats", "box_stats", "Histogram", "histogram", "empirical_cdf", "quantiles"]


def _clean(values: Iterable[float]) -> np.ndarray:
    array = np.asarray(
        [np.nan if v is None else float(v) for v in values], dtype=np.float64
    )
    return array[~np.isnan(array)]


@dataclass(frozen=True)
class BoxStats:
    """Tukey box-plot statistics of a sample."""

    count: int
    median: float
    q25: float
    q75: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q75 - self.q25


def box_stats(values: Iterable[float], whisker: float = 1.5) -> BoxStats:
    """Compute box-plot statistics with Tukey whiskers.

    Whiskers extend to the most extreme data point within ``whisker`` times
    the inter-quartile range of the quartiles; points beyond are outliers.
    """
    data = _clean(values)
    if len(data) == 0:
        nan = float("nan")
        return BoxStats(0, nan, nan, nan, nan, nan, ())
    q25 = float(np.quantile(data, 0.25))
    q75 = float(np.quantile(data, 0.75))
    iqr = q75 - q25
    low_limit = q25 - whisker * iqr
    high_limit = q75 + whisker * iqr
    inside = data[(data >= low_limit) & (data <= high_limit)]
    # Whiskers extend outward from the quartile box, never inside it (the
    # quartiles are interpolated and need not coincide with data points).
    whisker_low = min(float(np.min(inside)), q25) if len(inside) else q25
    whisker_high = max(float(np.max(inside)), q75) if len(inside) else q75
    outliers = tuple(float(v) for v in data[(data < low_limit) | (data > high_limit)])
    return BoxStats(
        count=int(len(data)),
        median=float(np.median(data)),
        q25=q25,
        q75=q75,
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


@dataclass(frozen=True)
class Histogram:
    """Histogram bin edges and counts."""

    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    def densities(self) -> list[float]:
        """Counts normalised so the histogram integrates to one."""
        total = self.total
        if total == 0:
            return [0.0] * len(self.counts)
        widths = np.diff(np.asarray(self.edges))
        return [
            count / (total * width) if width > 0 else 0.0
            for count, width in zip(self.counts, widths)
        ]


def histogram(values: Iterable[float], bins: int = 10,
              value_range: tuple[float, float] | None = None) -> Histogram:
    """Fixed-width histogram of a sample (NaN / None dropped)."""
    if bins < 1:
        raise StatsError("histogram requires at least one bin")
    data = _clean(values)
    if len(data) == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return Histogram(tuple(float(e) for e in edges), tuple([0] * bins))
    counts, edges = np.histogram(data, bins=bins, range=value_range)
    return Histogram(tuple(float(e) for e in edges), tuple(int(c) for c in counts))


def empirical_cdf(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Sorted sample values and their empirical cumulative probabilities."""
    data = np.sort(_clean(values))
    if len(data) == 0:
        return np.array([]), np.array([])
    probabilities = np.arange(1, len(data) + 1, dtype=np.float64) / len(data)
    return data, probabilities


def quantiles(values: Iterable[float], qs: Sequence[float]) -> list[float]:
    """Multiple quantiles at once (NaN for empty input)."""
    data = _clean(values)
    if len(data) == 0:
        return [float("nan")] * len(qs)
    return [float(np.quantile(data, q)) for q in qs]
