"""Statistics used by the SPEC Power trend analysis.

The paper's analysis relies on a handful of statistical tools:

* descriptive statistics per year bin (means, standard deviations,
  percentiles) — :mod:`repro.stats.descriptive`,
* ordinary least squares regression (used both for trend lines and for the
  extrapolated active-idle power of Section IV) —
  :mod:`repro.stats.regression`,
* correlation coefficients for the Section IV exploration of run features —
  :mod:`repro.stats.correlation`,
* year binning and era comparisons — :mod:`repro.stats.binning`,
* distribution summaries (quantiles, box-plot statistics, histograms) used
  by Figure 4 — :mod:`repro.stats.distribution`.
"""

from .descriptive import (
    Summary,
    summarize,
    weighted_mean,
    geometric_mean,
    trimmed_mean,
)
from .regression import LinearFit, linear_fit, extrapolate_linear, theil_sen_fit
from .correlation import pearson, spearman, correlation_matrix, CorrelationResult
from .binning import year_bins, bin_by_year, EraComparison, compare_eras
from .distribution import (
    BoxStats,
    box_stats,
    histogram,
    Histogram,
    empirical_cdf,
    quantiles,
)

__all__ = [
    "Summary",
    "summarize",
    "weighted_mean",
    "geometric_mean",
    "trimmed_mean",
    "LinearFit",
    "linear_fit",
    "extrapolate_linear",
    "theil_sen_fit",
    "pearson",
    "spearman",
    "correlation_matrix",
    "CorrelationResult",
    "year_bins",
    "bin_by_year",
    "EraComparison",
    "compare_eras",
    "BoxStats",
    "box_stats",
    "histogram",
    "Histogram",
    "empirical_cdf",
    "quantiles",
]
