"""Descriptive statistics over 1-D samples."""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Iterable

import numpy as np

from ..errors import StatsError

__all__ = ["Summary", "summarize", "weighted_mean", "geometric_mean", "trimmed_mean"]


def _clean(values: Iterable[float]) -> np.ndarray:
    """Convert to a float array and drop NaN / None entries."""
    array = np.asarray(
        [np.nan if v is None else float(v) for v in values], dtype=np.float64
    )
    return array[~np.isnan(array)]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def as_dict(self) -> dict:
        return asdict(self)

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q75 - self.q25

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean, NaN when the mean is zero."""
        if self.mean == 0:
            return float("nan")
        return self.std / self.mean


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; empty input yields NaN statistics."""
    data = _clean(values)
    if len(data) == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(len(data)),
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if len(data) > 1 else 0.0,
        minimum=float(np.min(data)),
        q25=float(np.quantile(data, 0.25)),
        median=float(np.median(data)),
        q75=float(np.quantile(data, 0.75)),
        maximum=float(np.max(data)),
    )


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    """Weighted arithmetic mean; missing pairs are dropped."""
    v = np.asarray([np.nan if x is None else float(x) for x in values], dtype=np.float64)
    w = np.asarray([np.nan if x is None else float(x) for x in weights], dtype=np.float64)
    if len(v) != len(w):
        raise StatsError("values and weights must have the same length")
    keep = ~(np.isnan(v) | np.isnan(w))
    v, w = v[keep], w[keep]
    if len(v) == 0 or np.sum(w) == 0:
        return float("nan")
    return float(np.sum(v * w) / np.sum(w))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    SPEC CPU composes suite scores as geometric means of per-benchmark
    ratios; the :mod:`repro.speccpu` model reuses this helper.
    """
    data = _clean(values)
    if len(data) == 0:
        return float("nan")
    if np.any(data <= 0):
        raise StatsError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(data))))


def trimmed_mean(values: Iterable[float], proportion: float = 0.1) -> float:
    """Mean after trimming ``proportion`` of each tail."""
    if not 0 <= proportion < 0.5:
        raise StatsError("trim proportion must be in [0, 0.5)")
    data = np.sort(_clean(values))
    if len(data) == 0:
        return float("nan")
    k = int(np.floor(len(data) * proportion))
    trimmed = data[k: len(data) - k] if len(data) - 2 * k > 0 else data
    return float(np.mean(trimmed))
