"""Linear regression helpers.

The paper uses linear regression in two places:

* trend lines over hardware availability date in the figures, and
* the *extrapolated active idle power* of Section IV: the power at 0 % load
  extrapolated linearly from the measured 10 % and 20 % load points.  With
  exactly two points the fit is an exact line, so
  ``P_extrapolated(0) = 2 * P(10 %) - P(20 %)``; :func:`extrapolate_linear`
  implements the general least-squares form so more load points can be used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import StatsError

__all__ = ["LinearFit", "linear_fit", "extrapolate_linear", "theil_sen_fit"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares straight-line fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line."""
        result = self.slope * np.asarray(x, dtype=np.float64) + self.intercept
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(result)
        return result

    def __str__(self) -> str:
        return f"y = {self.slope:.6g} * x + {self.intercept:.6g} (R^2={self.r_squared:.3f}, n={self.n})"


def _paired(x: Iterable[float], y: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray([np.nan if v is None else float(v) for v in x], dtype=np.float64)
    ya = np.asarray([np.nan if v is None else float(v) for v in y], dtype=np.float64)
    if len(xa) != len(ya):
        raise StatsError("x and y must have the same length")
    keep = ~(np.isnan(xa) | np.isnan(ya))
    return xa[keep], ya[keep]


def linear_fit(x: Iterable[float], y: Iterable[float]) -> LinearFit:
    """Ordinary least squares fit of ``y`` on ``x``.

    Raises :class:`StatsError` when fewer than two valid points remain or
    when ``x`` is constant (the slope would be undefined).
    """
    xa, ya = _paired(x, y)
    n = len(xa)
    if n < 2:
        raise StatsError(f"linear fit requires at least 2 points, got {n}")
    x_mean, y_mean = xa.mean(), ya.mean()
    sxx = np.sum((xa - x_mean) ** 2)
    if sxx == 0:
        raise StatsError("linear fit requires non-constant x values")
    sxy = np.sum((xa - x_mean) * (ya - y_mean))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    residuals = ya - (slope * xa + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ya - y_mean) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(float(slope), float(intercept), float(r_squared), int(n))


def extrapolate_linear(
    x: Sequence[float], y: Sequence[float], at: float = 0.0
) -> float:
    """Extrapolate a least-squares line fitted to ``(x, y)`` to ``x = at``.

    The Section IV extrapolated idle power is
    ``extrapolate_linear([10, 20], [P10, P20], at=0)``.
    """
    fit = linear_fit(x, y)
    return float(fit.predict(at))


def theil_sen_fit(x: Iterable[float], y: Iterable[float]) -> LinearFit:
    """Robust Theil–Sen line fit (median of pairwise slopes).

    Used as a robustness check on the figure trend lines: SPEC Power data
    contains pronounced outliers (very large or very small systems) that can
    pull an OLS line.
    """
    xa, ya = _paired(x, y)
    n = len(xa)
    if n < 2:
        raise StatsError(f"Theil-Sen fit requires at least 2 points, got {n}")
    # Pairwise slopes via broadcasting; ignore pairs with identical x.
    dx = xa[:, None] - xa[None, :]
    dy = ya[:, None] - ya[None, :]
    upper = np.triu_indices(n, k=1)
    dx, dy = dx[upper], dy[upper]
    valid = dx != 0
    if not np.any(valid):
        raise StatsError("Theil-Sen fit requires non-constant x values")
    slopes = dy[valid] / dx[valid]
    slope = float(np.median(slopes))
    intercept = float(np.median(ya - slope * xa))
    residuals = ya - (slope * xa + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope, intercept, r_squared, n)
