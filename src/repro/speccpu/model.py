"""Throughput model of SPEC CPU 2017 rate scores.

The paper's Table I compares the same pair of Lenovo systems under
SPECpower_ssj2008 and SPEC CPU 2017 int/fp rate to argue that the observed
efficiency trends do not generalise to floating-point workloads: the
integer-heavy SSJ workload favours AMD's higher core count, while Intel's
wider vector units close part of the gap on the fp suite.

The model captures exactly those effects:

* per-core throughput = sustained frequency x IPC x vector factor,
* the vector factor scales the vector-sensitive share of each benchmark with
  the SIMD register width,
* the rate score of a benchmark saturates against memory bandwidth via a
  harmonic blend weighted by the benchmark's memory sensitivity,
* the suite score is the geometric mean over benchmarks (as in SPEC),
  scaled by a fixed reference constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from ..powermodel.cpu import CPUSpec, Vendor
from ..stats.descriptive import geometric_mean
from .benchmarks import Benchmark, FP_RATE_SUITE, INT_RATE_SUITE, SuiteKind

__all__ = ["RateResult", "SpecCpuRateModel", "memory_bandwidth_gbs"]

#: Reference constant mapping model units to published-score magnitudes.
_SCORE_SCALE = 3.2

#: Scalar integer IPC by vendor relative to a 2017 Skylake core.
_SCALAR_IPC = {Vendor.INTEL: 1.00, Vendor.AMD: 1.05, Vendor.OTHER: 0.90}

#: Effective utilisation of theoretical memory bandwidth in rate runs.
_BANDWIDTH_EFFICIENCY = 0.80

#: GB/s of compute demand generated per model unit of compute throughput.
_BYTES_PER_UNIT = 2.2


def memory_bandwidth_gbs(cpu: CPUSpec, sockets: int) -> float:
    """Estimate the system's peak memory bandwidth from the CPU generation."""
    year = cpu.release.decimal_year
    if year < 2008:
        channels, per_channel = 2, 6.4  # DDR2-800
    elif year < 2012:
        channels, per_channel = 3, 10.7  # DDR3-1333
    elif year < 2017:
        channels, per_channel = 4, 14.9  # DDR4-1866/2133
    elif year < 2021:
        channels, per_channel = 6, 21.3  # DDR4-2666
        if cpu.vendor == Vendor.AMD:
            channels = 8
    elif year < 2022.8:
        channels, per_channel = 8, 25.6  # DDR4-3200
    else:
        channels, per_channel = 8, 38.4  # DDR5-4800
        if cpu.vendor == Vendor.AMD:
            channels = 12
    return channels * per_channel * sockets


@dataclass(frozen=True)
class RateResult:
    """SPEC CPU rate result of one system for one suite."""

    suite: SuiteKind
    score: float
    per_benchmark: dict[str, float]

    def describe(self) -> str:
        return f"SPEC CPU 2017 {self.suite.value} base: {self.score:.0f}"


class SpecCpuRateModel:
    """Rate (throughput) score model for a system built from a CPUSpec."""

    def __init__(
        self,
        cpu: CPUSpec,
        sockets: int = 2,
        memory_bandwidth_override_gbs: float | None = None,
        vector_efficiency: float = 0.6,
    ):
        if sockets < 1:
            raise ModelError("sockets must be >= 1")
        if not 0.0 < vector_efficiency <= 1.0:
            raise ModelError("vector_efficiency must be in (0, 1]")
        self.cpu = cpu
        self.sockets = sockets
        self.memory_bandwidth_gbs = (
            memory_bandwidth_override_gbs
            if memory_bandwidth_override_gbs is not None
            else memory_bandwidth_gbs(cpu, sockets)
        )
        self.vector_efficiency = vector_efficiency

    # ------------------------------------------------------------------ #
    def sustained_frequency_ghz(self) -> float:
        """All-core sustained frequency during a rate run."""
        base = self.cpu.base_frequency_mhz / 1000.0
        turbo = self.cpu.max_turbo_mhz / 1000.0
        return 0.95 * (base + turbo) / 2.0

    def per_core_throughput(self, benchmark: Benchmark) -> float:
        """Throughput of one core on one benchmark (model units)."""
        ipc = _SCALAR_IPC.get(self.cpu.vendor, 0.9)
        vector_width_factor = self.cpu.avx_width_bits / 256.0
        vector_share = benchmark.vector_sensitivity
        vector_factor = (
            1.0 - vector_share
        ) + vector_share * vector_width_factor * self.vector_efficiency
        return self.sustained_frequency_ghz() * ipc * vector_factor

    def benchmark_score(self, benchmark: Benchmark) -> float:
        """Rate score of one benchmark (before the suite geometric mean)."""
        cores = self.cpu.cores * self.sockets
        compute = cores * self.per_core_throughput(benchmark)
        bandwidth_capability = (
            self.memory_bandwidth_gbs * _BANDWIDTH_EFFICIENCY / _BYTES_PER_UNIT
        )
        ms = benchmark.memory_sensitivity
        if ms <= 0:
            effective = compute
        else:
            # Harmonic blend: the memory-bound share of the runtime is limited
            # by bandwidth, the rest by compute.
            effective = 1.0 / ((1.0 - ms) / compute + ms / bandwidth_capability)
        return effective * _SCORE_SCALE

    def suite_score(self, suite: SuiteKind) -> RateResult:
        benchmarks = INT_RATE_SUITE if suite == SuiteKind.INT_RATE else FP_RATE_SUITE
        scores = {b.name: self.benchmark_score(b) for b in benchmarks}
        return RateResult(
            suite=suite,
            score=geometric_mean(list(scores.values())),
            per_benchmark=scores,
        )

    def int_rate(self) -> RateResult:
        """SPEC CPU 2017 Integer Rate base score."""
        return self.suite_score(SuiteKind.INT_RATE)

    def fp_rate(self) -> RateResult:
        """SPEC CPU 2017 Floating Point Rate base score."""
        return self.suite_score(SuiteKind.FP_RATE)
