"""SPEC CPU 2017 rate throughput model (for the paper's Table I)."""

from .benchmarks import SuiteKind, Benchmark, INT_RATE_SUITE, FP_RATE_SUITE
from .model import SpecCpuRateModel, RateResult

__all__ = [
    "SuiteKind",
    "Benchmark",
    "INT_RATE_SUITE",
    "FP_RATE_SUITE",
    "SpecCpuRateModel",
    "RateResult",
]
