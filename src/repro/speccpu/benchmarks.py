"""SPEC CPU 2017 rate suite composition.

Only the properties that matter for a throughput model are kept per
benchmark: how memory-bandwidth-bound it is and how much it benefits from
wide vector units.  Those two factors are what make the AMD/Intel comparison
of the paper's Table I differ between the integer and floating-point suites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["SuiteKind", "Benchmark", "INT_RATE_SUITE", "FP_RATE_SUITE"]


class SuiteKind(str, enum.Enum):
    INT_RATE = "intrate"
    FP_RATE = "fprate"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Benchmark:
    """One SPEC CPU 2017 rate benchmark.

    ``memory_sensitivity`` (0..1) is the share of runtime limited by memory
    bandwidth rather than core throughput; ``vector_sensitivity`` (0..1) is
    the share that scales with SIMD width.
    """

    name: str
    suite: SuiteKind
    memory_sensitivity: float
    vector_sensitivity: float


INT_RATE_SUITE: tuple[Benchmark, ...] = (
    Benchmark("500.perlbench_r", SuiteKind.INT_RATE, 0.10, 0.00),
    Benchmark("502.gcc_r", SuiteKind.INT_RATE, 0.25, 0.00),
    Benchmark("505.mcf_r", SuiteKind.INT_RATE, 0.55, 0.00),
    Benchmark("520.omnetpp_r", SuiteKind.INT_RATE, 0.45, 0.00),
    Benchmark("523.xalancbmk_r", SuiteKind.INT_RATE, 0.30, 0.05),
    Benchmark("525.x264_r", SuiteKind.INT_RATE, 0.10, 0.35),
    Benchmark("531.deepsjeng_r", SuiteKind.INT_RATE, 0.15, 0.00),
    Benchmark("541.leela_r", SuiteKind.INT_RATE, 0.05, 0.00),
    Benchmark("548.exchange2_r", SuiteKind.INT_RATE, 0.02, 0.00),
    Benchmark("557.xz_r", SuiteKind.INT_RATE, 0.35, 0.00),
)

FP_RATE_SUITE: tuple[Benchmark, ...] = (
    Benchmark("503.bwaves_r", SuiteKind.FP_RATE, 0.60, 0.70),
    Benchmark("507.cactuBSSN_r", SuiteKind.FP_RATE, 0.45, 0.55),
    Benchmark("508.namd_r", SuiteKind.FP_RATE, 0.10, 0.60),
    Benchmark("510.parest_r", SuiteKind.FP_RATE, 0.40, 0.45),
    Benchmark("511.povray_r", SuiteKind.FP_RATE, 0.05, 0.30),
    Benchmark("519.lbm_r", SuiteKind.FP_RATE, 0.75, 0.60),
    Benchmark("521.wrf_r", SuiteKind.FP_RATE, 0.45, 0.50),
    Benchmark("526.blender_r", SuiteKind.FP_RATE, 0.15, 0.40),
    Benchmark("527.cam4_r", SuiteKind.FP_RATE, 0.40, 0.45),
    Benchmark("538.imagick_r", SuiteKind.FP_RATE, 0.05, 0.50),
    Benchmark("544.nab_r", SuiteKind.FP_RATE, 0.15, 0.55),
    Benchmark("549.fotonik3d_r", SuiteKind.FP_RATE, 0.65, 0.55),
    Benchmark("554.roms_r", SuiteKind.FP_RATE, 0.55, 0.50),
)
