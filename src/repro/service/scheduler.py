"""Shard-granular fair-share scheduling for the campaign service.

The service used to execute jobs one at a time on one executor thread, so
a 100k-unit sweep head-of-line-blocked every later submission.  The
:class:`FairScheduler` replaces that queue with Slurm-style fair sharing
at *shard* granularity: every ``queued``/``running`` job is multiplexed
over one shared pool of worker processes, and the next shard to dispatch
is chosen by **deficit round-robin** across jobs — each job accrues
deficit in proportion to its priority weight on every scheduling round
and spends it per dispatched unit, so a 16-unit job interleaves with (and
finishes long before) a streaming mega-sweep.

Bit-identity under interleaving
-------------------------------
Pool workers never aggregate.  A dispatched shard runs through
:func:`~repro.campaign.sharding.execute_shard` — the same probe/flush
path every other runner uses — whose only side effect is the shard's
content-addressed artifact plus its ledger record.  When a job's shards
are all resolved, a **serial finalize pass** (plain
:func:`~repro.campaign.sharding.stream_campaign` over the same store)
reloads the artifacts in shard order and folds the aggregate exactly as a
clean serial run would.  Which worker executed a shard, and what it
interleaved with, can therefore never change a single byte of the job's
result — the same argument that pinned N-worker == serial identity.

The scheduler journals every decision (dispatch, result, worker death,
respawn, job lifecycle) to ``<root>/scheduler.jsonl`` — the ledger CI's
fairness gate asserts against and uploads as an artifact.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty, Queue
from typing import Any, Callable, Iterator

from ..campaign import CampaignSpec, CampaignStore, stream_campaign
from ..campaign.leases import LeaseHeartbeat, LeaseLedger
from ..campaign.sharding import (
    Shard,
    _shard_recorded_complete,
    execute_shard,
    iter_shards,
)
from ..errors import CampaignError
from ..io.jsonl import append_jsonl

__all__ = [
    "PRIORITY_WEIGHTS",
    "Job",
    "ShardTask",
    "ShardTaskResult",
    "WorkerPool",
    "FairScheduler",
]

#: Deficit-round-robin weights per priority class: a ``high`` job accrues
#: scheduling credit 4x as fast as a ``low`` one.  Weights shape *latency*
#: only — every class makes progress on every round (no starvation), and
#: no class can change any job's computed bytes.
PRIORITY_WEIGHTS = {"high": 4, "normal": 2, "low": 1}

#: Dispatch attempts per shard before the scheduler stops handing it to
#: workers and leaves it for the job's serial finalize pass.  Two retries
#: absorb a killed/crashed worker; a shard that fails three *processes*
#: has a problem the authoritative serial pass should surface.
MAX_SHARD_ATTEMPTS = 3

_TERMINAL_STATES = ("complete", "failed", "cancelled")


@dataclass
class Job:
    """One submitted campaign: identity, store, lifecycle, scheduling knobs.

    Lifecycle: ``queued -> running -> finalizing -> complete`` with three
    exits — ``failed`` (finalize raised), ``cancelled`` (via ``cancel`` op
    or service drain; the partial store stays resumable), and back to
    ``queued`` when a resubmission revives a cancelled/failed/evicted job.
    ``cancelling`` is the transient between a cancel request and its
    in-flight shards draining.
    """

    job_id: str
    spec: CampaignSpec
    store_dir: Path
    shard_size: int
    cap: int | None = None  # max in-flight shards; None = pool size
    priority: str = "normal"
    ttl: float | None = None  # seconds to retain the store once terminal
    state: str = "queued"
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    summary: dict[str, Any] | None = None
    evicted: bool = False
    cancel_requested: bool = False
    resubmit_pending: bool = False

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL_STATES

    def describe(self) -> dict[str, Any]:
        info: dict[str, Any] = {
            "job": self.job_id,
            "name": self.spec.name,
            "state": self.state,
            "n_units": self.spec.n_units,
            "shard_size": self.shard_size,
            "workers": self.cap or 1,
            "priority": self.priority,
            "store": str(self.store_dir),
        }
        if self.ttl is not None:
            info["ttl"] = self.ttl
        if self.evicted:
            info["evicted"] = True
        if self.error is not None:
            info["error"] = self.error
        return info

    def reset_for_resubmit(
        self, cap: int | None, priority: str, ttl: float | None
    ) -> None:
        """Revive a cancelled/failed/evicted job for a fresh run.

        The job object (and id) is reused so every client polling the old
        id observes the rerun; the store is reused too — a cancelled job's
        complete shards reload instead of re-executing.
        """
        self.cap = cap
        self.priority = priority
        self.ttl = ttl
        self.state = "queued"
        self.error = None
        self.summary = None
        self.evicted = False
        self.cancel_requested = False
        self.resubmit_pending = False
        self.submitted_at = time.time()
        self.finished_at = None


# --------------------------------------------------------------------------- #
# Worker pool
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardTask:
    """One shard dispatch, pickled to a pool worker."""

    job_id: str
    store_dir: str
    results_dir: str | None
    shard: Shard
    batch: bool = True


@dataclass(frozen=True)
class ShardTaskResult:
    """What a pool worker reports back for one dispatched shard."""

    worker: str
    job_id: str
    index: int
    status: str  # "ok" | "held" | "error"
    error: str | None = None
    n_rows: int = 0
    simulated: int = 0
    cache_hits: int = 0
    reloaded: bool = False
    wall_s: float = 0.0


def _pool_worker_main(
    worker_id: str, task_queue: Any, result_queue: Any
) -> None:
    """Loop of one pool worker process: take a shard task, execute, report.

    Claims each shard through the lease ledger before executing — the
    claim is what a ``cancel`` releases and what lets external
    ``campaign worker`` processes sharing a store coordinate with the
    pool.  A shard someone else validly holds is reported ``held`` (the
    scheduler requeues it) rather than raced.  Any exception releases the
    lease and reports ``error``; the worker itself survives to take the
    next task, so one poisoned store can't shrink the pool.
    """
    # The fork inherits the server's SIGTERM handler (which spawns a stop
    # thread *in the parent's object graph*) — restore the default so an
    # orchestrator's kill actually kills the worker.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    stores: dict[tuple[str, str | None], CampaignStore] = {}
    while True:
        try:
            task = task_queue.get()
        except KeyboardInterrupt:
            # A foreground ^C signals the whole process group; idle workers
            # exit quietly — the scheduler's drain handles the rest.
            return
        if task is None:
            return
        start = time.perf_counter()
        try:
            key = (task.store_dir, task.results_dir)
            store = stores.get(key)
            if store is None:
                store = CampaignStore(task.store_dir, results_dir=task.results_dir)
                stores[key] = store
            ledger = LeaseLedger(store, worker_id)
            index = task.shard.index
            if (
                ledger.try_claim(index) is None
                and not _shard_recorded_complete(
                    task.shard, store.shard_entries().get(index)
                )
            ):
                result_queue.put(
                    ShardTaskResult(
                        worker=worker_id,
                        job_id=task.job_id,
                        index=index,
                        status="held",
                    )
                )
                continue
            try:
                with LeaseHeartbeat(ledger, index):
                    outcome = execute_shard(store, task.shard, batch=task.batch)
            except BaseException:
                ledger.release(index)
                raise
            result_queue.put(
                ShardTaskResult(
                    worker=worker_id,
                    job_id=task.job_id,
                    index=index,
                    status="ok",
                    n_rows=outcome.n_rows,
                    simulated=outcome.simulated,
                    cache_hits=outcome.cache_hits,
                    reloaded=outcome.reloaded,
                    wall_s=time.perf_counter() - start,
                )
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # report, stay alive for the next task
            result_queue.put(
                ShardTaskResult(
                    worker=worker_id,
                    job_id=task.job_id,
                    index=task.shard.index,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_s=time.perf_counter() - start,
                )
            )


class _PoolWorker:
    """Parent-side handle on one worker process and its private task queue."""

    __slots__ = ("worker_id", "process", "task_queue", "current")

    def __init__(self, worker_id: str, process: Any, task_queue: Any):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.current: ShardTask | None = None


class WorkerPool:
    """A fixed-size pool of shard-executing processes the scheduler feeds.

    Each worker has its **own** task queue with at most one task in
    flight, so the scheduler always knows exactly which shard a worker
    holds — when a worker dies (crash, OOM, SIGKILL) its in-flight shard
    is identifiable, requeueable, and a replacement worker is spawned.  A
    shared result queue carries completions back.
    """

    def __init__(self, size: int):
        if size < 1:
            raise CampaignError(f"worker pool size must be >= 1, got {size}")
        self.size = size
        self._ctx = multiprocessing.get_context()
        self.result_queue = self._ctx.Queue()
        self._workers: dict[str, _PoolWorker] = {}
        self._spawned = 0

    def start(self) -> None:
        for _ in range(self.size):
            self.spawn()

    def spawn(self) -> _PoolWorker:
        worker_id = f"pool{self._spawned}"
        self._spawned += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, task_queue, self.result_queue),
            name=f"service-{worker_id}",
            daemon=True,
        )
        process.start()
        worker = _PoolWorker(worker_id, process, task_queue)
        self._workers[worker_id] = worker
        return worker

    def idle_workers(self) -> list[_PoolWorker]:
        return [
            worker
            for worker in self._workers.values()
            if worker.current is None and worker.process.is_alive()
        ]

    def dispatch(self, worker: _PoolWorker, task: ShardTask) -> None:
        worker.current = task
        worker.task_queue.put(task)

    def current_task(self, worker_id: str) -> ShardTask | None:
        worker = self._workers.get(worker_id)
        return worker.current if worker is not None else None

    def mark_idle(self, worker_id: str) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.current = None

    def reap_dead(self) -> list[tuple[str, ShardTask | None]]:
        """Remove dead workers; returns ``(worker_id, lost_task)`` pairs."""
        dead = [
            worker
            for worker in self._workers.values()
            if not worker.process.is_alive()
        ]
        reaped = []
        for worker in dead:
            del self._workers[worker.worker_id]
            reaped.append((worker.worker_id, worker.current))
        return reaped

    def pids(self) -> dict[str, int | None]:
        return {
            worker_id: worker.process.pid
            for worker_id, worker in self._workers.items()
        }

    def describe(self) -> list[dict[str, Any]]:
        return [
            {
                "worker": worker.worker_id,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "busy": worker.current is not None,
                "job": worker.current.job_id if worker.current else None,
                "shard": worker.current.shard.index if worker.current else None,
            }
            for worker in self._workers.values()
        ]

    def shutdown(self, timeout: float = 30.0) -> None:
        """Sentinel every worker, join with a deadline, escalate leftovers."""
        for worker in self._workers.values():
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):  # queue already torn down
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers.values():
            worker.process.join(timeout=max(deadline - time.monotonic(), 0.1))
        for worker in self._workers.values():
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(timeout=2.0)
        self._workers.clear()


# --------------------------------------------------------------------------- #
# The fair scheduler
# --------------------------------------------------------------------------- #
class _JobRun:
    """Scheduler-side runtime state of one admitted job."""

    __slots__ = (
        "job",
        "store",
        "shard_iter",
        "buffer",
        "recorded",
        "deficit",
        "in_flight",
        "attempts",
        "abandoned",
        "resolved",
        "total_shards",
        "exhausted",
        "dispatched_units",
        "simulated",
        "cache_hits",
        "reloaded_units",
        "turn_accrued",
    )

    def __init__(self, job: Job, store: CampaignStore):
        self.job = job
        self.store = store
        self.shard_iter: Iterator[Shard] = iter_shards(
            job.spec, None, shard_size=job.shard_size
        )
        self.buffer: deque[Shard] = deque()  # requeued shards go here first
        # Admit-time snapshot of recorded shard results: what a resumed or
        # re-run store already holds.  Shards completed *during* this run
        # come back through the result queue, so the snapshot never needs
        # refreshing inside the dispatch loop.
        self.recorded = store.shard_entries()
        self.deficit = 0.0
        self.in_flight: dict[int, str] = {}  # shard index -> worker id
        self.attempts: dict[int, int] = {}
        self.abandoned: set[int] = set()
        self.resolved = 0
        self.total_shards = -(-job.spec.n_units // job.shard_size)
        self.exhausted = False
        self.dispatched_units = 0
        # True work accounting from the pool: the finalize pass only ever
        # reloads, so its own counters say nothing about what the job cost.
        self.simulated = 0
        self.cache_hits = 0
        # Units satisfied by already-recorded shards (resume/revival) —
        # neither simulated nor unit-cache hits, but not lost work either.
        self.reloaded_units = 0
        # Whether this run's current DRR turn has received its quantum.
        self.turn_accrued = False

    @property
    def weight(self) -> int:
        return PRIORITY_WEIGHTS.get(self.job.priority, PRIORITY_WEIGHTS["normal"])

    @property
    def quantum(self) -> float:
        return float(self.weight * self.job.shard_size)

    def next_shard(self) -> Shard | None:
        """The next shard needing a worker, skipping recorded-complete ones."""
        while True:
            if self.buffer:
                return self.buffer.popleft()
            if self.exhausted:
                return None
            shard = next(self.shard_iter, None)
            if shard is None:
                self.exhausted = True
                return None
            if _shard_recorded_complete(shard, self.recorded.get(shard.index)):
                # Resume: a prior run (or a cancelled first attempt) already
                # landed this shard — no worker round-trip needed, the
                # finalize pass will reload it.
                self.resolved += 1
                self.reloaded_units += shard.n_units
                continue
            return shard

    def has_pending(self) -> bool:
        return bool(self.buffer) or not self.exhausted

    def populate_done(self) -> bool:
        return not self.has_pending() and not self.in_flight


class FairScheduler:
    """Deficit-round-robin multiplexer of all live jobs over one worker pool.

    One scheduler thread owns all mutable scheduling state; the server's
    handler threads communicate through a locked inbox (:meth:`enqueue`,
    :meth:`request_cancel`) and read a per-loop immutable snapshot
    (:meth:`stats`).  A separate finalizer thread runs each populated
    job's serial aggregate pass so a long finalize never stalls dispatch.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        results_dir: str | os.PathLike | None,
        pool_size: int,
        jobs_provider: Callable[[], list[Job]] | None = None,
        poll_interval: float = 0.02,
    ):
        self.root = Path(root)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.ledger_path = self.root / "scheduler.jsonl"
        self.pool_size = pool_size
        self.poll_interval = poll_interval
        self._jobs_provider = jobs_provider or (lambda: [])
        self._pool = WorkerPool(pool_size)
        self._inbox: deque[Job] = deque()
        self._inbox_lock = threading.Lock()
        self._runs: dict[str, _JobRun] = {}
        self._rotation: deque[str] = deque()  # DRR visit order over job ids
        self._finalize_queue: "Queue[tuple[Job, int, int, int] | None]" = Queue()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._finalizer: threading.Thread | None = None
        self._snapshot: dict[str, Any] = {"pool": [], "active": []}

    # -- lifecycle ------------------------------------------------------- #
    def start(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._pool.start()
        self._ledger("scheduler_start", pool=self.pool_size)
        self._thread = threading.Thread(
            target=self._loop, name="service-scheduler", daemon=True
        )
        self._finalizer = threading.Thread(
            target=self._finalize_loop, name="service-finalizer", daemon=True
        )
        self._thread.start()
        self._finalizer.start()
        self._publish_snapshot()

    def stop(self, timeout: float = 60.0) -> bool:
        """Drain and shut down; returns ``False`` if threads failed to join.

        The drain finishes **in-flight shards only**: running jobs flip to
        ``cancelled`` with their partial stores intact (every landed shard
        reloads on resubmit or ``campaign resume``), jobs already fully
        populated still get their (cheap, reload-only) finalize pass, and
        queued jobs report ``cancelled`` rather than vanishing.
        """
        self._stop.set()
        deadline = time.monotonic() + timeout
        if self._thread is not None:
            self._thread.join(timeout=max(deadline - time.monotonic(), 0.1))
        if self._finalizer is not None:
            self._finalizer.join(timeout=max(deadline - time.monotonic(), 0.1))
        joined = not (
            (self._thread is not None and self._thread.is_alive())
            or (self._finalizer is not None and self._finalizer.is_alive())
        )
        self._ledger("scheduler_stop", joined=joined)
        return joined

    # -- server-facing API (any thread) ---------------------------------- #
    def enqueue(self, job: Job) -> None:
        """Hand a queued job to the scheduler loop."""
        with self._inbox_lock:
            self._inbox.append(job)
        self._ledger(
            "job_queued",
            job=job.job_id,
            n_units=job.spec.n_units,
            priority=job.priority,
            cap=job.cap,
            ttl=job.ttl,
        )
        self._record_job_event(job, "job_queued", priority=job.priority)

    def request_cancel(self, job: Job) -> bool:
        """Flag a queued/running job for cancellation; loop does the rest."""
        if job.done or job.state == "finalizing":
            return False
        job.cancel_requested = True
        if job.state in ("queued", "running"):
            job.state = "cancelling"
        self._ledger("cancel_requested", job=job.job_id)
        return True

    def stats(self) -> dict[str, Any]:
        """The last published scheduling snapshot (immutable; lock-free)."""
        return self._snapshot

    def worker_pids(self) -> list[int]:
        return [pid for pid in self._pool.pids().values() if pid is not None]

    # -- ledger ----------------------------------------------------------- #
    def _ledger(self, record: str, **fields: Any) -> None:
        entry: dict[str, Any] = {"record": record, "ts": time.time()}
        entry.update(fields)
        try:
            append_jsonl(self.ledger_path, [entry])
        except OSError:  # pragma: no cover - ledger loss must not stop work
            pass

    def _record_job_event(self, job: Job, name: str, **fields: Any) -> None:
        try:
            store = CampaignStore(job.store_dir, results_dir=self.results_dir)
            store.record_event(name, job=job.job_id, **fields)
        except (OSError, CampaignError):  # pragma: no cover - telemetry only
            pass

    # -- scheduler loop (scheduler thread only) --------------------------- #
    def _loop(self) -> None:
        while True:
            try:
                if self._loop_once():
                    return
            except Exception as exc:  # the loop must never die silently:
                # one bad iteration (a corrupted store, a torn queue) is
                # journaled and skipped; every job it can't progress stays
                # visible in status rather than wedging the whole service.
                self._ledger(
                    "scheduler_error", error=f"{type(exc).__name__}: {exc}"
                )
                time.sleep(self.poll_interval)

    def _loop_once(self) -> bool:
        """One scheduling round; returns ``True`` once shutdown completes."""
        stopping = self._stop.is_set()
        self._drain_results()
        self._reap_workers(respawn=not stopping)
        self._admit(stopping)
        self._process_cancellations()
        if not stopping:
            self._dispatch()
        self._evict_expired()
        self._publish_snapshot()
        if stopping and self._drained():
            self._shutdown_runs()
            self._pool.shutdown()
            self._finalize_queue.put(None)
            self._publish_snapshot()
            return True
        self._tick()
        return False

    def _tick(self) -> None:
        """Block on the result queue for one poll interval (the loop clock)."""
        try:
            result = self._pool.result_queue.get(timeout=self.poll_interval)
        except (Empty, OSError):
            return
        self._handle_result(result)

    def _drained(self) -> bool:
        """Whether every in-flight shard has resolved (shutdown barrier)."""
        return all(not run.in_flight for run in self._runs.values())

    def _shutdown_runs(self) -> None:
        """Terminal-state every remaining run for a service drain."""
        for run in list(self._runs.values()):
            job = run.job
            if job.done or job.state == "finalizing":
                continue
            job.state = "cancelled"
            job.error = (
                "service shut down mid-run; completed shards are stored — "
                "resubmit (or `campaign resume` the store) to continue"
            )
            job.finished_at = time.time()
            self._ledger("job_cancelled", job=job.job_id, reason="shutdown")
        self._runs.clear()
        self._rotation.clear()
        with self._inbox_lock:
            pending = list(self._inbox)
            self._inbox.clear()
        for job in pending:
            if not job.done:
                job.state = "cancelled"
                job.error = "service shut down before the job ran"
                job.finished_at = time.time()
                self._ledger("job_cancelled", job=job.job_id, reason="shutdown")

    # -- results ----------------------------------------------------------- #
    def _drain_results(self) -> None:
        while True:
            try:
                result = self._pool.result_queue.get_nowait()
            except (Empty, OSError):
                return
            except Exception:  # pragma: no cover - torn pickle from a kill
                continue
            self._handle_result(result)

    def _handle_result(self, result: ShardTaskResult) -> None:
        task = self._pool.current_task(result.worker)
        self._pool.mark_idle(result.worker)
        self._ledger(
            "result",
            job=result.job_id,
            index=result.index,
            worker=result.worker,
            status=result.status,
            error=result.error,
            n_rows=result.n_rows,
            reloaded=result.reloaded,
            wall_s=round(result.wall_s, 6),
        )
        run = self._runs.get(result.job_id)
        if run is None:
            return  # job was cancelled/shut down while the shard ran
        worker_id = run.in_flight.pop(result.index, None)
        if worker_id is None:
            return
        if result.status == "ok":
            run.resolved += 1
            run.simulated += result.simulated
            run.cache_hits += result.cache_hits
            if result.reloaded:
                # A worker found the shard already landed (racing claim or
                # artifact-probe recovery): its units did not run anywhere.
                run.reloaded_units += self._shard_for(run, result, task).n_units
        elif result.status == "held":
            # A live foreign claim (external `campaign worker`) — revisit
            # later without burning an attempt.
            run.attempts[result.index] = max(run.attempts.get(result.index, 1) - 1, 0)
            run.buffer.append(self._shard_for(run, result, task))
        else:
            attempts = run.attempts.get(result.index, 1)
            if attempts < MAX_SHARD_ATTEMPTS and not run.job.cancel_requested:
                run.buffer.append(self._shard_for(run, result, task))
            else:
                run.abandoned.add(result.index)
                run.resolved += 1
        self._maybe_finalize(run)

    @staticmethod
    def _shard_for(
        run: _JobRun, result: ShardTaskResult, task: ShardTask | None
    ) -> Shard:
        """The shard a result refers to, rebuilt by re-expansion if needed."""
        if (
            task is not None
            and task.job_id == result.job_id
            and task.shard.index == result.index
        ):
            return task.shard
        for shard in iter_shards(  # pragma: no cover - defensive fallback
            run.job.spec, None, shard_size=run.job.shard_size
        ):
            if shard.index == result.index:
                return shard
        raise CampaignError(  # pragma: no cover - expansion is deterministic
            f"shard {result.index} vanished from {run.job.job_id}'s expansion"
        )

    # -- worker management -------------------------------------------------- #
    def _reap_workers(self, respawn: bool) -> None:
        for worker_id, lost in self._pool.reap_dead():
            self._ledger(
                "worker_exit",
                worker=worker_id,
                job=lost.job_id if lost else None,
                index=lost.shard.index if lost else None,
            )
            if lost is not None:
                run = self._runs.get(lost.job_id)
                if run is not None and run.in_flight.pop(lost.shard.index, None):
                    # The dead worker's flushed-but-unrecorded work (if any)
                    # is adopted on retry via the recover probe; its lease
                    # self-invalidates (dead pid), so requeue is immediate.
                    attempts = run.attempts.get(lost.shard.index, 1)
                    if attempts < MAX_SHARD_ATTEMPTS:
                        run.buffer.append(lost.shard)
                    else:
                        run.abandoned.add(lost.shard.index)
                        run.resolved += 1
                    self._maybe_finalize(run)
            if respawn:
                worker = self._pool.spawn()
                self._ledger(
                    "respawn", worker=worker.worker_id, pid=worker.process.pid
                )

    # -- admission ---------------------------------------------------------- #
    def _admit(self, stopping: bool) -> None:
        with self._inbox_lock:
            incoming = list(self._inbox)
            self._inbox.clear()
        for job in incoming:
            if stopping:
                job.state = "cancelled"
                job.error = "service shut down before the job ran"
                job.finished_at = time.time()
                self._ledger("job_cancelled", job=job.job_id, reason="shutdown")
                continue
            if job.cancel_requested:
                self._finish_cancel(job, run=None)
                continue
            try:
                store = CampaignStore(job.store_dir, results_dir=self.results_dir)
                store.initialize_streaming(job.spec, job.shard_size)
            except (OSError, CampaignError) as exc:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
                self._ledger("job_failed", job=job.job_id, error=job.error)
                continue
            job.state = "running"
            run = _JobRun(job, store)
            self._runs[job.job_id] = run
            self._rotation.append(job.job_id)
            self._ledger(
                "job_admit",
                job=job.job_id,
                shards=run.total_shards,
                priority=job.priority,
                weight=run.weight,
            )
            store.record_event(
                "job_start",
                job=job.job_id,
                n_units=job.spec.n_units,
                n_shards=run.total_shards,
                priority=job.priority,
            )

    # -- deficit round-robin dispatch --------------------------------------- #
    def _advance_rotation(self, run: _JobRun) -> None:
        """End ``run``'s DRR turn: send it to the back, fresh accrual next."""
        self._rotation.rotate(-1)
        run.turn_accrued = False

    def _dispatch(self) -> None:
        """Deficit round-robin with *turn-holding* semantics.

        The front job keeps the floor across dispatch rounds until its
        turn's deficit is spent (or it blocks on its cap / runs out of
        shards); running out of **idle workers** does *not* end a turn.
        This matters because results trickle back one at a time: if the
        rotation advanced on every visit, each returning worker would go
        to whichever job happened to be in front and the share would
        collapse to 1:1 regardless of weights.  Holding the turn makes the
        long-run unit share proportional to each job's quantum
        (priority weight x shard size), which is the whole point.
        """
        idle = self._pool.idle_workers()
        fruitless = 0
        while idle and self._rotation and fruitless < len(self._rotation):
            job_id = self._rotation[0]
            run = self._runs.get(job_id)
            if run is None:  # stale id: the run was removed elsewhere
                self._rotation.popleft()
                continue
            if run.job.cancel_requested or not run.has_pending():
                self._advance_rotation(run)
                fruitless += 1
                continue
            cap = run.job.cap or self.pool_size
            if len(run.in_flight) >= cap:
                # Cap-blocked: no deficit accrual, so no banked burst later.
                self._advance_rotation(run)
                fruitless += 1
                continue
            if not run.turn_accrued:
                # One quantum per turn, clamped so a blocked stretch can't
                # bank an unbounded burst.  quantum >= shard_size, so every
                # turn dispatches at least one shard — no starvation.
                run.deficit = min(run.deficit + run.quantum, run.quantum * 4)
                run.turn_accrued = True
            progressed = False
            while idle and len(run.in_flight) < cap:
                try:
                    shard = run.next_shard()
                except Exception as exc:
                    # The expansion itself is broken (an axis the resolver
                    # rejects, a catalog drift): fail the job, not the loop.
                    self._fail_run(run, f"{type(exc).__name__}: {exc}")
                    break
                if shard is None:
                    # Everything left was recorded complete (resume): the
                    # skip above may just have resolved the tail.
                    self._maybe_finalize(run)
                    break
                if shard.n_units > run.deficit:
                    run.buffer.appendleft(shard)  # turn's credit is spent
                    break
                run.deficit -= shard.n_units
                worker = idle.pop()
                run.in_flight[shard.index] = worker.worker_id
                run.attempts[shard.index] = run.attempts.get(shard.index, 0) + 1
                run.dispatched_units += shard.n_units
                progressed = True
                self._pool.dispatch(
                    worker,
                    ShardTask(
                        job_id=run.job.job_id,
                        store_dir=str(run.job.store_dir),
                        results_dir=(
                            str(self.results_dir)
                            if self.results_dir is not None
                            else None
                        ),
                        shard=shard,
                    ),
                )
                self._ledger(
                    "dispatch",
                    job=run.job.job_id,
                    index=shard.index,
                    units=shard.n_units,
                    worker=worker.worker_id,
                    attempt=run.attempts[shard.index],
                    deficit=round(run.deficit, 3),
                )
            if idle and self._rotation and self._rotation[0] == job_id:
                # Stopped for a non-capacity reason: the turn is over.  (An
                # idle-exhausted stop keeps the floor for the next round;
                # a _fail_run/_maybe_finalize above may already have pulled
                # the job out of the rotation, hence the front check.)
                self._advance_rotation(run)
                fruitless = 0 if progressed else fruitless + 1

    # -- finalize ----------------------------------------------------------- #
    def _maybe_finalize(self, run: _JobRun) -> None:
        job = run.job
        if job.cancel_requested:
            if not run.in_flight:
                self._finish_cancel(job, run)
            return
        if run.populate_done() and job.state == "running":
            job.state = "finalizing"
            self._remove_run(run)
            self._ledger(
                "job_populated",
                job=job.job_id,
                shards=run.total_shards,
                abandoned=sorted(run.abandoned),
                dispatched_units=run.dispatched_units,
            )
            self._finalize_queue.put(
                (job, run.simulated, run.cache_hits, run.reloaded_units)
            )

    def _fail_run(self, run: _JobRun, error: str) -> None:
        """Terminal-fail a job whose shards cannot even be enumerated."""
        job = run.job
        self._remove_run(run)
        job.state = "failed"
        job.error = error
        job.finished_at = time.time()
        self._ledger("job_failed", job=job.job_id, error=error)
        self._record_job_event(job, "job_failed", error=error)

    def _remove_run(self, run: _JobRun) -> None:
        self._runs.pop(run.job.job_id, None)
        try:
            self._rotation.remove(run.job.job_id)
        except ValueError:
            pass

    def _finish_cancel(self, job: Job, run: _JobRun | None) -> None:
        """Complete a cancellation once no worker holds the job's shards."""
        if run is not None:
            self._remove_run(run)
            try:
                released = LeaseLedger(run.store, "scheduler").release_outstanding()
            except (OSError, CampaignError):
                released = []
            run.store.record_event(
                "job_cancelled", job=job.job_id, leases_released=released
            )
        else:
            released = []
        job.state = "cancelled"
        job.error = job.error or "cancelled by request"
        job.cancel_requested = False
        job.finished_at = time.time()
        self._ledger(
            "job_cancelled", job=job.job_id, leases_released=released
        )
        if job.resubmit_pending:
            # A submit raced the cancellation: honour it now that the
            # cancel has fully landed.
            job.reset_for_resubmit(job.cap, job.priority, job.ttl)
            with self._inbox_lock:
                self._inbox.append(job)
            self._ledger("job_queued", job=job.job_id, resubmitted=True)

    def _process_cancellations(self) -> None:
        for run in list(self._runs.values()):
            if run.job.cancel_requested and not run.in_flight:
                self._finish_cancel(run.job, run)

    def _finalize_loop(self) -> None:
        while True:
            item = self._finalize_queue.get()
            if item is None:
                return
            job, simulated, cache_hits, reloaded = item
            try:
                result = stream_campaign(
                    job.spec,
                    job.store_dir,
                    shard_size=job.shard_size,
                    results_dir=self.results_dir,
                )
            except Exception as exc:  # one bad job must not kill the finalizer
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                job.finished_at = time.time()
                self._ledger("job_failed", job=job.job_id, error=job.error)
                continue
            # simulated/cache_hits come from the pool workers' shard results:
            # the finalize pass reloads every artifact, so its own counters
            # would misreport the job as all-cached.
            job.summary = {
                "total_units": result.total_units,
                "completed": result.completed,
                "cache_hits": cache_hits,
                "simulated": simulated,
                "reloaded": reloaded,
                "n_workers": self.pool_size,
                "total_shards": result.total_shards,
                "failures": [list(failure) for failure in result.failures],
                "describe": result.describe(),
                "aggregate": result.aggregate.to_dict(),
            }
            job.state = "complete"
            job.finished_at = time.time()
            self._ledger(
                "job_complete",
                job=job.job_id,
                completed=result.completed,
                simulated=simulated,
            )

    # -- TTL eviction -------------------------------------------------------- #
    def _evict_expired(self) -> None:
        now = time.time()
        for job in self._jobs_provider():
            if (
                job.ttl is None
                or not job.done
                or job.evicted
                or job.finished_at is None
                or now - job.finished_at < job.ttl
            ):
                continue
            shutil.rmtree(job.store_dir, ignore_errors=True)
            job.evicted = True
            job.summary = None  # the store is gone; a resubmit recomputes
            self._ledger("job_evicted", job=job.job_id, ttl=job.ttl)

    # -- snapshot -------------------------------------------------------------- #
    def _publish_snapshot(self) -> None:
        self._snapshot = {
            "pool": self._pool.describe(),
            "active": [
                {
                    "job": run.job.job_id,
                    "state": run.job.state,
                    "priority": run.job.priority,
                    "deficit": round(run.deficit, 3),
                    "in_flight": len(run.in_flight),
                    "resolved": run.resolved,
                    "total_shards": run.total_shards,
                }
                for run in self._runs.values()
            ],
        }
