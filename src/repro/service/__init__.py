"""Campaign service: a long-running front end over the campaign engine.

``spectrends serve`` turns the sharded campaign runner into a shared
facility: clients submit :class:`~repro.campaign.CampaignSpec` payloads
over a local socket line protocol (:mod:`repro.service.protocol`), get
back job handles, and stream progress events while a fair-share scheduler
(:mod:`repro.service.scheduler`) multiplexes every live job over one
shared pool of campaign worker processes — deficit round-robin at shard
granularity, so small jobs finish promptly even while a mega-sweep
streams, with per-job concurrency caps, priority classes, job TTL +
store eviction, and mid-job cancellation that releases leases.

Two layers of deduplication make the service cheap to share:

* **job-level** — identical submissions (same spec + shard layout)
  resolve to the same job and store, so a second client asking the same
  question attaches to the first client's run instead of starting one,
* **unit-level** — every job store points at one service-wide result
  cache (``<root>/results``), so distinct campaigns that overlap in units
  simulate each shared unit once, ever.

Layout of a service root::

    <root>/results/           shared content-addressed unit cache
    <root>/jobs/<job-id>/     one campaign store per distinct job
    <root>/scheduler.jsonl    scheduling ledger (dispatch/result/lifecycle)
    <root>/service.json       bound address, pid (written on startup)
"""

from .client import EventStream, ServiceClient
from .protocol import recv_message, send_message
from .scheduler import PRIORITY_WEIGHTS, FairScheduler, Job, WorkerPool
from .server import CampaignService, serve_forever

__all__ = [
    "CampaignService",
    "EventStream",
    "FairScheduler",
    "Job",
    "PRIORITY_WEIGHTS",
    "ServiceClient",
    "WorkerPool",
    "recv_message",
    "send_message",
    "serve_forever",
]
