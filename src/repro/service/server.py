"""The campaign service: socket front end + fair-share shard scheduler.

:class:`CampaignService` owns a service root directory, a threading TCP
server speaking the line-JSON protocol (:mod:`repro.service.protocol`)
and a :class:`~repro.service.scheduler.FairScheduler` that multiplexes
every live job over one shared pool of campaign worker processes —
deficit round-robin across jobs at shard granularity, so a small job
submitted mid-sweep completes promptly instead of queueing behind it
(see the scheduler module for the fairness and bit-identity story).

Jobs are content-addressed: the job id is the spec + shard-layout digest,
so identical submissions from any number of concurrent clients collapse
to one job, one store, one execution.  All job stores share the service
root's ``results/`` unit cache, so even *different* campaigns simulate
each overlapping unit only once.  Execution knobs (``workers`` — now the
per-job in-flight shard cap — ``priority``, ``ttl``) stay out of the job
identity: results are bit-identical under any scheduling.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import Any

from ..campaign import CampaignSpec, CampaignStore
from ..errors import CampaignError
from ..faults.plan import fault_point
from ..session.artifacts import digest_json
from .protocol import ProtocolError, recv_message, send_message
from .scheduler import PRIORITY_WEIGHTS, FairScheduler, Job

__all__ = ["CampaignService", "serve_forever"]

#: Default shard layout for submitted jobs: small enough that progress
#: events are frequent and a killed worker loses little, large enough that
#: per-shard bookkeeping stays negligible.
DEFAULT_SERVICE_SHARD_SIZE = 256

#: Default per-connection read deadline.  A client that connects and goes
#: silent (half-open TCP, a hung peer) would otherwise pin its handler
#: thread forever; after this many seconds of no request the connection is
#: dropped — completed work is unaffected, the client just reconnects.
DEFAULT_READ_TIMEOUT = 300.0

#: Default per-poll send window of the ``events`` op: if a slow consumer
#: falls more than this many events behind, the oldest surplus is dropped
#: (and counted) rather than buffered without bound.
DEFAULT_EVENT_BUFFER = 256


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a sequence of request/response exchanges."""

    def handle(self) -> None:  # pragma: no cover - exercised via the socket
        service: CampaignService = self.server.service  # type: ignore[attr-defined]
        # Per-connection deadline, both directions: a silent peer cannot
        # pin this handler thread past the timeout on reads, and a wedged
        # consumer cannot pin an event stream past it on writes.
        self.connection.settimeout(service.read_timeout)
        while True:
            try:
                fault_point("service.read", ctx=str(self.client_address))
                request = recv_message(self.rfile)
            except socket.timeout:
                return  # silent peer: drop the connection, keep the thread
            except ProtocolError as exc:
                send_message(self.wfile, {"ok": False, "error": str(exc)})
                return
            except Exception as exc:
                # An injected fault (or any unexpected read error) must cost
                # this connection only, never the accept loop.
                try:
                    send_message(self.wfile, {"ok": False, "error": str(exc)})
                except OSError:
                    pass
                return
            if request is None:
                return
            stop_after = request.get("op") == "shutdown"
            try:
                service.handle_request(request, self.wfile)
            except (BrokenPipeError, socket.timeout):
                return  # consumer vanished or wedged: drop the connection
            if stop_after:
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class CampaignService:
    """Socket front end + fair-share scheduler over one service root."""

    def __init__(
        self,
        root: str | os.PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        shard_size: int | None = None,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        pool: int | None = None,
        job_ttl: float | None = None,
        drain_timeout: float = 60.0,
    ):
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.default_workers = workers  # per-job in-flight shard cap
        self.default_shard_size = shard_size or DEFAULT_SERVICE_SHARD_SIZE
        self.default_job_ttl = job_ttl
        self.read_timeout = read_timeout
        self.pool_size = pool or max(2, min(os.cpu_count() or 2, 8))
        self.drain_timeout = drain_timeout
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._scheduler = FairScheduler(
            self.root,
            self.results_dir,
            pool_size=self.pool_size,
            jobs_provider=self._jobs_snapshot,
        )
        self._server = _Server((host, port), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    def _jobs_snapshot(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    # -- lifecycle ------------------------------------------------------- #
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Start serving and scheduling; returns the bound (host, port)."""
        self.root.mkdir(parents=True, exist_ok=True)
        host, port = self.address
        (self.root / "service.json").write_text(
            json.dumps(
                {"host": host, "port": port, "pid": os.getpid()},
                indent=2,
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        self._scheduler.start()
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever, name="service-accept", daemon=True
        )
        self._serve_thread.start()
        return host, port

    def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight *shards*, stop.

        Running jobs flip to ``cancelled`` with their partial stores intact
        (resubmit or ``campaign resume`` continues them); queued jobs are
        never silently dropped — their state flips to ``cancelled`` too, so
        a polling client sees an answer instead of an eternal ``queued``.

        A drain that fails to complete within ``drain_timeout`` is never
        silent: it is logged to stderr **and** raised as
        :class:`~repro.errors.CampaignError`, because a leaked scheduler
        thread (or a hung worker join) means the process must not be
        trusted to exit cleanly.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._server.shutdown()
        self._server.server_close()
        if not self._scheduler.stop(timeout=self.drain_timeout):
            message = (
                f"service drain did not complete within {self.drain_timeout:.0f}s: "
                "the scheduler/finalizer thread is still alive (wedged shard "
                "flush or hung worker join) — the process is leaking threads"
            )
            print(message, file=sys.stderr, flush=True)
            raise CampaignError(message)

    def wait(self) -> None:
        """Block until :meth:`stop` is called (e.g. by a shutdown op)."""
        self._stopped.wait()

    # -- job management -------------------------------------------------- #
    def submit(
        self,
        spec: CampaignSpec,
        shard_size: int | None = None,
        workers: int | None = None,
        priority: str | None = None,
        ttl: float | None = None,
    ) -> tuple[Job, bool]:
        """Register (or dedup onto) a job; returns ``(job, deduped)``.

        Dedup is by content: identical spec + shard layout map to one job.
        A resubmission of a **cancelled**, **failed** or **TTL-evicted**
        job revives the same job object for a fresh run (completed shards
        of a cancelled store reload rather than re-execute); a submission
        racing an in-flight cancellation is remembered and honoured the
        moment the cancel fully lands.
        """
        shard_size = shard_size or self.default_shard_size
        cap = workers if workers is not None else self.default_workers
        priority = priority or "normal"
        if priority not in PRIORITY_WEIGHTS:
            raise CampaignError(
                f"unknown priority {priority!r}; valid: "
                f"{sorted(PRIORITY_WEIGHTS)}"
            )
        ttl = ttl if ttl is not None else self.default_job_ttl
        # Identity = what is computed (spec) + how it is laid out on disk
        # (shard layout changes the artifact set); never execution knobs.
        key = digest_json({"spec": spec.to_dict(), "shard_size": shard_size})
        job_id = f"{spec.name}-{key[:12]}"
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.cancel_requested and not existing.done:
                    # Submit racing a cancellation: run again once the
                    # cancel has fully drained.
                    existing.cap = cap
                    existing.priority = priority
                    existing.ttl = ttl
                    existing.resubmit_pending = True
                    return existing, False
                if existing.done and (
                    existing.state != "complete" or existing.evicted
                ):
                    existing.reset_for_resubmit(cap, priority, ttl)
                    self._scheduler.enqueue(existing)
                    return existing, False
                return existing, True
            job = Job(
                job_id=job_id,
                spec=spec,
                store_dir=self.jobs_root / job_id,
                shard_size=shard_size,
                cap=cap,
                priority=priority,
                ttl=ttl,
            )
            self._jobs[job_id] = job
        self._scheduler.enqueue(job)
        return job, False

    def get_job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job: Job) -> bool:
        """Request cancellation; in-flight shards drain, leases release."""
        return self._scheduler.request_cancel(job)

    # -- request handling ------------------------------------------------ #
    def handle_request(self, request: dict[str, Any], wfile: Any) -> None:
        """Dispatch one request; writes response line(s) to ``wfile``."""
        op = request.get("op")
        if op == "ping":
            send_message(wfile, {"ok": True, "pong": True})
        elif op == "submit":
            send_message(wfile, self._op_submit(request))
        elif op == "status":
            send_message(wfile, self._op_status(request))
        elif op == "result":
            send_message(wfile, self._op_result(request))
        elif op == "cancel":
            send_message(wfile, self._op_cancel(request))
        elif op == "stats":
            send_message(wfile, self._op_stats())
        elif op == "jobs":
            with self._lock:
                listing = [job.describe() for job in self._jobs.values()]
            send_message(wfile, {"ok": True, "jobs": listing})
        elif op == "events":
            self._op_events(request, wfile)
        elif op == "shutdown":
            send_message(wfile, {"ok": True, "stopping": True})
            # shutdown() blocks until the accept loop exits; that loop runs
            # in a different thread than this handler, so this is safe.
            threading.Thread(target=self._stop_quietly, daemon=True).start()
        else:
            send_message(wfile, {"ok": False, "error": f"unknown op {op!r}"})

    def _stop_quietly(self) -> None:
        """The shutdown op's stop: a wedged drain logs instead of raising
        (there is no caller to catch it on this detached thread)."""
        try:
            self.stop()
        except CampaignError:
            pass  # already printed to stderr by stop()

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        payload = request.get("spec")
        if not isinstance(payload, dict):
            return {"ok": False, "error": "submit needs a 'spec' object"}
        try:
            spec = CampaignSpec.from_dict(payload)
            n_units = spec.n_units  # force validation before queueing
        except (CampaignError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"invalid spec: {exc}"}
        try:
            job, deduped = self.submit(
                spec,
                shard_size=request.get("shard_size"),
                workers=request.get("workers"),
                priority=request.get("priority"),
                ttl=request.get("ttl"),
            )
        except CampaignError as exc:
            return {"ok": False, "error": str(exc)}
        response = {"ok": True, "deduped": deduped, "n_units": n_units}
        response.update(job.describe())
        return response

    def _job_for(self, request: dict[str, Any]) -> Job | None:
        job_id = request.get("job")
        if not isinstance(job_id, str):
            return None
        return self.get_job(job_id)

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._job_for(request)
        if job is None:
            return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
        response: dict[str, Any] = {"ok": True}
        response.update(job.describe())
        progress = None
        try:
            progress = CampaignStore(job.store_dir).shard_progress()
        except CampaignError:
            pass
        if progress is not None:
            response["shards"] = {
                "total": progress.total,
                "complete": progress.complete,
                "partial": progress.partial,
                "rows_flushed": progress.rows_flushed,
            }
        return response

    def _op_result(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._job_for(request)
        if job is None:
            return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
        if job.state in ("failed", "cancelled"):
            return {
                "ok": False,
                "error": job.error or f"job {job.state}",
                "state": job.state,
            }
        if job.evicted:
            return {
                "ok": False,
                "error": f"job {job.job_id} was evicted after its ttl; "
                         "resubmit to recompute",
                "state": job.state,
            }
        if job.state != "complete" or job.summary is None:
            return {
                "ok": False,
                "error": f"job {job.job_id} is {job.state}; poll status or "
                         "stream events until it completes",
                "state": job.state,
            }
        response: dict[str, Any] = {"ok": True, "job": job.job_id, "state": job.state}
        response.update(job.summary)
        return response

    def _op_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._job_for(request)
        if job is None:
            return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
        if job.done:
            # Idempotent: cancelling a terminal job is a no-op, not an error.
            return {"ok": True, "job": job.job_id, "state": job.state}
        if not self.cancel(job):
            return {
                "ok": False,
                "error": f"job {job.job_id} is {job.state} and can no longer "
                         "be cancelled",
                "state": job.state,
            }
        return {"ok": True, "job": job.job_id, "state": job.state}

    def _op_stats(self) -> dict[str, Any]:
        stats = dict(self._scheduler.stats())
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        stats.update({"ok": True, "pool_size": self.pool_size, "jobs": states})
        return stats

    def _op_events(self, request: dict[str, Any], wfile: Any) -> None:
        """Stream a job's telemetry events with bounded-buffer backpressure.

        Events are read incrementally (byte-offset follower, not a whole-
        file re-parse per tick).  Each poll sends at most ``buffer`` events:
        a consumer that falls further behind than that gets the **newest**
        ``buffer`` events, and the surplus is dropped — counted on the wire
        (``{"dropped": n}``) and surfaced in the job store's
        ``events.jsonl`` as an ``events_dropped`` event.  A consumer that
        stops reading entirely trips the connection's send timeout and is
        disconnected; the server never buffers without bound.
        """
        job = self._job_for(request)
        if job is None:
            send_message(
                wfile, {"ok": False, "error": f"unknown job {request.get('job')!r}"}
            )
            return
        follow = bool(request.get("follow"))
        try:
            buffer = max(int(request.get("buffer") or DEFAULT_EVENT_BUFFER), 1)
        except (TypeError, ValueError):
            buffer = DEFAULT_EVENT_BUFFER
        store = CampaignStore(job.store_dir)
        follower = store.events_follower()
        dropped_total = 0

        def _send_batch() -> int:
            nonlocal dropped_total
            batch = follower.poll()
            if len(batch) > buffer:
                dropped = len(batch) - buffer
                dropped_total += dropped
                batch = batch[-buffer:]
                store.record_event(
                    "events_dropped", job=job.job_id, dropped=dropped
                )
                send_message(wfile, {"ok": True, "dropped": dropped})
            for event in batch:
                send_message(wfile, {"ok": True, "event": event})
            return len(batch)

        while True:
            _send_batch()
            if not follow or job.done:
                break
            time.sleep(0.05)
        _send_batch()  # the tail appended after the last poll
        send_message(
            wfile,
            {
                "ok": True,
                "done": True,
                "state": job.state,
                "events_dropped": dropped_total,
            },
        )


def serve_forever(
    root: str | os.PathLike,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int | None = None,
    shard_size: int | None = None,
    pool: int | None = None,
    job_ttl: float | None = None,
) -> int:
    """CLI entry point: run a service until shutdown op, SIGTERM or Ctrl-C.

    SIGTERM (the orchestrator's polite kill) triggers the same graceful
    drain as the ``shutdown`` op: in-flight shards finish, running jobs
    flip to ``cancelled`` with resumable stores, then the process exits.
    """
    service = CampaignService(
        root,
        host=host,
        port=port,
        workers=workers,
        shard_size=shard_size,
        pool=pool,
        job_ttl=job_ttl,
    )

    def _on_sigterm(signum: int, frame: Any) -> None:
        print("SIGTERM: draining and shutting down", flush=True)
        threading.Thread(target=service._stop_quietly, daemon=True).start()

    # Handler first, then start: the address file is the orchestrator's
    # readiness signal, so a SIGTERM must drain gracefully from the moment
    # service.json exists — there is no window with the default handler.
    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    bound_host, bound_port = service.start()
    print(f"spectrends service listening on {bound_host}:{bound_port}", flush=True)
    print(f"service root: {service.root}", flush=True)
    print(
        f"scheduler: pool={service.pool_size} shard_size={service.default_shard_size}"
        + (f" job_ttl={job_ttl:.0f}s" if job_ttl else ""),
        flush=True,
    )
    try:
        service.wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
        service._stop_quietly()
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def read_service_address(root: str | os.PathLike) -> tuple[str, int]:
    """The (host, port) a service rooted at ``root`` wrote on startup."""
    path = Path(root) / "service.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return str(data["host"]), int(data["port"])
    except (OSError, ValueError, KeyError) as exc:
        raise CampaignError(f"no service address under {root}: {exc}") from exc
