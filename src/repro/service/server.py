"""The campaign service: socket front end + background job executor.

:class:`CampaignService` owns a service root directory, a threading TCP
server speaking the line-JSON protocol (:mod:`repro.service.protocol`)
and one background executor thread that drains submitted jobs through
:func:`~repro.campaign.sharding.stream_campaign` — each job optionally
fanned out across lease-coordinated worker processes.

Jobs are content-addressed: the job id is the spec + shard-layout digest,
so identical submissions from any number of concurrent clients collapse
to one job, one store, one execution.  All job stores share the service
root's ``results/`` unit cache, so even *different* campaigns simulate
each overlapping unit only once.  Execution knobs (``workers``) stay out
of the job identity — results are bit-identical for any worker count.

The executor runs one job at a time, in submission order.  Parallelism
belongs inside a job (its worker pool), not across jobs: two jobs racing
would fight over the same cores and the service's progress events would
interleave meaninglessly.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..campaign import CampaignSpec, CampaignStore, stream_campaign
from ..errors import CampaignError
from ..faults.plan import fault_point
from ..session.artifacts import digest_json
from .protocol import ProtocolError, recv_message, send_message

__all__ = ["CampaignService", "serve_forever"]

#: Default shard layout for submitted jobs: small enough that progress
#: events are frequent and a killed worker loses little, large enough that
#: per-shard bookkeeping stays negligible.
DEFAULT_SERVICE_SHARD_SIZE = 256

#: Default per-connection read deadline.  A client that connects and goes
#: silent (half-open TCP, a hung peer) would otherwise pin its handler
#: thread forever; after this many seconds of no request the connection is
#: dropped — completed work is unaffected, the client just reconnects.
DEFAULT_READ_TIMEOUT = 300.0

_TERMINAL_STATES = ("complete", "failed", "cancelled")


@dataclass
class Job:
    """One submitted campaign: identity, store, lifecycle state."""

    job_id: str
    spec: CampaignSpec
    store_dir: Path
    shard_size: int
    workers: int | None
    state: str = "queued"  # queued -> running -> complete | failed | cancelled
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    summary: dict[str, Any] | None = None

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL_STATES

    def describe(self) -> dict[str, Any]:
        info: dict[str, Any] = {
            "job": self.job_id,
            "name": self.spec.name,
            "state": self.state,
            "n_units": self.spec.n_units,
            "shard_size": self.shard_size,
            "workers": self.workers or 1,
            "store": str(self.store_dir),
        }
        if self.error is not None:
            info["error"] = self.error
        return info


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a sequence of request/response exchanges."""

    def handle(self) -> None:  # pragma: no cover - exercised via the socket
        service: CampaignService = self.server.service  # type: ignore[attr-defined]
        # Per-connection read deadline: a silent peer cannot pin this
        # handler thread past the timeout.
        self.connection.settimeout(service.read_timeout)
        while True:
            try:
                fault_point("service.read", ctx=str(self.client_address))
                request = recv_message(self.rfile)
            except socket.timeout:
                return  # silent peer: drop the connection, keep the thread
            except ProtocolError as exc:
                send_message(self.wfile, {"ok": False, "error": str(exc)})
                return
            except Exception as exc:
                # An injected fault (or any unexpected read error) must cost
                # this connection only, never the accept loop.
                try:
                    send_message(self.wfile, {"ok": False, "error": str(exc)})
                except OSError:
                    pass
                return
            if request is None:
                return
            stop_after = request.get("op") == "shutdown"
            try:
                service.handle_request(request, self.wfile)
            except BrokenPipeError:
                return
            if stop_after:
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class CampaignService:
    """Socket front end + job executor over one service root directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        shard_size: int | None = None,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ):
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.default_workers = workers
        self.default_shard_size = shard_size or DEFAULT_SERVICE_SHARD_SIZE
        self.read_timeout = read_timeout
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._server = _Server((host, port), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._executor_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    # -- lifecycle ------------------------------------------------------- #
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> tuple[str, int]:
        """Start serving and executing; returns the bound (host, port)."""
        self.root.mkdir(parents=True, exist_ok=True)
        host, port = self.address
        (self.root / "service.json").write_text(
            json.dumps(
                {"host": host, "port": port, "pid": os.getpid()},
                indent=2,
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever, name="service-accept", daemon=True
        )
        self._executor_thread = threading.Thread(
            target=self._drain_jobs, name="service-executor", daemon=True
        )
        self._serve_thread.start()
        self._executor_thread.start()
        return host, port

    def stop(self) -> None:
        """Graceful drain: stop accepting, finish the in-flight job, report
        every still-queued job as ``cancelled``, shut down.

        Queued jobs are never silently dropped — their state flips to
        ``cancelled`` (a terminal state the status/jobs ops report), so a
        client polling a job that never ran sees an answer instead of an
        eternal ``queued``.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._server.shutdown()
        self._server.server_close()
        self._queue.put(None)  # sentinel after any queued jobs: drain, then exit
        if self._executor_thread is not None:
            self._executor_thread.join(timeout=60)

    def wait(self) -> None:
        """Block until :meth:`stop` is called (e.g. by a shutdown op)."""
        self._stopped.wait()

    # -- job management -------------------------------------------------- #
    def submit(
        self,
        spec: CampaignSpec,
        shard_size: int | None = None,
        workers: int | None = None,
    ) -> tuple[Job, bool]:
        """Register (or dedup onto) a job; returns ``(job, deduped)``."""
        shard_size = shard_size or self.default_shard_size
        workers = workers if workers is not None else self.default_workers
        # Identity = what is computed (spec) + how it is laid out on disk
        # (shard layout changes the artifact set); never execution knobs.
        key = digest_json({"spec": spec.to_dict(), "shard_size": shard_size})
        job_id = f"{spec.name}-{key[:12]}"
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing, True
            job = Job(
                job_id=job_id,
                spec=spec,
                store_dir=self.jobs_root / job_id,
                shard_size=shard_size,
                workers=workers,
            )
            self._jobs[job_id] = job
        self._queue.put(job)
        return job, False

    def get_job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def _drain_jobs(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if self._stopped.is_set():
                # Shutting down: don't start new work, but keep draining so
                # every queued job gets its terminal ``cancelled`` state.
                job.state = "cancelled"
                job.error = "service shut down before the job ran"
                continue
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.state = "running"
        try:
            result = stream_campaign(
                job.spec,
                job.store_dir,
                shard_size=job.shard_size,
                workers=job.workers,
                results_dir=self.results_dir,
            )
        except Exception as exc:  # a failed job must not kill the executor
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
            return
        job.summary = {
            "total_units": result.total_units,
            "completed": result.completed,
            "cache_hits": result.cache_hits,
            "simulated": result.simulated,
            "n_workers": result.n_workers,
            "total_shards": result.total_shards,
            "failures": [list(failure) for failure in result.failures],
            "describe": result.describe(),
            "aggregate": result.aggregate.to_dict(),
        }
        job.state = "complete"

    # -- request handling ------------------------------------------------ #
    def handle_request(self, request: dict[str, Any], wfile: Any) -> None:
        """Dispatch one request; writes response line(s) to ``wfile``."""
        op = request.get("op")
        if op == "ping":
            send_message(wfile, {"ok": True, "pong": True})
        elif op == "submit":
            send_message(wfile, self._op_submit(request))
        elif op == "status":
            send_message(wfile, self._op_status(request))
        elif op == "result":
            send_message(wfile, self._op_result(request))
        elif op == "jobs":
            with self._lock:
                listing = [job.describe() for job in self._jobs.values()]
            send_message(wfile, {"ok": True, "jobs": listing})
        elif op == "events":
            self._op_events(request, wfile)
        elif op == "shutdown":
            send_message(wfile, {"ok": True, "stopping": True})
            # shutdown() blocks until the accept loop exits; that loop runs
            # in a different thread than this handler, so this is safe.
            threading.Thread(target=self.stop, daemon=True).start()
        else:
            send_message(wfile, {"ok": False, "error": f"unknown op {op!r}"})

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        payload = request.get("spec")
        if not isinstance(payload, dict):
            return {"ok": False, "error": "submit needs a 'spec' object"}
        try:
            spec = CampaignSpec.from_dict(payload)
            n_units = spec.n_units  # force validation before queueing
        except (CampaignError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"invalid spec: {exc}"}
        shard_size = request.get("shard_size")
        workers = request.get("workers")
        job, deduped = self.submit(spec, shard_size=shard_size, workers=workers)
        response = {"ok": True, "deduped": deduped, "n_units": n_units}
        response.update(job.describe())
        return response

    def _job_for(self, request: dict[str, Any]) -> Job | None:
        job_id = request.get("job")
        if not isinstance(job_id, str):
            return None
        return self.get_job(job_id)

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._job_for(request)
        if job is None:
            return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
        response: dict[str, Any] = {"ok": True}
        response.update(job.describe())
        progress = None
        try:
            progress = CampaignStore(job.store_dir).shard_progress()
        except CampaignError:
            pass
        if progress is not None:
            response["shards"] = {
                "total": progress.total,
                "complete": progress.complete,
                "partial": progress.partial,
                "rows_flushed": progress.rows_flushed,
            }
        return response

    def _op_result(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self._job_for(request)
        if job is None:
            return {"ok": False, "error": f"unknown job {request.get('job')!r}"}
        if job.state in ("failed", "cancelled"):
            return {
                "ok": False,
                "error": job.error or f"job {job.state}",
                "state": job.state,
            }
        if job.state != "complete" or job.summary is None:
            return {
                "ok": False,
                "error": f"job {job.job_id} is {job.state}; poll status or "
                         "stream events until it completes",
                "state": job.state,
            }
        response: dict[str, Any] = {"ok": True, "job": job.job_id, "state": job.state}
        response.update(job.summary)
        return response

    def _op_events(self, request: dict[str, Any], wfile: Any) -> None:
        """Stream a job's telemetry events; optionally follow to completion."""
        job = self._job_for(request)
        if job is None:
            send_message(
                wfile, {"ok": False, "error": f"unknown job {request.get('job')!r}"}
            )
            return
        follow = bool(request.get("follow"))
        store = CampaignStore(job.store_dir)
        sent = 0
        while True:
            events = store.event_entries()
            for event in events[sent:]:
                send_message(wfile, {"ok": True, "event": event})
            sent = len(events)
            if not follow or job.done:
                break
            time.sleep(0.05)
        send_message(wfile, {"ok": True, "done": True, "state": job.state})


def serve_forever(
    root: str | os.PathLike,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int | None = None,
    shard_size: int | None = None,
) -> int:
    """CLI entry point: run a service until shutdown op, SIGTERM or Ctrl-C.

    SIGTERM (the orchestrator's polite kill) triggers the same graceful
    drain as the ``shutdown`` op: the in-flight job finishes, queued jobs
    flip to ``cancelled``, then the process exits cleanly.
    """
    service = CampaignService(
        root, host=host, port=port, workers=workers, shard_size=shard_size
    )

    def _on_sigterm(signum: int, frame: Any) -> None:
        print("SIGTERM: draining and shutting down", flush=True)
        threading.Thread(target=service.stop, daemon=True).start()

    # Handler first, then start: the address file is the orchestrator's
    # readiness signal, so a SIGTERM must drain gracefully from the moment
    # service.json exists — there is no window with the default handler.
    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    bound_host, bound_port = service.start()
    print(f"spectrends service listening on {bound_host}:{bound_port}", flush=True)
    print(f"service root: {service.root}", flush=True)
    try:
        service.wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
        service.stop()
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def read_service_address(root: str | os.PathLike) -> tuple[str, int]:
    """The (host, port) a service rooted at ``root`` wrote on startup."""
    path = Path(root) / "service.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return str(data["host"]), int(data["port"])
    except (OSError, ValueError, KeyError) as exc:
        raise CampaignError(f"no service address under {root}: {exc}") from exc
