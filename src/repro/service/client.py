"""Client for the campaign service's line-JSON protocol.

:class:`ServiceClient` opens one connection per call — the protocol is a
plain request/response sequence, so per-call connections keep the client
robust against a restarted service at the cost of a local-socket
handshake (microseconds, against jobs that run for minutes).  The
``events`` op holds its connection open while streaming.

::

    client = ServiceClient.for_root("svc/")   # reads svc/service.json
    job = client.submit({"name": "sweep", "sweep": {...}}, workers=4)
    for event in client.events(job["job"], follow=True):
        ...
    result = client.result(job["job"])
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from typing import Any, Iterable, Iterator

from ..errors import CampaignError
from .protocol import recv_message, send_message

__all__ = ["ServiceClient", "EventStream"]


class EventStream:
    """Bounded, thread-fed event buffer: async-friendly consumption with
    client-side backpressure.

    A background thread drains ``source`` (typically
    :meth:`ServiceClient.events`) into a bounded deque as fast as the
    server produces — so the *connection* never stalls on a slow consumer
    — while the consumer iterates at its own pace.  When the buffer is
    full the **oldest** event is dropped and counted in :attr:`drops`:
    telemetry is a progress signal, not campaign state, so the newest
    events are always the ones worth keeping.  An exception raised by the
    source (a dropped connection, say) is re-raised to the consumer once
    the buffered events are drained.

    Usable as an iterator and as a context manager (``close()`` abandons
    the source and unblocks the feeder).
    """

    def __init__(self, source: Iterable[dict[str, Any]], buffer: int = 256):
        if buffer < 1:
            raise CampaignError(f"EventStream buffer must be >= 1, got {buffer}")
        self.buffer = buffer
        self.drops = 0
        self._events: deque[dict[str, Any]] = deque()
        self._cond = threading.Condition()
        self._finished = False
        self._closed = False
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._feed, args=(iter(source),), name="event-stream", daemon=True
        )
        self._thread.start()

    def _feed(self, source: Iterator[dict[str, Any]]) -> None:
        try:
            for event in source:
                with self._cond:
                    if self._closed:
                        return
                    if len(self._events) >= self.buffer:
                        self._events.popleft()
                        self.drops += 1
                    self._events.append(event)
                    self._cond.notify()
        except BaseException as exc:  # surfaced to the consumer on drain
            with self._cond:
                self._error = exc
        finally:
            with self._cond:
                self._finished = True
                self._cond.notify_all()

    def get(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Next event, blocking up to ``timeout``; ``None`` when exhausted."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._events:
                    return self._events.popleft()
                if self._finished or self._closed:
                    if self._error is not None:
                        error, self._error = self._error, None
                        raise error
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def close(self) -> None:
        """Stop buffering; the feeder abandons the source at its next event."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __iter__(self) -> Iterator[dict[str, Any]]:
        while True:
            event = self.get()
            if event is None:
                return
            yield event

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServiceClient:
    """Thin, connection-per-call client for a running campaign service.

    ``connect_retries`` adds client-side resilience to the one failure a
    connection-per-call design is exposed to: the service socket being
    momentarily unreachable (service restarting, accept backlog full).
    Refused/timed-out *connects* are retried with capped exponential
    backoff; failures after a connection is established are never retried
    here — the caller decides whether re-sending a request is safe.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        connect_retries: int = 3,
        connect_backoff: float = 0.1,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = max(int(connect_retries), 0)
        self.connect_backoff = connect_backoff

    @classmethod
    def for_root(
        cls, root: str | os.PathLike, timeout: float = 60.0
    ) -> "ServiceClient":
        """Connect to the service that published its address under ``root``."""
        from .server import read_service_address

        host, port = read_service_address(root)
        return cls(host, port, timeout=timeout)

    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        """One TCP connection, retrying refused/unreachable connects."""
        attempt = 0
        while True:
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                attempt += 1
                if attempt > self.connect_retries:
                    raise CampaignError(
                        f"cannot reach service at {self.host}:{self.port} "
                        f"after {attempt} attempt(s): {exc}"
                    ) from exc
                time.sleep(min(self.connect_backoff * (2.0 ** (attempt - 1)), 2.0))

    def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        with self._connect() as conn:
            stream = conn.makefile("rwb")
            send_message(stream, request)
            response = recv_message(stream)
        if response is None:
            raise CampaignError("service closed the connection mid-exchange")
        return response

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if not response.get("ok"):
            raise CampaignError(response.get("error", "service request failed"))
        return response

    # -- operations ------------------------------------------------------ #
    def ping(self) -> bool:
        return bool(self._checked(self._roundtrip({"op": "ping"})).get("pong"))

    def submit(
        self,
        spec: dict[str, Any],
        shard_size: int | None = None,
        workers: int | None = None,
        priority: str | None = None,
        ttl: float | None = None,
    ) -> dict[str, Any]:
        """Submit a spec payload; returns the job description (+ dedup flag).

        ``workers`` caps the job's concurrently in-flight shards,
        ``priority`` picks its fair-share class (``high``/``normal``/
        ``low``) and ``ttl`` bounds how long the finished job's store is
        retained — all scheduling knobs, none part of the job identity.
        """
        request: dict[str, Any] = {"op": "submit", "spec": spec}
        if shard_size is not None:
            request["shard_size"] = shard_size
        if workers is not None:
            request["workers"] = workers
        if priority is not None:
            request["priority"] = priority
        if ttl is not None:
            request["ttl"] = ttl
        return self._checked(self._roundtrip(request))

    def status(self, job_id: str) -> dict[str, Any]:
        return self._checked(self._roundtrip({"op": "status", "job": job_id}))

    def result(self, job_id: str) -> dict[str, Any]:
        """The summary + aggregate of a complete job (raises until then)."""
        return self._checked(self._roundtrip({"op": "result", "job": job_id}))

    def jobs(self) -> list[dict[str, Any]]:
        return self._checked(self._roundtrip({"op": "jobs"}))["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cancellation of a queued/running job (idempotent once
        terminal); the scheduler drains its in-flight shards and releases
        its leases."""
        return self._checked(self._roundtrip({"op": "cancel", "job": job_id}))

    def stats(self) -> dict[str, Any]:
        """The scheduler's live snapshot: pool workers, active jobs, states."""
        return self._checked(self._roundtrip({"op": "stats"}))

    def shutdown(self) -> None:
        self._checked(self._roundtrip({"op": "shutdown"}))

    def events(
        self, job_id: str, follow: bool = False, buffer: int | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield a job's telemetry events; with ``follow``, until terminal.

        ``buffer`` sets the server-side per-poll send window: a consumer
        that falls further behind gets the newest ``buffer`` events per
        poll and a drop count instead of an unbounded backlog.
        """
        request: dict[str, Any] = {"op": "events", "job": job_id, "follow": follow}
        if buffer is not None:
            request["buffer"] = buffer
        with self._connect() as conn:
            stream = conn.makefile("rwb")
            send_message(stream, request)
            while True:
                response = recv_message(stream)
                if response is None:
                    raise CampaignError("service closed the event stream")
                self._checked(response)
                if response.get("done"):
                    return
                if "event" in response:
                    yield response["event"]
                # a bare {"dropped": n} notice carries no event to yield

    def stream(
        self, job_id: str, follow: bool = True, buffer: int = 256
    ) -> EventStream:
        """An :class:`EventStream` over :meth:`events`: a background thread
        keeps the connection drained while the caller consumes at its own
        pace from a bounded, drop-oldest buffer."""
        return EventStream(self.events(job_id, follow=follow), buffer=buffer)

    def wait(self, job_id: str) -> dict[str, Any]:
        """Drain the event stream until the job is terminal; return result."""
        for _ in self.events(job_id, follow=True):
            pass
        return self.result(job_id)
