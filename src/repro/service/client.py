"""Client for the campaign service's line-JSON protocol.

:class:`ServiceClient` opens one connection per call — the protocol is a
plain request/response sequence, so per-call connections keep the client
robust against a restarted service at the cost of a local-socket
handshake (microseconds, against jobs that run for minutes).  The
``events`` op holds its connection open while streaming.

::

    client = ServiceClient.for_root("svc/")   # reads svc/service.json
    job = client.submit({"name": "sweep", "sweep": {...}}, workers=4)
    for event in client.events(job["job"], follow=True):
        ...
    result = client.result(job["job"])
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Iterator

from ..errors import CampaignError
from .protocol import recv_message, send_message

__all__ = ["ServiceClient"]


class ServiceClient:
    """Thin, connection-per-call client for a running campaign service.

    ``connect_retries`` adds client-side resilience to the one failure a
    connection-per-call design is exposed to: the service socket being
    momentarily unreachable (service restarting, accept backlog full).
    Refused/timed-out *connects* are retried with capped exponential
    backoff; failures after a connection is established are never retried
    here — the caller decides whether re-sending a request is safe.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        connect_retries: int = 3,
        connect_backoff: float = 0.1,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = max(int(connect_retries), 0)
        self.connect_backoff = connect_backoff

    @classmethod
    def for_root(
        cls, root: str | os.PathLike, timeout: float = 60.0
    ) -> "ServiceClient":
        """Connect to the service that published its address under ``root``."""
        from .server import read_service_address

        host, port = read_service_address(root)
        return cls(host, port, timeout=timeout)

    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        """One TCP connection, retrying refused/unreachable connects."""
        attempt = 0
        while True:
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                attempt += 1
                if attempt > self.connect_retries:
                    raise CampaignError(
                        f"cannot reach service at {self.host}:{self.port} "
                        f"after {attempt} attempt(s): {exc}"
                    ) from exc
                time.sleep(min(self.connect_backoff * (2.0 ** (attempt - 1)), 2.0))

    def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        with self._connect() as conn:
            stream = conn.makefile("rwb")
            send_message(stream, request)
            response = recv_message(stream)
        if response is None:
            raise CampaignError("service closed the connection mid-exchange")
        return response

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if not response.get("ok"):
            raise CampaignError(response.get("error", "service request failed"))
        return response

    # -- operations ------------------------------------------------------ #
    def ping(self) -> bool:
        return bool(self._checked(self._roundtrip({"op": "ping"})).get("pong"))

    def submit(
        self,
        spec: dict[str, Any],
        shard_size: int | None = None,
        workers: int | None = None,
    ) -> dict[str, Any]:
        """Submit a spec payload; returns the job description (+ dedup flag)."""
        request: dict[str, Any] = {"op": "submit", "spec": spec}
        if shard_size is not None:
            request["shard_size"] = shard_size
        if workers is not None:
            request["workers"] = workers
        return self._checked(self._roundtrip(request))

    def status(self, job_id: str) -> dict[str, Any]:
        return self._checked(self._roundtrip({"op": "status", "job": job_id}))

    def result(self, job_id: str) -> dict[str, Any]:
        """The summary + aggregate of a complete job (raises until then)."""
        return self._checked(self._roundtrip({"op": "result", "job": job_id}))

    def jobs(self) -> list[dict[str, Any]]:
        return self._checked(self._roundtrip({"op": "jobs"}))["jobs"]

    def shutdown(self) -> None:
        self._checked(self._roundtrip({"op": "shutdown"}))

    def events(self, job_id: str, follow: bool = False) -> Iterator[dict[str, Any]]:
        """Yield a job's telemetry events; with ``follow``, until terminal."""
        request = {"op": "events", "job": job_id, "follow": follow}
        with self._connect() as conn:
            stream = conn.makefile("rwb")
            send_message(stream, request)
            while True:
                response = recv_message(stream)
                if response is None:
                    raise CampaignError("service closed the event stream")
                self._checked(response)
                if response.get("done"):
                    return
                yield response["event"]

    def wait(self, job_id: str) -> dict[str, Any]:
        """Drain the event stream until the job is terminal; return result."""
        for _ in self.events(job_id, follow=True):
            pass
        return self.result(job_id)
