"""Line-JSON wire protocol of the campaign service.

One request or response per line: a JSON object, UTF-8 encoded, terminated
by ``\\n`` — the same framing every ledger in the system uses, so the wire
format is debuggable with ``nc`` and a pair of eyes.  A connection carries
a sequence of request/response exchanges; the ``events`` op additionally
streams interim event lines before its closing response.

Requests
--------
``{"op": ..., ...}`` — operations:

* ``ping`` — liveness probe,
* ``submit`` — ``{"spec": {...}, "shard_size"?: int, "workers"?: int,
  "priority"?: "high"|"normal"|"low", "ttl"?: seconds}``; returns the job
  id (deduplicated: an identical submission returns the existing job;
  ``workers`` caps the job's in-flight shards, ``priority`` its
  fair-share weight, ``ttl`` how long its finished store is retained),
* ``status`` — ``{"job": id}``; job state + store progress,
* ``result`` — ``{"job": id}``; summary + aggregate frame of a complete job,
* ``cancel`` — ``{"job": id}``; stop scheduling the job's shards, drain
  its in-flight ones and release its leases (idempotent once terminal),
* ``events`` — ``{"job": id, "follow"?: bool, "buffer"?: int}``; streams
  the job store's telemetry events as ``{"event": {...}}`` lines
  (``follow`` keeps streaming until the job reaches a terminal state;
  ``buffer`` bounds the per-poll send window — a slow consumer gets the
  newest ``buffer`` events plus a ``{"dropped": n}`` notice, and the
  closing line reports the total as ``events_dropped``),
* ``stats`` — scheduler snapshot: pool workers, active jobs + deficits,
* ``jobs`` — list all jobs,
* ``shutdown`` — stop the server after responding.

Responses
---------
``{"ok": true, ...}`` on success, ``{"ok": false, "error": "..."}`` on
failure.  Malformed request lines get an ``ok: false`` response rather
than a dropped connection — a confused client should be told so.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

__all__ = ["ProtocolError", "recv_message", "send_message"]

#: Upper bound on one protocol line; a spec payload is small (the sweep is
#: declarative), so anything beyond this is a framing bug, not a big job.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or oversized protocol line."""


def send_message(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one message as a single ``...\\n`` line and flush it."""
    stream.write(json.dumps(message, sort_keys=True, default=str).encode("utf-8") + b"\n")
    stream.flush()


def recv_message(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message line; ``None`` on a cleanly closed stream."""
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol line must be a JSON object")
    return message
