"""Core and package C-state models.

Two distinct mechanisms matter for the paper's idle analysis:

* **Core C-states** act whenever individual cores are idle, including at
  partial load.  Their effect is folded into the activity factor of
  :class:`repro.powermodel.dvfs.DVFSModel`; this module only exposes the
  residency estimate used by the event-driven simulator and the ablation
  benchmarks.
* **Package C-states** (and powering down other shared resources) act only
  during *active idle*, when no work arrives for long enough that caches,
  interconnects and memory controllers can be put into low-power states.
  They are the reason measured active-idle power sits below the value
  extrapolated from the 10 %/20 % load points — the paper's
  *extrapolated idle quotient* (Figure 6).

The package model also captures the Section IV hypothesis for the recent
idle regression: operating-system background tasks replicated per logical
CPU wake the package up, and their impact grows with core count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = ["CoreCStateModel", "PackageCStateModel"]


@dataclass(frozen=True)
class CoreCStateModel:
    """Residency of idle cores in core C-states at partial load."""

    entry_latency_penalty: float = 0.05
    max_residency: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.entry_latency_penalty < 1.0:
            raise ModelError("entry_latency_penalty must be in [0, 1)")
        if not 0.0 < self.max_residency <= 1.0:
            raise ModelError("max_residency must be in (0, 1]")

    def idle_residency(self, load: float) -> float:
        """Fraction of time an average core spends in a core C-state."""
        if not 0.0 <= load <= 1.0:
            raise ModelError(f"load must be in [0, 1], got {load}")
        raw = (1.0 - load) * (1.0 - self.entry_latency_penalty)
        return min(raw, self.max_residency)

    def core_power_fraction(self, load: float) -> float:
        """Average per-core power fraction relative to a fully busy core."""
        return 1.0 - self.idle_residency(load)


@dataclass(frozen=True)
class PackageCStateModel:
    """Effectiveness of idle-specific (package-level) power optimisation.

    ``base_quotient`` is the extrapolated-idle / measured-idle quotient the
    platform achieves with a perfectly quiet operating system.  Background
    activity reduces the achievable quotient towards 1: each logical CPU
    contributes ``noise_per_logical_cpu`` of wake-up probability.

    ``quotient_sigma`` is the log-normal spread observed across submissions
    (BIOS settings, OS tuning, measurement granularity).
    """

    base_quotient: float = 1.5
    quotient_sigma: float = 0.12
    noise_per_logical_cpu: float = 0.0

    def __post_init__(self) -> None:
        if self.base_quotient < 1.0:
            raise ModelError("base_quotient must be >= 1.0")
        if self.quotient_sigma < 0.0:
            raise ModelError("quotient_sigma must be >= 0")
        if self.noise_per_logical_cpu < 0.0:
            raise ModelError("noise_per_logical_cpu must be >= 0")

    def disturbance(self, logical_cpus: int) -> float:
        """Fraction of deep-idle benefit lost to per-CPU background tasks."""
        if logical_cpus < 1:
            raise ModelError("logical_cpus must be >= 1")
        # np.exp rather than math.exp: the batched simulation kernel evaluates
        # the same expression through NumPy, and the two libms differ in the
        # last ULP for some inputs.
        return 1.0 - float(np.exp(-self.noise_per_logical_cpu * logical_cpus))

    def effective_quotient(
        self, logical_cpus: int, rng: np.random.Generator | None = None
    ) -> float:
        """Achieved extrapolated-idle quotient for one run.

        Deterministic (no sampling noise) when ``rng`` is ``None``.
        """
        loss = self.disturbance(logical_cpus)
        quotient = 1.0 + (self.base_quotient - 1.0) * (1.0 - loss)
        if rng is not None and self.quotient_sigma > 0:
            quotient *= float(np.exp(rng.normal(0.0, self.quotient_sigma)))
        return max(quotient, 1.0)

    def measured_idle_power(
        self,
        extrapolated_idle_w: float,
        logical_cpus: int,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Measured active-idle power given the extrapolated idle power."""
        if extrapolated_idle_w < 0:
            raise ModelError("extrapolated_idle_w must be >= 0")
        return extrapolated_idle_w / self.effective_quotient(logical_cpus, rng)
