"""The composed server model: wall power and throughput vs target load.

``ServerPowerModel`` is the deterministic core used by the benchmark
simulator (:mod:`repro.simulator`): given a hardware configuration it
answers two questions for any SPEC Power target load ``u``:

* how many ssj_ops per second does the system deliver, and
* how much wall power does it draw.

All stochastic aspects (calibration error, measurement noise, per-run idle
effectiveness) live in the simulator so the model itself stays easy to test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .checks import check_load_range
from .cpu import CPUSpec
from .cstates import CoreCStateModel, PackageCStateModel
from .dvfs import DVFSModel
from .platform import PlatformModel
from .turbo import TurboModel

__all__ = ["ServerConfiguration", "LoadPoint", "ServerPowerModel", "STANDARD_LOAD_LEVELS"]

#: The SPECpower_ssj2008 measurement points: 100 % down to 10 % plus active idle.
STANDARD_LOAD_LEVELS: tuple[float, ...] = (
    1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0,
)


@dataclass(frozen=True)
class ServerConfiguration:
    """One system under test as described in a SPEC Power report."""

    cpu: CPUSpec
    sockets: int = 2
    nodes: int = 1
    memory_gb: float = 64.0
    os_name: str = "Microsoft Windows Server 2008"
    jvm_name: str = "Oracle Java HotSpot"
    system_vendor: str = "Generic Systems"
    system_model: str = "GS-1000"
    psu_rating_w: float = 800.0
    form_factor: str = "2U rack"

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ModelError("sockets must be >= 1")
        if self.nodes < 1:
            raise ModelError("nodes must be >= 1")
        if self.memory_gb <= 0:
            raise ModelError("memory_gb must be positive")
        if self.psu_rating_w <= 0:
            raise ModelError("psu_rating_w must be positive")

    @property
    def total_cores(self) -> int:
        return self.cpu.cores * self.sockets * self.nodes

    @property
    def total_threads(self) -> int:
        return self.cpu.threads * self.sockets * self.nodes

    @property
    def logical_cpus_per_node(self) -> int:
        return self.cpu.threads * self.sockets


@dataclass(frozen=True)
class LoadPoint:
    """One measurement interval of a benchmark run."""

    target_load: float
    actual_load: float
    ssj_ops: float
    average_power_w: float

    @property
    def efficiency(self) -> float:
        """ssj_ops per watt of this interval (0 for active idle)."""
        if self.average_power_w <= 0:
            return 0.0
        return self.ssj_ops / self.average_power_w


class ServerPowerModel:
    """Deterministic power/performance model of one node of the SUT."""

    def __init__(
        self,
        configuration: ServerConfiguration,
        dvfs: DVFSModel | None = None,
        turbo: TurboModel | None = None,
        core_cstates: CoreCStateModel | None = None,
        package_cstates: PackageCStateModel | None = None,
        platform: PlatformModel | None = None,
    ):
        self.configuration = configuration
        profile = configuration.cpu.profile.normalized()
        self.profile = profile
        self.dvfs = dvfs or DVFSModel(
            governor_effectiveness=min(
                0.95, profile.linear_fraction + profile.quadratic_fraction
            ),
            frequency_floor=profile.frequency_scaling_floor,
        )
        self.turbo = turbo or TurboModel(
            enabled=profile.turbo_fraction > 0.0,
            max_uplift=min(0.25, 2.0 * profile.turbo_fraction),
        )
        self.core_cstates = core_cstates or CoreCStateModel()
        self.package_cstates = package_cstates or PackageCStateModel(
            base_quotient=profile.idle_quotient_mean,
            quotient_sigma=profile.idle_quotient_sigma,
            noise_per_logical_cpu=profile.idle_noise_per_logical_cpu,
        )
        self.platform = platform or PlatformModel.for_era(
            year=configuration.cpu.release.decimal_year,
            memory_gb=configuration.memory_gb,
            psu_rating_w=configuration.psu_rating_w,
        )

    # ------------------------------------------------------------------ #
    # Power
    # ------------------------------------------------------------------ #
    def cpu_power_w(self, load):
        """Package power of all sockets of one node at target load ``load``.

        ``load`` may be a scalar or an array of loads; the result has the
        same shape.  Scalar and array evaluation share one code path, which
        is what lets the batched simulation kernel reproduce the scalar
        simulator bit-for-bit.
        """
        self._check_load(load)
        spec = self.configuration.cpu
        full = spec.full_load_cpu_power_w
        activity = self.dvfs.activity_factor(load)
        relative = self.profile.relative_power(activity, self.turbo.power_premium(load))
        return full * relative * self.configuration.sockets

    def node_power_w(self, load):
        """Wall power of one node at target load ``load`` (partial-load path).

        This is the power the analyzer would report if the system applied
        only the partial-load mechanisms (DVFS, core C-states); the deeper
        active-idle optimisations are modelled separately in
        :meth:`active_idle_power_w`.  Accepts a scalar load or an array of
        loads and returns a matching shape.
        """
        self._check_load(load)
        return self.platform.node_wall_power(self.cpu_power_w(load), load)

    def extrapolated_idle_power_w(self) -> float:
        """Idle power linearly extrapolated from the 10 % and 20 % points.

        This reproduces the Section IV construction on the model itself and
        is what package C-states are measured against.
        """
        p10 = self.node_power_w(0.1)
        p20 = self.node_power_w(0.2)
        return max(2.0 * p10 - p20, 0.0)

    def active_idle_power_w(self, rng: np.random.Generator | None = None) -> float:
        """Measured active-idle wall power of one node.

        The package C-state model divides the extrapolated idle power by the
        achieved idle quotient; the quotient degrades with the number of
        logical CPUs (background-task wake-ups) and carries per-run spread
        when ``rng`` is given.
        """
        extrapolated = self.extrapolated_idle_power_w()
        return self.package_cstates.measured_idle_power(
            extrapolated, self.configuration.logical_cpus_per_node, rng
        )

    # ------------------------------------------------------------------ #
    # Performance
    # ------------------------------------------------------------------ #
    def max_throughput_ops(self) -> float:
        """Calibrated full-load throughput (ssj_ops) of one node."""
        spec = self.configuration.cpu
        return spec.ssj_ops_per_socket * self.configuration.sockets

    def throughput_ops(self, load):
        """Delivered ssj_ops at target load ``load`` (scaled transaction rate).

        Accepts a scalar load or an array of loads.
        """
        self._check_load(load)
        return self.max_throughput_ops() * load

    # ------------------------------------------------------------------ #
    # Aggregate helpers
    # ------------------------------------------------------------------ #
    def load_curve(
        self,
        levels: tuple[float, ...] = STANDARD_LOAD_LEVELS,
        rng: np.random.Generator | None = None,
    ) -> list[LoadPoint]:
        """Deterministic load curve over the standard measurement points."""
        points = []
        for level in levels:
            if level == 0.0:
                power = self.active_idle_power_w(rng)
                points.append(LoadPoint(0.0, 0.0, 0.0, power))
            else:
                points.append(
                    LoadPoint(
                        target_load=level,
                        actual_load=level,
                        ssj_ops=self.throughput_ops(level),
                        average_power_w=self.node_power_w(level),
                    )
                )
        return points

    def overall_efficiency(self) -> float:
        """Overall ssj_ops/W as defined by SPEC (sum of ops / sum of power)."""
        points = self.load_curve()
        total_ops = sum(p.ssj_ops for p in points)
        total_power = sum(p.average_power_w for p in points)
        if total_power <= 0:
            raise ModelError("total power must be positive")
        return total_ops / total_power

    def power_per_socket_at_full_load(self) -> float:
        """Wall power per socket at the 100 % point (Figure 2 metric)."""
        return self.node_power_w(1.0) / self.configuration.sockets

    _check_load = staticmethod(check_load_range)
