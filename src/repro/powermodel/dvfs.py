"""Dynamic voltage and frequency scaling model.

At partial SPEC Power load the operating system governor lowers core
frequencies (P-states) and idles cores between transaction batches (clock
gating / shallow C-states).  The combined effect is captured by the
*activity factor* ``d(u)``: the fraction of the full-load dynamic CPU power
drawn at target load ``u``.

The model interpolates between two regimes:

* a perfectly proportional component (``d = u``), and
* a frequency-scaled component where running at reduced frequency ``f(u)``
  also reduces voltage, so dynamic power falls roughly with ``f**2`` for the
  same delivered work.

The share of the second component is the *governor effectiveness*: early
systems (pre-2010) barely scale (effectiveness near 0), modern systems
reach 0.6–0.8.

Both methods accept a scalar load or an array of loads and return a value of
the same shape; scalar and array evaluation go through the same NumPy
primitives, so the batched simulation kernel reproduces the scalar path
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .checks import check_load_range

__all__ = ["DVFSModel"]


@dataclass(frozen=True)
class DVFSModel:
    """Frequency/voltage scaling behaviour of one processor generation.

    Attributes
    ----------
    governor_effectiveness:
        0..1 share of dynamic power that benefits from voltage scaling.
    frequency_floor:
        Lowest frequency fraction (relative to nominal) the governor uses.
    voltage_exponent:
        Exponent applied to the frequency fraction for the voltage-scaled
        component (2.0 approximates P ~ f * V^2 with V ~ f).
    """

    governor_effectiveness: float = 0.5
    frequency_floor: float = 0.5
    voltage_exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.governor_effectiveness <= 1.0:
            raise ModelError("governor_effectiveness must be in [0, 1]")
        if not 0.0 < self.frequency_floor <= 1.0:
            raise ModelError("frequency_floor must be in (0, 1]")
        if self.voltage_exponent < 1.0:
            raise ModelError("voltage_exponent must be >= 1")

    def frequency_fraction(self, load):
        """Average core frequency (relative to nominal) at target load ``load``."""
        self._check_load(load)
        return self.frequency_floor + (1.0 - self.frequency_floor) * load

    def activity_factor(self, load):
        """Dynamic-power fraction ``d(u)`` at target load ``load`` (0..1)."""
        self._check_load(load)
        proportional = load
        frequency = self.frequency_fraction(load)
        # Work per second is fixed by the target load; running slower but at
        # lower voltage costs load * f**(exponent - 1) of full-load power.
        # At load 0 both components vanish, so no idle special case is needed.
        scaled = load * np.power(frequency, self.voltage_exponent - 1.0)
        d = (
            (1.0 - self.governor_effectiveness) * proportional
            + self.governor_effectiveness * scaled
        )
        d = np.minimum(np.maximum(d, 0.0), 1.0)
        return d if isinstance(load, np.ndarray) else float(d)

    _check_load = staticmethod(check_load_range)
