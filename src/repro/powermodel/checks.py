"""Shared scalar-or-array argument checks for the power models.

Every model method that accepts "a load or an array of loads" funnels its
validation through these helpers so the rules cannot drift between the
scalar and the batched path.  The conditions are written in the negated
form (``not (min >= 0 and max <= 1)``) so NaN — which compares false to
everything — is rejected rather than silently propagated into power
figures.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

__all__ = ["check_load_range", "check_non_negative"]


def check_load_range(load) -> None:
    """Require every load to lie in [0, 1] (scalar or array; NaN rejected)."""
    if isinstance(load, np.ndarray):
        if load.size and not (float(load.min()) >= 0.0 and float(load.max()) <= 1.0):
            raise ModelError("all loads must be in [0, 1]")
    elif not 0.0 <= load <= 1.0:
        raise ModelError(f"load must be in [0, 1], got {load}")


def check_non_negative(value, name: str) -> None:
    """Require ``value`` to be >= 0 (scalar or array; NaN rejected)."""
    if isinstance(value, np.ndarray):
        if value.size and not float(value.min()) >= 0.0:
            raise ModelError(f"{name} must be >= 0")
    elif not value >= 0:
        raise ModelError(f"{name} must be >= 0")
