"""Turbo / boost frequency model.

Turbo states raise frequency (and therefore throughput) opportunistically
but at disproportionate power cost: the voltage/frequency point sits far up
the efficiency curve.  In SPEC Power runs turbo engages mostly at and near
the 100 % target load, where the calibrated transaction rate keeps all
cores busy; at lower target loads the scheduler spreads the work and the
package stays at efficient frequencies.

The model exposes two quantities:

* :meth:`frequency_uplift` — achieved frequency relative to nominal at a
  given load (used by the performance model during calibration),
* :meth:`power_premium` — the share of the turbo power budget spent at a
  given load, concentrated near full load via a steep polynomial.

Both methods accept a scalar load or an array of loads; scalar and array
evaluation share the same NumPy primitives so the batched simulation kernel
reproduces the scalar path bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .checks import check_load_range

__all__ = ["TurboModel"]


@dataclass(frozen=True)
class TurboModel:
    """Turbo behaviour of one processor generation.

    Attributes
    ----------
    enabled:
        Early processors (pre-2008) had no turbo at all.
    max_uplift:
        Maximum all-core frequency uplift relative to nominal (e.g. 0.15 for
        +15 %).
    concentration:
        Exponent of the load-dependence of the power premium; larger values
        confine the premium more tightly to full load.
    """

    enabled: bool = True
    max_uplift: float = 0.10
    concentration: float = 8.0

    def __post_init__(self) -> None:
        if self.max_uplift < 0:
            raise ModelError("max_uplift must be >= 0")
        if self.concentration < 1:
            raise ModelError("concentration must be >= 1")

    def frequency_uplift(self, load):
        """Achieved frequency relative to nominal (>= 1.0)."""
        self._check_load(load)
        if not self.enabled:
            return np.ones_like(load) if isinstance(load, np.ndarray) else 1.0
        uplift = 1.0 + self.max_uplift * np.power(load, self.concentration / 4.0)
        return uplift if isinstance(load, np.ndarray) else float(uplift)

    def power_premium(self, load):
        """Fraction (0..1) of the turbo power budget drawn at ``load``."""
        self._check_load(load)
        if not self.enabled:
            return np.zeros_like(load) if isinstance(load, np.ndarray) else 0.0
        premium = np.power(load, self.concentration)
        return premium if isinstance(load, np.ndarray) else float(premium)

    _check_load = staticmethod(check_load_range)
