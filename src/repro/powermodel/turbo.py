"""Turbo / boost frequency model.

Turbo states raise frequency (and therefore throughput) opportunistically
but at disproportionate power cost: the voltage/frequency point sits far up
the efficiency curve.  In SPEC Power runs turbo engages mostly at and near
the 100 % target load, where the calibrated transaction rate keeps all
cores busy; at lower target loads the scheduler spreads the work and the
package stays at efficient frequencies.

The model exposes two quantities:

* :meth:`frequency_uplift` — achieved frequency relative to nominal at a
  given load (used by the performance model during calibration),
* :meth:`power_premium` — the share of the turbo power budget spent at a
  given load, concentrated near full load via a steep polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError

__all__ = ["TurboModel"]


@dataclass(frozen=True)
class TurboModel:
    """Turbo behaviour of one processor generation.

    Attributes
    ----------
    enabled:
        Early processors (pre-2008) had no turbo at all.
    max_uplift:
        Maximum all-core frequency uplift relative to nominal (e.g. 0.15 for
        +15 %).
    concentration:
        Exponent of the load-dependence of the power premium; larger values
        confine the premium more tightly to full load.
    """

    enabled: bool = True
    max_uplift: float = 0.10
    concentration: float = 8.0

    def __post_init__(self) -> None:
        if self.max_uplift < 0:
            raise ModelError("max_uplift must be >= 0")
        if self.concentration < 1:
            raise ModelError("concentration must be >= 1")

    def frequency_uplift(self, load: float) -> float:
        """Achieved frequency relative to nominal (>= 1.0)."""
        self._check_load(load)
        if not self.enabled:
            return 1.0
        return 1.0 + self.max_uplift * load ** (self.concentration / 4.0)

    def power_premium(self, load: float) -> float:
        """Fraction (0..1) of the turbo power budget drawn at ``load``."""
        self._check_load(load)
        if not self.enabled:
            return 0.0
        return load**self.concentration

    @staticmethod
    def _check_load(load: float) -> None:
        if not 0.0 <= load <= 1.0:
            raise ModelError(f"load must be in [0, 1], got {load}")
