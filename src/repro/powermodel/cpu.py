"""CPU specifications and per-generation efficiency profiles.

A :class:`CPUSpec` captures the externally documented properties of a server
processor (cores, frequency, TDP, availability date) plus two calibrated
quantities used by the models:

* ``ssj_ops_per_socket`` — full-load SSJ throughput of one socket, loosely
  calibrated against published SPECpower_ssj2008 results for the
  corresponding real processor generation, and
* a :class:`GenerationProfile` describing how power scales with load for
  that generation (static fraction, DVFS effectiveness, turbo premium,
  package-C-state idle quotient).

The profiles are the knobs that make the synthetic fleet reproduce the
paper's trend shapes; DESIGN.md section 5 lists the calibration targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ModelError
from ..units import MonthDate

__all__ = ["Vendor", "CPUFamily", "GenerationProfile", "CPUSpec"]


class Vendor(str, enum.Enum):
    """CPU vendor as reported in SPEC result files."""

    INTEL = "Intel"
    AMD = "AMD"
    OTHER = "Other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CPUFamily(str, enum.Enum):
    """Marketing family; the paper keeps only server/workstation families."""

    XEON = "Xeon"
    OPTERON = "Opteron"
    EPYC = "EPYC"
    DESKTOP = "Desktop"  # e.g. Core i7 / Pentium — filtered by the paper
    NON_X86 = "NonX86"  # e.g. POWER / SPARC / ARM — filtered by the paper

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_server_x86(self) -> bool:
        return self in (CPUFamily.XEON, CPUFamily.OPTERON, CPUFamily.EPYC)


@dataclass(frozen=True)
class GenerationProfile:
    """Load/power behaviour of a processor generation.

    The node power at SPEC target load ``u`` (0..1), relative to full-load
    power, is modelled as::

        rel(u) = static + linear * d(u) + quad * d(u)**2 + turbo * u**8

    where ``d(u)`` is the DVFS-adjusted activity factor and the four
    coefficients sum to 1 at ``u = 1``.  ``static`` therefore equals the
    power fraction obtained by extrapolating the 10 %/20 % measurements to
    0 % load — the paper's *extrapolated idle* — while the measured active
    idle is ``static / idle_quotient`` (package C-states power down shared
    resources below what partial-load scaling reaches).

    Attributes
    ----------
    static_fraction:
        Fraction of full-load power that does not scale with load
        (uncore, memory, fans, PSU floor).
    linear_fraction / quadratic_fraction:
        Load-proportional and superlinear (voltage/frequency) dynamic parts.
    turbo_fraction:
        Extra power concentrated near 100 % load caused by turbo states.
    idle_quotient_mean / idle_quotient_sigma:
        Log-normal parameters of the extrapolated-idle / measured-idle
        quotient (Figure 6).  1.0 means no idle-specific optimisation.
    idle_noise_per_logical_cpu:
        Penalty on idle optimisation effectiveness per logical CPU, modelling
        per-CPU background task activity (Section IV discussion).
    frequency_scaling_floor:
        Lowest frequency fraction DVFS reaches at near-idle load.
    """

    static_fraction: float
    linear_fraction: float
    quadratic_fraction: float
    turbo_fraction: float
    idle_quotient_mean: float
    idle_quotient_sigma: float = 0.12
    idle_noise_per_logical_cpu: float = 0.0
    frequency_scaling_floor: float = 0.5

    def __post_init__(self) -> None:
        parts = (
            self.static_fraction,
            self.linear_fraction,
            self.quadratic_fraction,
            self.turbo_fraction,
        )
        if any(p < 0 for p in parts):
            raise ModelError(f"profile fractions must be non-negative: {parts}")
        total = sum(parts)
        if not 0.98 <= total <= 1.02:
            raise ModelError(
                f"profile fractions must sum to ~1.0 (got {total:.3f}); "
                "normalise before constructing the profile"
            )
        if self.idle_quotient_mean < 1.0:
            raise ModelError("idle_quotient_mean must be >= 1.0")
        if not 0.0 < self.frequency_scaling_floor <= 1.0:
            raise ModelError("frequency_scaling_floor must be in (0, 1]")

    def relative_power(self, activity, turbo_premium):
        """CPU power relative to full load, given activity and turbo premium.

        This is the ``rel(u)`` polynomial of the class docstring with the
        load-dependent terms already evaluated.  ``activity`` and
        ``turbo_premium`` may be scalars or equally-shaped arrays; the result
        has the same shape.  The quadratic term is an explicit product (not
        ``**``) so scalar and array evaluation agree bit-for-bit.
        """
        return (
            self.static_fraction
            + self.linear_fraction * activity
            + self.quadratic_fraction * (activity * activity)
            + self.turbo_fraction * turbo_premium
        )

    def normalized(self) -> "GenerationProfile":
        """Return a profile whose four fractions sum to exactly 1."""
        total = (
            self.static_fraction
            + self.linear_fraction
            + self.quadratic_fraction
            + self.turbo_fraction
        )
        return replace(
            self,
            static_fraction=self.static_fraction / total,
            linear_fraction=self.linear_fraction / total,
            quadratic_fraction=self.quadratic_fraction / total,
            turbo_fraction=self.turbo_fraction / total,
        )


@dataclass(frozen=True)
class CPUSpec:
    """A server CPU model as it appears in the market catalog."""

    model: str
    vendor: Vendor
    family: CPUFamily
    codename: str
    cores: int
    threads_per_core: int
    base_frequency_mhz: float
    max_turbo_mhz: float
    tdp_w: float
    release: MonthDate
    ssj_ops_per_socket: float
    profile: GenerationProfile
    avx_width_bits: int = 128
    process_nm: float = 45.0
    cpu_power_at_full_load_w: float | None = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ModelError(f"{self.model}: cores must be >= 1")
        if self.threads_per_core not in (1, 2, 4, 8):
            raise ModelError(f"{self.model}: threads_per_core must be 1, 2, 4 or 8")
        if self.base_frequency_mhz <= 0 or self.max_turbo_mhz < self.base_frequency_mhz:
            raise ModelError(f"{self.model}: invalid frequency configuration")
        if self.tdp_w <= 0:
            raise ModelError(f"{self.model}: TDP must be positive")
        if self.ssj_ops_per_socket <= 0:
            raise ModelError(f"{self.model}: ssj_ops_per_socket must be positive")

    @property
    def threads(self) -> int:
        """Logical CPUs per socket."""
        return self.cores * self.threads_per_core

    @property
    def full_load_cpu_power_w(self) -> float:
        """CPU package power at SPEC full load.

        SPEC Power runs rarely pin the package at exactly TDP: the workload
        is integer/memory bound and vendors tune for efficiency, so the
        sustained package power sits a little below TDP unless a calibrated
        value is provided.
        """
        if self.cpu_power_at_full_load_w is not None:
            return self.cpu_power_at_full_load_w
        return 0.92 * self.tdp_w

    @property
    def nominal_ghz(self) -> float:
        return self.base_frequency_mhz / 1000.0

    def describe(self) -> str:
        return (
            f"{self.vendor.value} {self.model} ({self.codename}): "
            f"{self.cores}c/{self.threads}t, {self.nominal_ghz:.2f} GHz, {self.tdp_w:.0f} W TDP"
        )
