"""Platform-level power: memory, storage, fans and PSU conversion losses.

SPEC Power reports wall (AC) power of the whole system under test, so the
model has to account for everything around the CPU sockets:

* DRAM power roughly proportional to installed capacity, with per-GB power
  falling by DDR generation,
* storage and baseboard power (a small constant),
* fan power growing with dissipated heat,
* power-supply conversion losses following an efficiency curve that peaks
  around half load — modern (80 PLUS Titanium era) supplies lose far less
  at low load than the pre-2010 units, which matters for idle trends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .checks import check_load_range, check_non_negative

__all__ = ["PSUEfficiencyCurve", "PlatformModel"]


@dataclass(frozen=True)
class PSUEfficiencyCurve:
    """Efficiency of the power supply as a function of its load fraction.

    The curve is the standard "rises steeply, peaks near 50 %, slightly
    falls towards 100 %" shape parameterised by the peak efficiency and the
    low-load penalty.
    """

    peak_efficiency: float = 0.92
    low_load_penalty: float = 0.10
    rated_power_w: float = 800.0

    def __post_init__(self) -> None:
        if not 0.5 <= self.peak_efficiency <= 1.0:
            raise ModelError("peak_efficiency must be in [0.5, 1.0]")
        if not 0.0 <= self.low_load_penalty <= 0.5:
            raise ModelError("low_load_penalty must be in [0, 0.5]")
        if self.rated_power_w <= 0:
            raise ModelError("rated_power_w must be positive")

    def efficiency(self, dc_power_w):
        """Conversion efficiency when delivering ``dc_power_w``.

        Accepts a scalar or an array of DC powers; scalar and array
        evaluation share the same NumPy primitives (bit-for-bit batched
        equivalence).
        """
        check_non_negative(dc_power_w, "dc_power_w")
        load_fraction = np.minimum(dc_power_w / self.rated_power_w, 1.2)
        # Quadratic dip below ~45 % load, gentle slope above the peak.  The
        # shortfall is clamped so the untaken branch of the where() stays
        # finite; within the taken branch the clamp is a no-op.
        shortfall = np.maximum((0.45 - load_fraction) / 0.45, 0.0)
        dip = self.peak_efficiency * (1.0 - self.low_load_penalty * np.power(shortfall, 1.5))
        slope = self.peak_efficiency * (1.0 - 0.02 * (load_fraction - 0.45))
        efficiency = np.where(load_fraction <= 0.45, dip, slope)
        return efficiency if isinstance(dc_power_w, np.ndarray) else float(efficiency)

    def wall_power(self, dc_power_w):
        """AC input power required to deliver ``dc_power_w`` at the rails."""
        efficiency = np.maximum(self.efficiency(dc_power_w), 1e-3)
        wall = dc_power_w / efficiency
        return wall if isinstance(dc_power_w, np.ndarray) else float(wall)


@dataclass(frozen=True)
class PlatformModel:
    """Non-CPU node power."""

    memory_gb: float = 64.0
    watts_per_gb: float = 0.35
    memory_idle_fraction: float = 0.55
    storage_w: float = 8.0
    baseboard_w: float = 18.0
    fan_fraction_of_heat: float = 0.06
    fan_floor_w: float = 6.0
    psu: PSUEfficiencyCurve = PSUEfficiencyCurve()

    @classmethod
    def for_era(
        cls,
        year: float,
        memory_gb: float,
        psu_rating_w: float = 800.0,
    ) -> "PlatformModel":
        """Platform parameters typical for systems of a given era.

        DRAM moved from power-hungry FB-DIMMs (~1 W/GB) to DDR5 RDIMMs
        (~0.3 W/GB with deep self-refresh), fixed board power shrank, fan
        control improved, and PSUs went from ~85 % peak efficiency with a
        steep low-load penalty to 80 PLUS Titanium-class units.
        """
        def knots(pairs):
            return float(np.interp(year, [p[0] for p in pairs], [p[1] for p in pairs]))

        return cls(
            memory_gb=memory_gb,
            watts_per_gb=knots([(2005, 1.0), (2009, 0.8), (2013, 0.55), (2017, 0.42),
                                (2021, 0.34), (2024, 0.30)]),
            memory_idle_fraction=knots([(2005, 0.75), (2010, 0.60), (2015, 0.45),
                                        (2020, 0.38), (2024, 0.33)]),
            storage_w=knots([(2005, 14.0), (2012, 10.0), (2018, 6.0), (2024, 5.0)]),
            baseboard_w=knots([(2005, 32.0), (2010, 26.0), (2015, 20.0), (2020, 16.0),
                               (2024, 14.0)]),
            fan_fraction_of_heat=knots([(2005, 0.09), (2012, 0.07), (2018, 0.055),
                                        (2024, 0.05)]),
            fan_floor_w=knots([(2005, 12.0), (2012, 8.0), (2018, 6.0), (2024, 5.0)]),
            psu=PSUEfficiencyCurve(
                peak_efficiency=knots([(2005, 0.84), (2009, 0.88), (2013, 0.92),
                                       (2018, 0.94), (2024, 0.96)]),
                low_load_penalty=knots([(2005, 0.18), (2010, 0.13), (2015, 0.09),
                                        (2020, 0.06), (2024, 0.05)]),
                rated_power_w=psu_rating_w,
            ),
        )

    def __post_init__(self) -> None:
        if self.memory_gb < 0 or self.watts_per_gb < 0:
            raise ModelError("memory configuration must be non-negative")
        if not 0.0 <= self.memory_idle_fraction <= 1.0:
            raise ModelError("memory_idle_fraction must be in [0, 1]")
        if self.storage_w < 0 or self.baseboard_w < 0 or self.fan_floor_w < 0:
            raise ModelError("component powers must be non-negative")
        if not 0.0 <= self.fan_fraction_of_heat <= 0.3:
            raise ModelError("fan_fraction_of_heat must be in [0, 0.3]")

    def memory_power(self, load):
        """DRAM power at target load ``load`` (0..1; scalar or array)."""
        check_load_range(load)
        active = self.memory_gb * self.watts_per_gb
        return active * (self.memory_idle_fraction + (1.0 - self.memory_idle_fraction) * load)

    def fixed_power(self) -> float:
        """Storage plus baseboard power (load-independent)."""
        return self.storage_w + self.baseboard_w

    def fan_power(self, dissipated_w):
        """Fan power needed to remove ``dissipated_w`` of heat (scalar or array)."""
        check_non_negative(dissipated_w, "dissipated_w")
        return self.fan_floor_w + self.fan_fraction_of_heat * dissipated_w

    def node_dc_power(self, cpu_power_w, load):
        """Total DC power of the node for a given CPU power and load."""
        base = cpu_power_w + self.memory_power(load) + self.fixed_power()
        return base + self.fan_power(base)

    def node_wall_power(self, cpu_power_w, load):
        """Wall (AC) power of the node — what the SPEC power analyzer reports.

        ``cpu_power_w`` and ``load`` may be scalars or equally-shaped arrays;
        the result has the same shape.
        """
        return self.psu.wall_power(self.node_dc_power(cpu_power_w, load))
