"""Server power and performance models.

The paper analyses measurements of real servers; here those servers are
modelled.  A :class:`~repro.powermodel.server.ServerPowerModel` combines

* a :class:`~repro.powermodel.cpu.CPUSpec` (from :mod:`repro.market.catalog`),
* a :class:`~repro.powermodel.dvfs.DVFSModel` for frequency/voltage scaling
  at partial load,
* a :class:`~repro.powermodel.cstates.CoreCStateModel` and
  :class:`~repro.powermodel.cstates.PackageCStateModel` for idle power
  management (the Section IV mechanisms),
* a :class:`~repro.powermodel.turbo.TurboModel` for opportunistic frequency
  boost and its power premium at high load,
* a :class:`~repro.powermodel.platform.PlatformModel` for memory, storage,
  fans and PSU conversion losses,

into wall power and throughput as functions of the SPEC Power target load.
"""

from .cpu import CPUSpec, GenerationProfile, CPUFamily, Vendor
from .dvfs import DVFSModel
from .cstates import CoreCStateModel, PackageCStateModel
from .turbo import TurboModel
from .platform import PlatformModel, PSUEfficiencyCurve
from .server import ServerConfiguration, ServerPowerModel, LoadPoint

__all__ = [
    "CPUSpec",
    "GenerationProfile",
    "CPUFamily",
    "Vendor",
    "DVFSModel",
    "CoreCStateModel",
    "PackageCStateModel",
    "TurboModel",
    "PlatformModel",
    "PSUEfficiencyCurve",
    "ServerConfiguration",
    "ServerPowerModel",
    "LoadPoint",
]
