"""The SSJ transaction mix.

SPECpower_ssj2008's workload is derived from SPECjbb2005: warehouses process
six differently weighted transaction types.  The exact business logic is
irrelevant for power analysis; what matters is that the mix has a defined
probability per type and a relative cost per type, which together set the
work done per "ssj_op".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import SimulationError

__all__ = ["TransactionType", "TransactionMix", "DEFAULT_MIX"]


class TransactionType(str, enum.Enum):
    """The six SSJ transaction types."""

    NEW_ORDER = "new_order"
    PAYMENT = "payment"
    ORDER_STATUS = "order_status"
    DELIVERY = "delivery"
    STOCK_LEVEL = "stock_level"
    CUSTOMER_REPORT = "customer_report"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Mix probabilities follow the SPECjbb-style weighting used by ssj2008.
_DEFAULT_WEIGHTS: dict[TransactionType, float] = {
    TransactionType.NEW_ORDER: 0.333,
    TransactionType.PAYMENT: 0.333,
    TransactionType.ORDER_STATUS: 0.083,
    TransactionType.DELIVERY: 0.083,
    TransactionType.STOCK_LEVEL: 0.083,
    TransactionType.CUSTOMER_REPORT: 0.085,
}

#: Relative CPU cost of one transaction of each type (new-order == 1.0).
_DEFAULT_COSTS: dict[TransactionType, float] = {
    TransactionType.NEW_ORDER: 1.00,
    TransactionType.PAYMENT: 0.65,
    TransactionType.ORDER_STATUS: 0.45,
    TransactionType.DELIVERY: 1.25,
    TransactionType.STOCK_LEVEL: 0.80,
    TransactionType.CUSTOMER_REPORT: 1.10,
}


@dataclass(frozen=True)
class TransactionMix:
    """Probabilities and relative costs of the transaction types."""

    weights: Mapping[TransactionType, float] = field(
        default_factory=lambda: dict(_DEFAULT_WEIGHTS)
    )
    costs: Mapping[TransactionType, float] = field(
        default_factory=lambda: dict(_DEFAULT_COSTS)
    )

    def __post_init__(self) -> None:
        if set(self.weights) != set(TransactionType):
            raise SimulationError("weights must cover every transaction type")
        if set(self.costs) != set(TransactionType):
            raise SimulationError("costs must cover every transaction type")
        total = sum(self.weights.values())
        if not 0.98 <= total <= 1.02:
            raise SimulationError(f"mix weights must sum to ~1.0, got {total:.3f}")
        if any(cost <= 0 for cost in self.costs.values()):
            raise SimulationError("transaction costs must be positive")

    @property
    def types(self) -> list[TransactionType]:
        return list(TransactionType)

    def probabilities(self) -> np.ndarray:
        weights = np.asarray([self.weights[t] for t in self.types], dtype=np.float64)
        return weights / weights.sum()

    def mean_cost(self) -> float:
        """Expected relative cost of one transaction drawn from the mix."""
        probabilities = self.probabilities()
        costs = np.asarray([self.costs[t] for t in self.types], dtype=np.float64)
        return float(np.sum(probabilities * costs))

    def sample(self, rng: np.random.Generator, count: int) -> list[TransactionType]:
        """Draw ``count`` transaction types according to the mix."""
        if count < 0:
            raise SimulationError("count must be >= 0")
        indices = rng.choice(len(self.types), size=count, p=self.probabilities())
        types = self.types
        return [types[int(i)] for i in indices]

    def cost_of(self, transaction: TransactionType) -> float:
        return float(self.costs[transaction])


#: The default mix used by the run director.
DEFAULT_MIX = TransactionMix()
