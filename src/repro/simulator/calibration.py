"""The calibration phase.

Before the graduated measurement intervals, SPECpower_ssj2008 runs three
calibration intervals at unthrottled load; the average of the last two
defines the 100 % throughput target that the partial loads are scaled from.
Calibration error (the difference between the calibrated target and the
throughput actually achievable during the measurement intervals) is one
reason the reported "actual load" deviates slightly from the target load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["CalibrationResult", "calibrate"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the calibration phase."""

    interval_rates_ops: tuple[float, ...]
    calibrated_rate_ops: float

    @property
    def spread(self) -> float:
        """Relative spread of the calibration intervals (quality indicator)."""
        rates = np.asarray(self.interval_rates_ops)
        if rates.mean() == 0:
            return 0.0
        return float((rates.max() - rates.min()) / rates.mean())


def calibrate(
    true_max_rate_ops: float,
    rng: np.random.Generator | None = None,
    intervals: int = 3,
    noise_sigma: float = 0.01,
) -> CalibrationResult:
    """Simulate the calibration intervals.

    Each interval achieves the true maximum rate perturbed by run-to-run
    noise (JIT warm-up, interference); per the SPEC run rules the calibrated
    rate is the mean of the final two intervals.
    """
    if true_max_rate_ops <= 0:
        raise SimulationError("true_max_rate_ops must be positive")
    if intervals < 2:
        raise SimulationError("calibration requires at least 2 intervals")
    if noise_sigma < 0:
        raise SimulationError("noise_sigma must be >= 0")
    rng = rng or np.random.default_rng(0)
    rates = []
    for index in range(intervals):
        # The first interval is typically a little low (JIT warm-up).
        warmup_penalty = 0.985 if index == 0 else 1.0
        noise = float(np.exp(rng.normal(0.0, noise_sigma))) if noise_sigma > 0 else 1.0
        rates.append(true_max_rate_ops * warmup_penalty * noise)
    calibrated = float(np.mean(rates[-2:]))
    return CalibrationResult(tuple(rates), calibrated)
