"""SPECpower_ssj2008 benchmark simulator.

The real benchmark drives a Java transactional workload (six transaction
types against an in-memory warehouse model), calibrates the maximum
throughput of the system under test, then measures performance and wall
power at target loads of 100 % down to 10 % plus an active-idle interval.

This package reproduces that *methodology* against the server models of
:mod:`repro.powermodel`:

* :mod:`repro.simulator.transactions` — the six SSJ transaction types and
  their mix,
* :mod:`repro.simulator.workload` — transaction scheduling (batch arrival
  process) with an event-driven fine-grained mode and a fast analytic mode,
* :mod:`repro.simulator.calibration` — the three calibration intervals that
  establish the 100 % throughput target,
* :mod:`repro.simulator.measurement` — the power-analyzer and interval
  measurement model (sampling noise, averaging),
* :mod:`repro.simulator.director` — the run director assembling a full
  benchmark run,
* :mod:`repro.simulator.batch` — the vectorized batch director simulating
  many runs at once as ``(runs x levels)`` arrays, bit-for-bit equivalent
  to the scalar director per run,
* :mod:`repro.simulator.result` — result dataclasses consumed by
  :mod:`repro.reportgen` and the parser tests.
"""

from .transactions import TransactionType, TransactionMix, DEFAULT_MIX
from .workload import WorkloadEngine, WorkloadStats
from .calibration import CalibrationResult, calibrate
from .measurement import PowerAnalyzer, MeasurementInterval, BatchPowerAnalyzer
from .director import WORKLOAD_PRESETS, RunDirector, SimulationOptions
from .batch import BatchDirector
from .result import RunResult, LoadLevelResult

__all__ = [
    "TransactionType",
    "TransactionMix",
    "DEFAULT_MIX",
    "WorkloadEngine",
    "WorkloadStats",
    "CalibrationResult",
    "calibrate",
    "PowerAnalyzer",
    "MeasurementInterval",
    "BatchPowerAnalyzer",
    "RunDirector",
    "SimulationOptions",
    "WORKLOAD_PRESETS",
    "BatchDirector",
    "RunResult",
    "LoadLevelResult",
]
