"""Power and performance measurement of one benchmark interval.

The SPEC methodology requires an accepted power analyzer sampling at 1 Hz,
managed by the ptdaemon; the benchmark reports the average power of each
interval.  The model adds the two dominant error sources to the true power:

* analyzer accuracy (a small relative error per run, fixed by the analyzer
  calibration), and
* sampling noise (per-interval averaging of a fluctuating signal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["MeasurementInterval", "PowerAnalyzer"]


@dataclass(frozen=True)
class MeasurementInterval:
    """A measured interval: throughput plus average power."""

    target_load: float
    actual_load: float
    ssj_ops: float
    average_power_w: float
    samples: int


class PowerAnalyzer:
    """Model of an accepted wall-power analyzer driven by the ptdaemon."""

    def __init__(
        self,
        accuracy: float = 0.005,
        sample_noise_w: float = 1.5,
        sample_rate_hz: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        if accuracy < 0 or accuracy > 0.05:
            raise SimulationError("accuracy must be within [0, 0.05]")
        if sample_noise_w < 0:
            raise SimulationError("sample_noise_w must be >= 0")
        if sample_rate_hz <= 0:
            raise SimulationError("sample_rate_hz must be positive")
        self.accuracy = accuracy
        self.sample_noise_w = sample_noise_w
        self.sample_rate_hz = sample_rate_hz
        self._rng = rng or np.random.default_rng(0)
        # The calibration offset is a property of the analyzer + hookup and
        # therefore constant within one benchmark run.
        self._calibration_factor = 1.0 + float(self._rng.normal(0.0, accuracy / 2.0))

    @property
    def calibration_factor(self) -> float:
        return self._calibration_factor

    def measure_power(self, true_power_w: float, duration_s: float = 240.0) -> tuple[float, int]:
        """Average power reported for an interval of ``duration_s`` seconds."""
        if true_power_w < 0:
            raise SimulationError("true_power_w must be >= 0")
        if duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        samples = max(int(duration_s * self.sample_rate_hz), 1)
        if self.sample_noise_w > 0:
            # Averaging N noisy samples shrinks the noise by sqrt(N).
            noise = float(self._rng.normal(0.0, self.sample_noise_w / np.sqrt(samples)))
        else:
            noise = 0.0
        measured = true_power_w * self._calibration_factor + noise
        return max(measured, 0.0), samples

    def measure_interval(
        self,
        target_load: float,
        actual_load: float,
        ssj_ops: float,
        true_power_w: float,
        duration_s: float = 240.0,
    ) -> MeasurementInterval:
        """Package a full interval measurement."""
        power, samples = self.measure_power(true_power_w, duration_s)
        return MeasurementInterval(
            target_load=target_load,
            actual_load=actual_load,
            ssj_ops=ssj_ops,
            average_power_w=power,
            samples=samples,
        )
