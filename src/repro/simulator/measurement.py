"""Power and performance measurement of one benchmark interval.

The SPEC methodology requires an accepted power analyzer sampling at 1 Hz,
managed by the ptdaemon; the benchmark reports the average power of each
interval.  The model adds the two dominant error sources to the true power:

* analyzer accuracy (a small relative error per run, fixed by the analyzer
  calibration), and
* sampling noise (per-interval averaging of a fluctuating signal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["MeasurementInterval", "PowerAnalyzer", "BatchPowerAnalyzer"]


def _validate_analyzer(accuracy: float, sample_noise_w: float, sample_rate_hz: float) -> None:
    """Parameter validation shared by the scalar and the batched analyzer."""
    if accuracy < 0 or accuracy > 0.05:
        raise SimulationError("accuracy must be within [0, 0.05]")
    if sample_noise_w < 0:
        raise SimulationError("sample_noise_w must be >= 0")
    if sample_rate_hz <= 0:
        raise SimulationError("sample_rate_hz must be positive")


def _interval_samples(duration_s: float, sample_rate_hz: float) -> int:
    """Samples averaged over one interval (shared rounding rule)."""
    if duration_s <= 0:
        raise SimulationError("duration_s must be positive")
    return max(int(duration_s * sample_rate_hz), 1)


def _averaged_noise_sigma(sample_noise_w: float, samples: int):
    """Std-dev of the N-sample average: averaging shrinks noise by sqrt(N)."""
    return sample_noise_w / np.sqrt(samples)


@dataclass(frozen=True)
class MeasurementInterval:
    """A measured interval: throughput plus average power."""

    target_load: float
    actual_load: float
    ssj_ops: float
    average_power_w: float
    samples: int


class PowerAnalyzer:
    """Model of an accepted wall-power analyzer driven by the ptdaemon."""

    def __init__(
        self,
        accuracy: float = 0.005,
        sample_noise_w: float = 1.5,
        sample_rate_hz: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        _validate_analyzer(accuracy, sample_noise_w, sample_rate_hz)
        self.accuracy = accuracy
        self.sample_noise_w = sample_noise_w
        self.sample_rate_hz = sample_rate_hz
        self._rng = rng or np.random.default_rng(0)
        # The calibration offset is a property of the analyzer + hookup and
        # therefore constant within one benchmark run.
        self._calibration_factor = 1.0 + float(self._rng.normal(0.0, accuracy / 2.0))

    @property
    def calibration_factor(self) -> float:
        return self._calibration_factor

    def measure_power(self, true_power_w: float, duration_s: float = 240.0) -> tuple[float, int]:
        """Average power reported for an interval of ``duration_s`` seconds."""
        if true_power_w < 0:
            raise SimulationError("true_power_w must be >= 0")
        samples = _interval_samples(duration_s, self.sample_rate_hz)
        if self.sample_noise_w > 0:
            noise = float(
                self._rng.normal(0.0, _averaged_noise_sigma(self.sample_noise_w, samples))
            )
        else:
            noise = 0.0
        measured = true_power_w * self._calibration_factor + noise
        return max(measured, 0.0), samples

    def measure_interval(
        self,
        target_load: float,
        actual_load: float,
        ssj_ops: float,
        true_power_w: float,
        duration_s: float = 240.0,
    ) -> MeasurementInterval:
        """Package a full interval measurement."""
        power, samples = self.measure_power(true_power_w, duration_s)
        return MeasurementInterval(
            target_load=target_load,
            actual_load=actual_load,
            ssj_ops=ssj_ops,
            average_power_w=power,
            samples=samples,
        )


class BatchPowerAnalyzer:
    """Vectorized counterpart of :class:`PowerAnalyzer` for batched runs.

    One instance measures *many* benchmark runs at once: true powers arrive
    as ``(runs,)`` or ``(runs x levels)`` arrays together with each run's
    calibration factor and pre-drawn sampling noise.  The draws themselves
    stay with the caller (:class:`repro.simulator.batch.BatchDirector`),
    which pulls them from each run's own seeded generator in exactly the
    order the scalar simulator would — that is what keeps batched results
    bit-for-bit identical to :meth:`PowerAnalyzer.measure_power` per run.
    """

    def __init__(
        self,
        accuracy: float = 0.005,
        sample_noise_w: float = 1.5,
        sample_rate_hz: float = 1.0,
    ):
        _validate_analyzer(accuracy, sample_noise_w, sample_rate_hz)
        self.accuracy = accuracy
        self.sample_noise_w = sample_noise_w
        self.sample_rate_hz = sample_rate_hz

    def samples(self, duration_s: float) -> int:
        """Number of 1 Hz-style samples averaged over one interval."""
        return _interval_samples(duration_s, self.sample_rate_hz)

    def calibration_sigma(self) -> float:
        """Spread of the per-run calibration factor around 1.0."""
        return self.accuracy / 2.0

    def interval_noise_sigma(self, duration_s: float):
        """Std-dev of the averaged sampling noise of one interval.

        Shares :func:`_averaged_noise_sigma` with the scalar analyzer
        (including the NumPy sqrt), so noise draws scale identically.
        """
        return _averaged_noise_sigma(self.sample_noise_w, self.samples(duration_s))

    def measure_power(
        self,
        true_power_w: np.ndarray,
        calibration_factor: np.ndarray,
        noise_w: np.ndarray,
    ) -> np.ndarray:
        """Measured average power for a batch of intervals.

        The arguments must broadcast against each other (typically
        ``(runs x levels)`` true power against ``(runs x 1)`` factors).
        """
        true_power_w = np.asarray(true_power_w, dtype=float)
        if true_power_w.size and float(true_power_w.min()) < 0.0:
            raise SimulationError("true_power_w must be >= 0")
        return np.maximum(true_power_w * calibration_factor + noise_w, 0.0)
