"""Transaction scheduling at a given target load.

SPECpower_ssj2008 creates partial load by scheduling transaction *batches*
with exponentially distributed inter-arrival times whose mean is chosen so
the expected throughput equals ``target_load x calibrated_maximum``.  The
system is therefore never artificially throttled mid-batch — it works flat
out on a batch, then idles until the next batch arrives, which is exactly
what lets power-management features engage.

Two fidelities are offered:

* ``event`` — an explicit discrete-event simulation of batch arrivals and
  service, returning achieved throughput and busy fraction.  Used by the
  unit tests and the fine-grained example; cost grows with the number of
  batches.
* ``analytic`` — a closed-form approximation (M/D/m-style) of the same
  quantities, used by the corpus generator where thousands of intervals are
  needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .transactions import DEFAULT_MIX, TransactionMix

__all__ = ["WorkloadStats", "WorkloadEngine"]


@dataclass(frozen=True)
class WorkloadStats:
    """Outcome of one simulated measurement interval."""

    target_rate_ops: float
    achieved_rate_ops: float
    busy_fraction: float
    batches: int
    mean_response_time_s: float

    @property
    def actual_load(self) -> float:
        """Achieved fraction of the calibrated maximum rate."""
        if self.target_rate_ops == 0:
            return 0.0
        return self.achieved_rate_ops / self.target_rate_ops


class WorkloadEngine:
    """Schedules SSJ transaction batches against a service capacity.

    Parameters
    ----------
    max_rate_ops:
        Calibrated full-load throughput of the node (ssj_ops per second).
    workers:
        Number of worker threads (one per logical CPU in the real benchmark).
    mix:
        Transaction mix; only the mean cost matters for timing.
    batch_size:
        Transactions per scheduled batch.
    """

    def __init__(
        self,
        max_rate_ops: float,
        workers: int,
        mix: TransactionMix = DEFAULT_MIX,
        batch_size: int = 1000,
    ):
        if max_rate_ops <= 0:
            raise SimulationError("max_rate_ops must be positive")
        if workers < 1:
            raise SimulationError("workers must be >= 1")
        if batch_size < 1:
            raise SimulationError("batch_size must be >= 1")
        self.max_rate_ops = max_rate_ops
        self.workers = workers
        self.mix = mix
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #
    def batch_service_time_s(self) -> float:
        """Time the node needs to process one batch at full speed."""
        return self.batch_size / self.max_rate_ops

    def run_interval(
        self,
        target_load: float,
        duration_s: float = 240.0,
        rng: np.random.Generator | None = None,
        fidelity: str = "analytic",
    ) -> WorkloadStats:
        """Simulate one measurement interval at ``target_load``."""
        if not 0.0 <= target_load <= 1.0:
            raise SimulationError(f"target_load must be in [0, 1], got {target_load}")
        if duration_s <= 0:
            raise SimulationError("duration_s must be positive")
        if fidelity not in ("analytic", "event"):
            raise SimulationError(f"unknown fidelity {fidelity!r}")
        if target_load == 0.0:
            return WorkloadStats(0.0, 0.0, 0.0, 0, 0.0)
        if fidelity == "analytic":
            return self._run_analytic(target_load, duration_s)
        return self._run_event(target_load, duration_s, rng or np.random.default_rng(0))

    # ------------------------------------------------------------------ #
    def _run_analytic(self, target_load: float, duration_s: float) -> WorkloadStats:
        target_rate = target_load * self.max_rate_ops
        batches = int(target_rate * duration_s / self.batch_size)
        service = self.batch_service_time_s()
        # With utilisation rho the M/D/1-style waiting time grows as
        # rho / (2 (1 - rho)); saturate near full load.
        rho = min(target_load, 0.999)
        waiting = service * rho / (2.0 * max(1.0 - rho, 1e-3))
        response = service + waiting
        achieved_rate = target_rate  # the scheduler always catches up below 100 %
        return WorkloadStats(
            target_rate_ops=target_rate,
            achieved_rate_ops=achieved_rate,
            busy_fraction=rho,
            batches=batches,
            mean_response_time_s=response,
        )

    def _run_event(
        self, target_load: float, duration_s: float, rng: np.random.Generator
    ) -> WorkloadStats:
        target_rate = target_load * self.max_rate_ops
        batch_rate = target_rate / self.batch_size
        service = self.batch_service_time_s()

        # Exponential inter-arrival times; a single service queue models the
        # node (workers are folded into max_rate_ops).
        time = 0.0
        server_free_at = 0.0
        busy_time = 0.0
        completed_ops = 0.0
        response_times: list[float] = []
        batches = 0
        while True:
            time += float(rng.exponential(1.0 / batch_rate))
            if time >= duration_s:
                break
            start = max(time, server_free_at)
            finish = start + service
            if finish > duration_s:
                # Partial batch at the interval end contributes its share.
                fraction = max((duration_s - start) / service, 0.0)
                completed_ops += self.batch_size * fraction
                busy_time += max(duration_s - start, 0.0)
                batches += 1
                break
            server_free_at = finish
            busy_time += service
            completed_ops += self.batch_size
            response_times.append(finish - time)
            batches += 1

        achieved_rate = completed_ops / duration_s
        return WorkloadStats(
            target_rate_ops=target_rate,
            achieved_rate_ops=achieved_rate,
            busy_fraction=min(busy_time / duration_s, 1.0),
            batches=batches,
            mean_response_time_s=float(np.mean(response_times)) if response_times else service,
        )
