"""Benchmark run results.

A :class:`RunResult` mirrors the content of one published SPEC Power report:
system description, per-load-level performance and power, the active-idle
measurement and the overall ssj_ops/W score.  The report writer
(:mod:`repro.reportgen`) serialises these objects; the parser reads the
serialised form back — together they close the round-trip the analysis code
is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..market.fleet import SystemPlan
from ..powermodel.cpu import CPUSpec
from ..powermodel.server import ServerConfiguration

__all__ = ["LoadLevelResult", "RunResult"]


@dataclass(frozen=True)
class LoadLevelResult:
    """One graduated measurement interval (or the active-idle interval)."""

    target_load: float
    actual_load: float
    ssj_ops: float
    average_power_w: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_load <= 1.0:
            raise SimulationError("target_load must be in [0, 1]")
        if self.average_power_w < 0:
            raise SimulationError("average_power_w must be >= 0")
        if self.ssj_ops < 0:
            raise SimulationError("ssj_ops must be >= 0")

    @property
    def is_active_idle(self) -> bool:
        return self.target_load == 0.0

    @property
    def performance_to_power_ratio(self) -> float:
        if self.average_power_w <= 0:
            return 0.0
        return self.ssj_ops / self.average_power_w


@dataclass(frozen=True)
class RunResult:
    """A complete simulated SPECpower_ssj2008 run for one submission."""

    plan: SystemPlan
    cpu: CPUSpec
    configuration: ServerConfiguration
    levels: tuple[LoadLevelResult, ...]
    calibrated_ops: float
    accepted: bool = True

    def __post_init__(self) -> None:
        if not self.levels:
            raise SimulationError("a run needs at least one measured level")

    # ------------------------------------------------------------------ #
    @property
    def active_idle(self) -> LoadLevelResult:
        """The active-idle interval (target load 0 %)."""
        for level in self.levels:
            if level.is_active_idle:
                return level
        raise SimulationError("run has no active idle interval")

    @property
    def load_levels(self) -> list[LoadLevelResult]:
        """The graduated levels, highest target load first, idle excluded."""
        graded = [level for level in self.levels if not level.is_active_idle]
        return sorted(graded, key=lambda level: -level.target_load)

    @property
    def full_load(self) -> LoadLevelResult:
        levels = self.load_levels
        if not levels or levels[0].target_load != 1.0:
            raise SimulationError("run has no 100 % load level")
        return levels[0]

    # ------------------------------------------------------------------ #
    @property
    def total_nodes(self) -> int:
        return self.plan.nodes

    @property
    def total_sockets(self) -> int:
        return self.plan.nodes * self.plan.sockets

    @property
    def overall_efficiency(self) -> float:
        """Overall ssj_ops/W: sum of ops divided by sum of power, idle included."""
        total_ops = sum(level.ssj_ops for level in self.levels)
        total_power = sum(level.average_power_w for level in self.levels)
        if total_power <= 0:
            raise SimulationError("total power must be positive")
        return total_ops / total_power

    def level_at(self, target_load: float) -> LoadLevelResult:
        """The measurement at a specific target load (e.g. ``0.7``)."""
        for level in self.levels:
            if abs(level.target_load - target_load) < 1e-9:
                return level
        raise SimulationError(f"no measurement at target load {target_load}")

    def summary(self) -> dict:
        """Compact dictionary used by examples and quick inspection."""
        full = self.full_load
        idle = self.active_idle
        return {
            "run_id": self.plan.run_id,
            "cpu": self.cpu.model,
            "vendor": self.cpu.vendor.value,
            "sockets": self.plan.sockets,
            "nodes": self.plan.nodes,
            "hw_avail": str(self.plan.hw_avail),
            "overall_ssj_ops_per_watt": round(self.overall_efficiency, 1),
            "full_load_power_w": round(full.average_power_w, 1),
            "active_idle_power_w": round(idle.average_power_w, 1),
            "idle_fraction": round(idle.average_power_w / full.average_power_w, 4)
            if full.average_power_w > 0
            else None,
        }
