"""Vectorized batch simulation: many benchmark runs as NumPy arrays.

:class:`BatchDirector` is the array-oriented counterpart of
:class:`repro.simulator.director.RunDirector`.  Where the scalar director
walks one Python loop per load level per node, the batch director simulates
N runs at once: calibration, the graduated load ladder and active idle are
evaluated as ``(runs x levels)`` matrices through the array-aware power
model, and the per-run measurement chain collapses into a handful of
vectorized expressions.  Campaigns with thousands of units become
simulator-bound on NumPy kernels instead of the Python interpreter.

Equivalence contract
--------------------
Batched results are **bit-for-bit identical** to the scalar director, run
by run:

* every run's RNG is seeded exactly as the scalar path seeds it (SHA-256 of
  ``"{seed}:{run_id}"``), so content-hash campaign cache keys stay valid,
* stochastic draws are pulled from each run's own generator in precisely the
  scalar order (analyzer calibration, throughput/power variation,
  calibration intervals, one sampling draw per measured level, the idle
  quotient, the idle sampling draw),
* the deterministic math goes through the same NumPy primitives the scalar
  model methods use (see :mod:`repro.powermodel`), so elementwise array
  evaluation reproduces the scalar floating-point results exactly.

The event-driven fidelity simulates an explicit queue whose length depends
on random arrivals — inherently sequential — so ``fidelity="event"`` falls
back to the scalar director per run.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError
from ..faults.plan import fault_point
from ..market.catalog import Catalog, default_catalog
from ..market.fleet import SystemPlan
from ..powermodel.server import ServerConfiguration, ServerPowerModel
from .director import RunDirector, SimulationOptions, _seed_from
from .measurement import BatchPowerAnalyzer
from .result import LoadLevelResult, RunResult

__all__ = ["BatchDirector"]

#: Calibration intervals the SPEC run rules prescribe (see ``calibration``).
_CALIBRATION_INTERVALS = 3

#: Default rows per vectorized window.  Every per-run RNG stream is seeded
#: independently, so evaluating a large batch in fixed-size windows is
#: bit-identical to one monolithic call — the window only bounds the
#: ``(runs x levels)`` temporaries, keeping kernel memory O(window) when a
#: caller (the sharded campaign runner, say) hands over thousands of plans.
DEFAULT_MAX_ROWS = 4096


class BatchDirector:
    """Executes many benchmark runs at once as array operations.

    Parameters mirror :class:`RunDirector`; ``corpus_seed`` is the default
    seed for plans whose seed is not given per run in :meth:`run_batch`.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        options: SimulationOptions | None = None,
        corpus_seed: int = 2024,
    ):
        self.catalog = catalog or default_catalog()
        self.options = options or SimulationOptions()
        self.corpus_seed = corpus_seed
        self._scalar = RunDirector(self.catalog, self.options, corpus_seed)

    # ------------------------------------------------------------------ #
    def build_configuration(self, plan: SystemPlan) -> ServerConfiguration:
        """Server configuration (one node) described by a plan."""
        return self._scalar.build_configuration(plan)

    def run(self, plan: SystemPlan) -> RunResult:
        """Simulate a single plan (convenience wrapper over the batch path)."""
        return self.run_batch([plan])[0]

    def run_batch(
        self,
        plans: Sequence[SystemPlan],
        seeds: Sequence[int] | None = None,
        max_rows: int | None = DEFAULT_MAX_ROWS,
    ) -> list[RunResult]:
        """Simulate every plan; results are ordered like the input.

        ``seeds`` optionally gives each plan its own corpus seed (campaign
        units sweep seeds); by default every plan uses ``corpus_seed``.
        ``max_rows`` bounds the rows of any single vectorized evaluation
        (``None`` disables windowing); results are bit-identical either way
        because every run draws from its own seeded RNG stream.
        """
        plans = list(plans)
        if seeds is None:
            seeds = [self.corpus_seed] * len(plans)
        else:
            seeds = [int(seed) for seed in seeds]
            if len(seeds) != len(plans):
                raise SimulationError("seeds must match plans one-to-one")
        if max_rows is not None and max_rows < 1:
            raise SimulationError(f"max_rows must be >= 1, got {max_rows}")
        if not plans:
            return []
        # A raise here fails the whole vectorized chunk; the campaign runner
        # falls back to per-unit scalar execution, which must converge.
        fault_point("batch.run", ctx=f"plans{len(plans)}")
        from ..obs.trace import get_tracer

        options = self.options
        with get_tracer().span(
            "batch.run", plans=len(plans), fidelity=options.fidelity
        ):
            if options.fidelity == "event":
                # Event-mode queueing is sequential by nature; delegate per run.
                return [
                    RunDirector(self.catalog, options, seed).run(plan)
                    for plan, seed in zip(plans, seeds)
                ]
            if max_rows is not None and len(plans) > max_rows:
                results: list[RunResult] = []
                for start in range(0, len(plans), max_rows):
                    results.extend(
                        self._run_window(
                            plans[start : start + max_rows],
                            seeds[start : start + max_rows],
                        )
                    )
                return results
            return self._run_window(plans, seeds)

    def _run_window(
        self, plans: list[SystemPlan], seeds: list[int]
    ) -> list[RunResult]:
        """One vectorized evaluation of up to ``max_rows`` plans."""
        options = self.options
        levels = options.effective_load_levels
        measured = [level for level in levels if level != 0.0]
        n_runs = len(plans)
        n_measured = len(measured)

        # One model per distinct configuration; runs sharing hardware share
        # the model evaluation below.
        models: dict[ServerConfiguration, ServerPowerModel] = {}
        configurations: list[ServerConfiguration] = []
        group_rows: dict[ServerConfiguration, list[int]] = {}
        for row, plan in enumerate(plans):
            configuration = self.build_configuration(plan)
            configurations.append(configuration)
            if configuration not in models:
                models[configuration] = ServerPowerModel(configuration)
                group_rows[configuration] = []
            group_rows[configuration].append(row)

        analyzer = BatchPowerAnalyzer(
            sample_noise_w=1.5 if options.measurement_noise else 0.0,
            accuracy=0.005 if options.measurement_noise else 0.0,
        )
        noise = self._draw_noise_streams(
            plans, seeds, configurations, models, analyzer, n_measured
        )

        nodes = np.array([plan.nodes for plan in plans], dtype=float)

        # Calibration: true maximum perturbed per interval, calibrated rate
        # is the mean of the last two intervals (SPEC run rules).  The first
        # interval's rate (with its warm-up penalty) never enters the mean,
        # so only its noise draw is consumed, not its value.
        max_ops = np.array(
            [models[configuration].max_throughput_ops() for configuration in configurations]
        )
        true_max = max_ops * noise.throughput_factor
        rate_2 = true_max * 1.0 * noise.calibration[:, 1]
        rate_3 = true_max * 1.0 * noise.calibration[:, 2]
        calibrated = (rate_2 + rate_3) / 2.0

        # Graduated levels: the analytic scheduler always reaches the target
        # rate scaled from the *calibrated* maximum; calibration error shifts
        # the achieved fraction of the *true* maximum slightly.
        targets = np.array(measured)
        achieved_rate = targets[None, :] * calibrated[:, None]
        achieved_fraction = np.minimum(achieved_rate / true_max[:, None], 1.0)

        # Power model, vectorized per configuration group over (runs x levels).
        node_power = np.empty((n_runs, n_measured))
        extrapolated_idle = np.empty(n_runs)
        base_quotient = np.empty(n_runs)
        for configuration, rows in group_rows.items():
            model = models[configuration]
            node_power[rows, :] = model.node_power_w(achieved_fraction[rows, :])
            extrapolated_idle[rows] = model.extrapolated_idle_power_w()
            base_quotient[rows] = model.package_cstates.effective_quotient(
                configuration.logical_cpus_per_node
            )

        true_level_power = node_power * noise.power_factor[:, None] * nodes[:, None]
        measured_power = analyzer.measure_power(
            true_level_power, noise.analyzer_factor[:, None], noise.level[:, :]
        )
        reported_ops = achieved_rate * nodes[:, None]

        # Active idle: package C-states divide the extrapolated idle power by
        # the achieved quotient (with per-run spread when noise is on).
        quotient = np.maximum(base_quotient * noise.idle_quotient, 1.0)
        true_idle_power = (extrapolated_idle / quotient) * noise.power_factor * nodes
        measured_idle = analyzer.measure_power(
            true_idle_power, noise.analyzer_factor, noise.idle
        )

        results: list[RunResult] = []
        for row, plan in enumerate(plans):
            run_levels = [
                LoadLevelResult(
                    target_load=measured[column],
                    actual_load=float(achieved_fraction[row, column]),
                    ssj_ops=float(reported_ops[row, column]),
                    average_power_w=float(measured_power[row, column]),
                )
                for column in range(n_measured)
            ]
            run_levels.append(
                LoadLevelResult(
                    target_load=0.0,
                    actual_load=0.0,
                    ssj_ops=0.0,
                    average_power_w=float(measured_idle[row]),
                )
            )
            results.append(
                RunResult(
                    plan=plan,
                    cpu=configurations[row].cpu,
                    configuration=configurations[row],
                    levels=tuple(run_levels),
                    calibrated_ops=float(calibrated[row]) * plan.nodes,
                    accepted=plan.accepted,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def _draw_noise_streams(
        self,
        plans: list[SystemPlan],
        seeds: list[int],
        configurations: list[ServerConfiguration],
        models: dict[ServerConfiguration, ServerPowerModel],
        analyzer: BatchPowerAnalyzer,
        n_measured: int,
    ) -> "_NoiseStreams":
        """Per-run stochastic draws, pulled in exactly the scalar order."""
        options = self.options
        n_runs = len(plans)
        streams = _NoiseStreams.identity(n_runs, n_measured)
        if not options.measurement_noise:
            return streams
        level_sigma = analyzer.interval_noise_sigma(options.interval_duration_s)
        calibration_sigma = analyzer.calibration_sigma()
        for row, (plan, seed) in enumerate(zip(plans, seeds)):
            rng = np.random.default_rng(_seed_from(plan.run_id, seed))
            # 1. analyzer calibration offset (PowerAnalyzer construction)
            streams.analyzer_factor[row] = 1.0 + float(rng.normal(0.0, calibration_sigma))
            # 2. per-run throughput/power variation (BIOS, firmware, tuning)
            streams.throughput_factor[row] = float(
                np.exp(rng.normal(0.0, options.throughput_variation_sigma))
            )
            streams.power_factor[row] = float(
                np.exp(rng.normal(0.0, options.power_variation_sigma))
            )
            # 3. calibration interval noise (skipped entirely at sigma 0,
            #    matching the scalar ``calibrate``; scalar np.exp per draw so
            #    the values are the exact floats the scalar path computes)
            if options.calibration_noise_sigma > 0:
                for interval in range(_CALIBRATION_INTERVALS):
                    streams.calibration[row, interval] = float(
                        np.exp(rng.normal(0.0, options.calibration_noise_sigma))
                    )
            # 4. one sampling draw per measured level, in ladder order
            streams.level[row, :] = rng.normal(0.0, level_sigma, n_measured)
            # 5. idle quotient spread, then the idle sampling draw
            quotient_sigma = models[configurations[row]].package_cstates.quotient_sigma
            if quotient_sigma > 0:
                streams.idle_quotient[row] = float(np.exp(rng.normal(0.0, quotient_sigma)))
            streams.idle[row] = float(rng.normal(0.0, level_sigma))
        return streams


class _NoiseStreams:
    """Arrays of per-run stochastic factors (identity when noise is off)."""

    __slots__ = (
        "analyzer_factor",
        "throughput_factor",
        "power_factor",
        "calibration",
        "level",
        "idle_quotient",
        "idle",
    )

    def __init__(self, analyzer_factor, throughput_factor, power_factor,
                 calibration, level, idle_quotient, idle):
        self.analyzer_factor = analyzer_factor
        self.throughput_factor = throughput_factor
        self.power_factor = power_factor
        self.calibration = calibration
        self.level = level
        self.idle_quotient = idle_quotient
        self.idle = idle

    @classmethod
    def identity(cls, n_runs: int, n_measured: int) -> "_NoiseStreams":
        return cls(
            analyzer_factor=np.ones(n_runs),
            throughput_factor=np.ones(n_runs),
            power_factor=np.ones(n_runs),
            calibration=np.ones((n_runs, _CALIBRATION_INTERVALS)),
            level=np.zeros((n_runs, n_measured)),
            idle_quotient=np.ones(n_runs),
            idle=np.zeros(n_runs),
        )
