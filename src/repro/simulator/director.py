"""The run director: one full SPECpower_ssj2008 run over a system plan.

The director stitches the pieces together exactly like the real harness:

1. build the system under test (server model) from the plan and catalog,
2. run the calibration intervals to establish the 100 % throughput,
3. run the graduated measurement intervals (100 % … 10 %),
4. run the active-idle interval,
5. assemble a :class:`repro.simulator.result.RunResult`.

Multi-node submissions (blade chassis) run the same workload on every node;
reported figures are sums over nodes, as in real reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..market.catalog import Catalog, default_catalog
from ..market.fleet import SystemPlan
from ..powermodel.server import (
    STANDARD_LOAD_LEVELS,
    ServerConfiguration,
    ServerPowerModel,
)
from .calibration import calibrate
from .measurement import PowerAnalyzer
from .result import LoadLevelResult, RunResult
from .workload import WorkloadEngine

__all__ = ["SimulationOptions", "RunDirector", "WORKLOAD_PRESETS"]


@dataclass(frozen=True)
class SimulationOptions:
    """Tunables of the benchmark simulation.

    ``fidelity`` selects the workload engine mode: ``"analytic"`` (fast,
    default — used for corpus generation) or ``"event"`` (explicit batch
    scheduling, used in the fine-grained example and tests).
    ``measurement_noise`` disables all stochastic perturbations when False,
    which makes runs exactly reproducible from the server model alone.
    ``load_levels`` restricts the measured target loads to a subset of the
    standard graduated levels (campaigns use shorter ladders to trade
    resolution for throughput); ``None`` measures the full standard ladder.
    A custom set must contain the 100 % level and active idle because the
    downstream validation layer rejects runs without them.
    """

    interval_duration_s: float = 240.0
    fidelity: str = "analytic"
    measurement_noise: bool = True
    calibration_noise_sigma: float = 0.01
    throughput_variation_sigma: float = 0.03
    power_variation_sigma: float = 0.04
    load_levels: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.interval_duration_s <= 0:
            raise SimulationError("interval_duration_s must be positive")
        if self.fidelity not in ("analytic", "event"):
            raise SimulationError(f"unknown fidelity {self.fidelity!r}")
        for name in ("calibration_noise_sigma", "throughput_variation_sigma",
                     "power_variation_sigma"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0")
        if self.load_levels is not None:
            levels = tuple(float(level) for level in self.load_levels)
            unknown = [lv for lv in levels if lv not in STANDARD_LOAD_LEVELS]
            if unknown:
                raise SimulationError(
                    f"load_levels must be drawn from {STANDARD_LOAD_LEVELS}; "
                    f"got {unknown}"
                )
            if len(set(levels)) != len(levels):
                raise SimulationError("load_levels must not repeat levels")
            if 1.0 not in levels or 0.0 not in levels:
                raise SimulationError(
                    "load_levels must include the 100 % level and active idle"
                )
            object.__setattr__(self, "load_levels", levels)

    @property
    def effective_load_levels(self) -> tuple[float, ...]:
        """The target loads a run measures, highest first."""
        if self.load_levels is None:
            return STANDARD_LOAD_LEVELS
        return tuple(sorted(self.load_levels, reverse=True))


#: Named option bundles for the common scenario families.  The session
#: workload registry (:meth:`repro.session.Session.register_workload`) is
#: seeded from these; new families plug in there without touching this
#: module.  ``fast`` trades per-level resolution for throughput with a
#: shortened load ladder; ``noise-free`` makes runs exactly reproducible
#: from the server model alone; ``event`` selects the fine-grained
#: event-driven workload engine.
WORKLOAD_PRESETS: dict[str, SimulationOptions] = {
    "default": SimulationOptions(),
    "fast": SimulationOptions(load_levels=(1.0, 0.7, 0.5, 0.2, 0.1, 0.0)),
    "noise-free": SimulationOptions(measurement_noise=False),
    "event": SimulationOptions(fidelity="event"),
}


def _seed_from(run_id: str, seed: int) -> int:
    """Stable per-run seed derived from the run id and the corpus seed."""
    digest = hashlib.sha256(f"{seed}:{run_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RunDirector:
    """Executes benchmark runs for system plans."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        options: SimulationOptions | None = None,
        corpus_seed: int = 2024,
    ):
        self.catalog = catalog or default_catalog()
        self.options = options or SimulationOptions()
        self.corpus_seed = corpus_seed

    # ------------------------------------------------------------------ #
    def build_configuration(self, plan: SystemPlan) -> ServerConfiguration:
        """Server configuration (one node) described by a plan."""
        entry = self.catalog.get(plan.cpu_model)
        return ServerConfiguration(
            cpu=entry.cpu,
            sockets=plan.sockets,
            nodes=plan.nodes,
            memory_gb=plan.memory_gb,
            os_name=plan.os_name,
            jvm_name=plan.jvm_name,
            system_vendor=plan.system_vendor,
            system_model=plan.system_model,
            psu_rating_w=plan.psu_rating_w,
        )

    def run(self, plan: SystemPlan) -> RunResult:
        """Simulate the full benchmark for one submission plan."""
        options = self.options
        rng = np.random.default_rng(_seed_from(plan.run_id, self.corpus_seed))
        configuration = self.build_configuration(plan)
        model = ServerPowerModel(configuration)
        analyzer = PowerAnalyzer(
            rng=rng,
            sample_noise_w=1.5 if options.measurement_noise else 0.0,
            accuracy=0.005 if options.measurement_noise else 0.0,
        )

        # Per-run multiplicative variations: BIOS settings, memory population,
        # firmware versions and binary/JVM tuning all shift both throughput
        # and power a few percent between otherwise identical systems.
        if options.measurement_noise:
            throughput_factor = float(np.exp(rng.normal(0.0, options.throughput_variation_sigma)))
            power_factor = float(np.exp(rng.normal(0.0, options.power_variation_sigma)))
        else:
            throughput_factor = 1.0
            power_factor = 1.0

        true_max_per_node = model.max_throughput_ops() * throughput_factor
        calibration = calibrate(
            true_max_per_node,
            rng=rng,
            noise_sigma=options.calibration_noise_sigma if options.measurement_noise else 0.0,
        )
        engine = WorkloadEngine(
            max_rate_ops=calibration.calibrated_rate_ops,
            workers=configuration.logical_cpus_per_node,
        )

        nodes = plan.nodes
        levels: list[LoadLevelResult] = []
        for target in options.effective_load_levels:
            if target == 0.0:
                idle_rng = rng if options.measurement_noise else None
                true_power = model.active_idle_power_w(idle_rng) * power_factor * nodes
                interval = analyzer.measure_interval(0.0, 0.0, 0.0, true_power,
                                                     options.interval_duration_s)
            else:
                stats = engine.run_interval(
                    target,
                    duration_s=options.interval_duration_s,
                    rng=rng,
                    fidelity=options.fidelity,
                )
                # The achieved load relative to the *true* maximum defines the
                # power drawn; calibration error shifts it slightly.
                achieved_fraction = min(stats.achieved_rate_ops / true_max_per_node, 1.0)
                true_power = model.node_power_w(achieved_fraction) * power_factor * nodes
                interval = analyzer.measure_interval(
                    target_load=target,
                    actual_load=achieved_fraction,
                    ssj_ops=stats.achieved_rate_ops * nodes,
                    true_power_w=true_power,
                    duration_s=options.interval_duration_s,
                )
            levels.append(
                LoadLevelResult(
                    target_load=interval.target_load,
                    actual_load=interval.actual_load,
                    ssj_ops=interval.ssj_ops,
                    average_power_w=interval.average_power_w,
                )
            )

        return RunResult(
            plan=plan,
            cpu=configuration.cpu,
            configuration=configuration,
            levels=tuple(levels),
            calibrated_ops=calibration.calibrated_rate_ops * nodes,
            accepted=plan.accepted,
        )

    def run_many(self, plans) -> list[RunResult]:
        """Simulate a sequence of plans (serial; parallelism happens one level
        up in :mod:`repro.reportgen.writer` where results are written out)."""
        return [self.run(plan) for plan in plans]
