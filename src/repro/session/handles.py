"""Typed, lazily-evaluated artifact handles.

A handle names one pipeline artifact — a corpus on disk, the derived run
frame, an analysis, a campaign — by the content hash of everything that
determines it (stage parameters, upstream artifact keys, catalog content).
``result()`` is the only way to get the value: it checks the session memo,
then the workspace store, and only then computes — so invoking the same
stage twice does the work once, and a warm workspace reloads instantly
across processes.

Handles are cheap to create; nothing is parsed, simulated or loaded until
``result()`` is called.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from ..frame import Frame

if TYPE_CHECKING:  # import-cycle-safe: only the type checker needs these
    from ..core.report import PaperComparison
    from ..campaign.runner import CampaignResult
    from ..campaign.sharding import StreamingCampaignResult
    from ..campaign.spec import CampaignSpec
    from ..reportgen.writer import CorpusGenerationReport
    from ..simulator.director import SimulationOptions
    from .session import Session

__all__ = [
    "AnalysisResult",
    "ArtifactHandle",
    "CorpusHandle",
    "DatasetHandle",
    "DatasetSummary",
    "AnalysisHandle",
    "CampaignHandle",
]


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of the paper's analysis pipeline over a run frame."""

    unfiltered: Frame
    filtered: Frame
    comparison: "PaperComparison"
    figures: tuple = ()

    def summary(self) -> str:
        """Human-readable paper-vs-measured summary."""
        return self.comparison.to_text()

    @property
    def era_comparisons(self) -> list[str]:
        """Names of the scalar findings available in the comparison."""
        return [finding.name for finding in self.comparison.findings]

    def save_figures(self, directory: str | os.PathLike) -> list[Path]:
        written: list[Path] = []
        for artifact in self.figures:
            written.extend(artifact.save(directory))
        return written


@dataclass(frozen=True)
class DatasetSummary:
    """Parse funnel of a dataset artifact (available warm, without records)."""

    directory: str
    parsed_count: int
    rejected: tuple[tuple[str, str], ...]  # (file_name, reason)

    @property
    def total_files(self) -> int:
        return self.parsed_count + len(self.rejected)

    def rejection_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for _, reason in self.rejected:
            counts[reason] = counts.get(reason, 0) + 1
        return counts

    def describe(self) -> str:
        reasons = ", ".join(
            f"{reason}: {count}"
            for reason, count in sorted(self.rejection_counts().items())
        )
        return (
            f"{self.total_files} files in {self.directory}: "
            f"{self.parsed_count} parsed, {len(self.rejected)} rejected "
            f"({reasons or 'none'})"
        )


# --------------------------------------------------------------------------- #
class ArtifactHandle:
    """Base class: content key + memo/store/compute resolution order."""

    kind: str = "artifact"

    def __init__(self, session: "Session", key: str):
        self._session = session
        self._key = key

    @property
    def session(self) -> "Session":
        return self._session

    @property
    def key(self) -> str:
        """Content hash identifying this artifact."""
        return self._key

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.kind}:{self._key[:12]}>"

    # ------------------------------------------------------------------ #
    @property
    def _memo_key(self) -> str:
        """The session-memo key: the content key, unless a subclass's value
        also depends on *where* it was produced (see ``CampaignHandle``)."""
        return self._key

    @property
    def in_memory(self) -> bool:
        """Whether the result is already memoized in this session."""
        return self._session._memo_has(self.kind, self._memo_key)

    @property
    def is_cached(self) -> bool:
        """Whether ``result()`` would return without recomputing."""
        return self.in_memory or self._stored()

    def result(self) -> Any:
        """The artifact value: memoized, else loaded warm, else computed."""
        from ..obs.trace import get_tracer

        with get_tracer().span(f"session.{self.kind}", key=self._key[:12]) as span:
            if self._session._memo_has(self.kind, self._memo_key):
                span.set("source", "memo")
                return self._session._memo_get(self.kind, self._memo_key)
            value = self._load()
            if value is not None:
                span.set("source", "store")
            else:
                span.set("source", "compute")
                value = self._compute()
            self._session._memo_put(self.kind, self._memo_key, value)
            return value

    # Subclass protocol ------------------------------------------------- #
    def _stored(self) -> bool:
        """Whether a warm on-disk artifact exists (memo aside)."""
        return False

    def _load(self) -> Any | None:
        """Rebuild the value from the workspace store; ``None`` on a miss."""
        return None

    def _compute(self) -> Any:
        """Compute the value (persisting it when the stage supports it)."""
        raise NotImplementedError


# --------------------------------------------------------------------------- #
class CorpusHandle(ArtifactHandle):
    """A synthetic corpus of SPEC-style result files.

    The artifact is a *directory* of ``.txt`` reports; the store keeps the
    generation record (location, counts) so a warm session returns without
    re-simulating a single run.  A handle bound to an explicit ``directory``
    (the ``spectrends generate --output`` flow) always regenerates — external
    directories are the caller's to manage, not the workspace's.
    """

    kind = "corpus"

    def __init__(
        self,
        session: "Session",
        key: str,
        runs: int,
        seed: int,
        options: "SimulationOptions",
        directory: str | os.PathLike | None = None,
    ):
        super().__init__(session, key)
        self.runs = runs
        self.seed = seed
        self.options = options
        self._explicit = Path(directory) if directory is not None else None
        self._materialized: "CorpusGenerationReport | None" = None

    @property
    def directory(self) -> Path:
        """Where the report files live (or will live once computed)."""
        if self._explicit is not None:
            return self._explicit
        return self._session._corpus_root() / self._key[:16]

    @property
    def is_external(self) -> bool:
        """Whether the handle writes to a caller-managed directory."""
        return self._explicit is not None

    def result(self) -> "CorpusGenerationReport":
        # The content key excludes the directory (two corpora with the same
        # inputs are the same artifact *content*), so an explicit-directory
        # handle must stay out of the shared memo entirely: it neither
        # serves a workspace report for a directory that was never written,
        # nor poisons the memo for workspace handles with the same key.
        # The handle itself still generates at most once — downstream
        # datasets call ``result()`` to materialise their upstream, and one
        # handle must not re-simulate the corpus per dataset operation.
        if self._explicit is not None:
            if self._materialized is None:
                self._materialized = self._compute()
            return self._materialized
        return super().result()

    # ------------------------------------------------------------------ #
    def _record(self) -> dict | None:
        record = self._session._store_for(self.kind).get(self._key)
        if record is None or self._explicit is not None:
            return None
        directory = Path(record["directory"])
        # Guard against a pruned or hand-edited workspace: the record is
        # only trusted while the file tree still matches it.
        if not directory.is_dir():
            return None
        if sum(1 for _ in directory.glob("*.txt")) != record["total_files"]:
            return None
        return record

    def _stored(self) -> bool:
        return self._record() is not None

    def _load(self) -> "CorpusGenerationReport | None":
        record = self._record()
        if record is None:
            return None
        from ..reportgen.writer import CorpusGenerationReport

        return CorpusGenerationReport(
            directory=Path(record["directory"]),
            total_files=record["total_files"],
            clean_runs=record["clean_runs"],
            defective_runs=record["defective_runs"],
            seed=record["seed"],
        )

    def _compute(self) -> "CorpusGenerationReport":
        from ..obs.trace import get_tracer
        from ..reportgen import generate_corpus_files

        with get_tracer().span("corpus.generate", runs=self.runs):
            report = generate_corpus_files(
                self.directory,
                total_parsed_runs=self.runs,
                seed=self.seed,
                parallel=self._session.policy.parallel_config(),
                options=self.options,
                # None for the default catalog keeps worker payloads small.
                catalog=self._session._worker_catalog(),
            )
        if self._explicit is None:
            self._session._store_for(self.kind).put(
                self._key,
                {
                    "directory": str(report.directory),
                    "total_files": report.total_files,
                    "clean_runs": report.clean_runs,
                    "defective_runs": report.defective_runs,
                    "seed": report.seed,
                },
            )
        return report


# --------------------------------------------------------------------------- #
class DatasetHandle(ArtifactHandle):
    """The derived analysis frame of one corpus.

    Cold, a *workspace* corpus takes the parse-bypass fast path: the fleet is
    simulated and every :class:`RunRecord` is derived directly from its
    :class:`RunResult` (:func:`repro.reportgen.derive_corpus_report`) —
    bit-identical to the render→parse round trip, without rendering a single
    report.  External corpora (a path, or a caller-managed ``directory=``)
    are parsed and validated exactly as :func:`repro.core.dataset.load_runs`
    would — the text path stays the only route for files the session did not
    derive itself.

    The derived frame is then persisted as a binary ``.npz`` columnar
    sidecar (values + validity mask per column; JSON keeps the metadata and
    the parse funnel), so every later invocation — same session or a new
    process over the same workspace — reloads typed arrays without JSON row
    decoding, type inference or re-derivation.  Legacy JSON-row artifacts
    written by earlier versions still load transparently.  Keyed by the
    upstream corpus key (session corpora) or by the content digest of the
    file tree (external corpora), so editing one report file invalidates the
    dataset and everything downstream.
    """

    kind = "dataset"

    def __init__(
        self,
        session: "Session",
        key: str,
        source: "CorpusHandle | Path",
        text_path: bool = False,
        mmap: bool = False,
    ):
        super().__init__(session, key)
        self._source = source
        self._text_path = text_path
        self._mmap = mmap

    @property
    def _memo_key(self) -> str:
        # A mapped frame and an eager frame are the same *artifact* (the
        # content key is shared — mmap is a load knob, not a stage input)
        # but different in-memory values, so they memoize separately.
        return f"{self._key}/mmap" if self._mmap else self._key

    @property
    def uses_mmap(self) -> bool:
        """Whether ``result()`` returns an out-of-core, memmap-backed frame.

        Requires a persisted columnar sidecar: ephemeral workspaces and
        caller-managed corpus directories never persist one, so they fall
        back to the eager heap frame (same values, different residency).
        """
        return self._mmap and self._persists

    @property
    def corpus(self) -> "CorpusHandle | None":
        """The upstream corpus handle (``None`` for external directories)."""
        return self._source if isinstance(self._source, CorpusHandle) else None

    @property
    def directory(self) -> Path:
        return self._source.directory if self.corpus else Path(self._source)

    @property
    def _persists(self) -> bool:
        """Whether the rows artifact is written to / trusted from disk.

        Ephemeral workspaces die with the session (the memo already covers
        in-process reuse), and caller-managed corpus directories may drift
        from their generation key — neither may serve rows across processes.
        """
        if self._session._ephemeral:
            return False
        corpus = self.corpus
        return corpus is None or not corpus.is_external

    @property
    def uses_parse_bypass(self) -> bool:
        """Whether this dataset derives records directly from simulation.

        True exactly for workspace-managed synthetic corpora (unless the
        handle was created with ``text_path=True``); external directories
        always go through the render→parse text path.
        """
        if self._text_path:
            return False
        corpus = self.corpus
        return corpus is not None and not corpus.is_external

    # ------------------------------------------------------------------ #
    def _stored(self) -> bool:
        return self._persists and self._key in self._session._store_for(self.kind)

    @staticmethod
    def _build(rows: list[dict]) -> Frame:
        from ..core.dataset import derive_columns

        frame = Frame.from_records(rows)
        if len(frame) > 0:
            frame = derive_columns(frame)
        return frame

    def _load(self) -> Frame | None:
        if not self._persists:
            return None
        store = self._session._store_for(self.kind)
        payload = store.get(self._key)
        if payload is None:
            return None
        if "columns" in payload:
            sidecar = store.sidecar_path(self._key)
            if not sidecar.exists():  # pruned sidecar: treat as a miss
                return None
            if self._mmap:
                from ..frame.mmapio import open_frame_npz

                return open_frame_npz(sidecar, payload["columns"])
            from .columnar import frame_from_arrays

            arrays = store.get_arrays(self._key)
            if arrays is None:
                return None
            return frame_from_arrays(payload["columns"], arrays)
        return self._build(payload["rows"])  # legacy JSON-row artifact

    def _compute(self) -> Frame:
        report = self._derive() if self.uses_parse_bypass else self._parse()
        rows = [record.to_dict() for record in report.records]
        frame = self._build(rows)
        if self._persists:
            from .columnar import frame_to_arrays

            meta, arrays = frame_to_arrays(frame)
            self._session._store_for(self.kind).put(
                self._key,
                {
                    "directory": report.directory,
                    "parsed_count": len(rows),
                    "rejected": [[f.file_name, f.reason] for f in report.rejected],
                    "columns": meta,
                },
                arrays=arrays,
            )
            if self._mmap:
                # Serve the freshly persisted sidecar as a mapped frame so a
                # cold mmap=True call honours the residency contract too.
                mapped = self._load()
                if mapped is not None:
                    return mapped
        return frame

    def _derive(self):
        """Parse-bypass funnel: simulate + derive records, no text round trip."""
        from ..obs.trace import get_tracer
        from ..reportgen.records import derive_corpus_report

        corpus = self.corpus
        policy = self._session.policy
        with get_tracer().span("dataset.derive", runs=corpus.runs):
            return derive_corpus_report(
                corpus.directory,
                total_parsed_runs=corpus.runs,
                seed=corpus.seed,
                options=corpus.options,
                catalog=self._session._worker_catalog(),
                parallel=policy.parallel_config(),
                batch=policy.use_batch_kernel,
            )

    def _parse(self):
        """Parse the corpus directory (materialising it first if needed)."""
        from ..obs.trace import get_tracer
        from ..parser import parse_directory

        if self.corpus is not None:
            self.corpus.result()  # materialise the upstream artifact
        with get_tracer().span("dataset.parse"):
            return parse_directory(
                self.directory, parallel=self._session.policy.parallel_config()
            )

    # ------------------------------------------------------------------ #
    def parse_report(self):
        """The full :class:`CorpusParseReport` (always a fresh text parse).

        Always exercises the render→parse route — materialising a workspace
        corpus if needed — so it stays a ground-truth cross-check against the
        bypass-derived artifact.
        """
        return self._parse()

    def summary(self) -> DatasetSummary:
        """The parse funnel, from the warm store when possible."""
        if self._persists:
            payload = self._session._store_for(self.kind).get(self._key)
            if payload is None:
                self.result()  # computes and persists the payload
                payload = self._session._store_for(self.kind).get(self._key)
            if payload is not None:
                parsed = payload.get("parsed_count")
                if parsed is None:  # legacy JSON-row artifact
                    parsed = len(payload["rows"])
                return DatasetSummary(
                    directory=payload["directory"],
                    parsed_count=parsed,
                    rejected=tuple(
                        (name, reason) for name, reason in payload["rejected"]
                    ),
                )
        report = self._derive() if self.uses_parse_bypass else self._parse()
        return DatasetSummary(
            directory=report.directory,
            parsed_count=report.parsed_count,
            rejected=tuple((f.file_name, f.reason) for f in report.rejected),
        )


# --------------------------------------------------------------------------- #
class AnalysisHandle(ArtifactHandle):
    """An analysis over one dataset.

    ``name="paper"`` runs the full reproduction pipeline (filters, headline
    findings, Table I, correlation study, optionally figures) and returns an
    :class:`AnalysisResult`; any other name dispatches to an analysis
    registered on the session.  Results are memoized per content key; the
    dataset they read comes from the warm store, so a repeated analysis over
    an unchanged corpus performs no parsing and no simulation.
    """

    kind = "analysis"

    def __init__(
        self,
        session: "Session",
        key: str,
        dataset: DatasetHandle,
        name: str = "paper",
        table1: bool = True,
        figures: bool = False,
    ):
        super().__init__(session, key)
        self.dataset = dataset
        self.name = name
        self._table1 = table1
        self._figures = figures

    def _compute(self) -> Any:
        frame = self.dataset.result()
        if self.name == "paper":
            return self._session.analyze_frame(
                frame, table1=self._table1, figures=self._figures
            )
        fn: Callable[[Frame], Any] = self._session._registered_analysis(self.name)
        return fn(frame)


# --------------------------------------------------------------------------- #
class CampaignHandle(ArtifactHandle):
    """A declarative scenario sweep executed into a resumable store.

    Campaigns carry their own content-addressed unit cache; the handle adds
    workspace placement (one store directory per spec + catalog content) and
    session memoization on top, so ``session.campaign(spec)`` composes with
    the other stages without giving up resumption or the unit cache.
    """

    kind = "campaign"

    def __init__(
        self,
        session: "Session",
        key: str,
        spec: "CampaignSpec",
        store_dir: Path,
        max_units: int | None = None,
        shard_size: int | None = None,
        progress: Callable | None = None,
        workers: int | None = None,
    ):
        super().__init__(session, key)
        self.spec = spec
        self.store_dir = Path(store_dir)
        self.max_units = max_units
        self._explicit_shard_size = shard_size
        self._progress = progress
        self._explicit_workers = workers

    @property
    def shard_size(self) -> int | None:
        """Units per shard, or ``None`` for unsharded execution.

        An explicit ``session.campaign(..., shard_size=)`` wins; otherwise
        the session policy's shard layout (``shard_size`` clamped by
        ``max_resident_results``) applies.
        """
        if self._explicit_shard_size is not None:
            return self._explicit_shard_size
        return self._session.policy.effective_shard_size

    @property
    def sharded(self) -> bool:
        """Whether ``result()`` runs the streaming (bounded-memory) path."""
        return self.shard_size is not None

    @property
    def workers(self) -> int | None:
        """Worker-pool fan-out for the streaming path (``None`` = serial).

        An explicit ``session.campaign(..., workers=)`` wins; otherwise the
        policy decides (:attr:`ExecutionPolicy.campaign_workers`).  Only
        sharded, uncapped runs fan out — shards are the unit of
        distribution, and caps are per-run, not per-worker.
        """
        if not self.sharded or self.max_units is not None:
            return None
        if self._explicit_workers is not None:
            return self._explicit_workers
        return self._session.policy.campaign_workers

    @property
    def _memo_key(self) -> str:
        # The same spec executed into two different stores produces two
        # distinct on-disk artifacts: the memo must not serve one store's
        # result for the other.  The shard layout is folded in as well —
        # a sharded run returns a StreamingCampaignResult (rows on disk),
        # an unsharded one a CampaignResult (resident frame), and the memo
        # must never hand out one in place of the other.
        from .artifacts import digest_json

        return digest_json(
            {
                "campaign": self._key,
                "store": str(self.store_dir),
                "shard_size": self.shard_size,
            }
        )

    def _stored(self) -> bool:
        try:
            return self.status().is_complete
        except Exception:
            return False

    def result(self) -> "CampaignResult | StreamingCampaignResult":
        # A bounded run (max_units) is an execution request, not an
        # artifact: execute every time (the unit cache keeps repeats cheap)
        # and leave the memo to unbounded, complete results.
        if self.max_units is not None:
            return self._compute()
        return super().result()

    def _compute(self) -> "CampaignResult | StreamingCampaignResult":
        policy = self._session.policy
        if self.sharded:
            from ..campaign import stream_campaign

            return stream_campaign(
                self.spec,
                self.store_dir,
                parallel=policy.parallel_config(),
                catalog=self._session._worker_catalog(),
                shard_size=self.shard_size,
                max_units=self.max_units,
                batch=policy.use_batch_kernel,
                progress=self._progress,
                workers=self.workers,
                retry=policy.retry,
                policy=policy if policy.faults is not None else None,
            )
        from ..campaign import run_campaign

        return run_campaign(
            self.spec,
            self.store_dir,
            parallel=policy.parallel_config(),
            # None for the default catalog keeps worker payloads small.
            catalog=self._session._worker_catalog(),
            max_units=self.max_units,
            batch=policy.use_batch_kernel,
        )

    # ------------------------------------------------------------------ #
    def frame(self) -> Frame:
        result = self.result()
        if self.sharded:
            # Materialises every shard — only sensible at sizes the
            # unsharded runner could also hold.
            return result.frame()
        return result.frame

    def status(self):
        """Fresh progress snapshot from the on-disk store."""
        from ..campaign import CampaignStore

        return CampaignStore(self.store_dir).status()

    def resume(
        self, max_units: int | None = None
    ) -> "CampaignResult | StreamingCampaignResult":
        """Continue an interrupted campaign; refreshes the session memo."""
        policy = self._session.policy
        from ..campaign import CampaignStore

        # A store that recorded a shard layout must resume streaming even
        # when this handle is unsharded: a resident resume_campaign over a
        # streamed 100k-unit store would materialise the whole plan and
        # defeat the bounded-memory contract the layout was recorded for.
        stored_layout = CampaignStore(self.store_dir).stored_shard_size()
        if self.sharded or stored_layout is not None:
            from ..campaign import resume_streaming

            # An explicitly requested layout wins; otherwise resume with
            # the layout the interrupted run recorded (the precondition for
            # shard-granular skipping), falling back to the policy's.
            shard_size = self._explicit_shard_size
            if shard_size is None:
                shard_size = stored_layout or policy.effective_shard_size
            result = resume_streaming(
                self.store_dir,
                parallel=policy.parallel_config(),
                catalog=self._session._worker_catalog(),
                shard_size=shard_size,
                max_units=max_units,
                batch=policy.use_batch_kernel,
                progress=self._progress,
                # A capped resume is a budgeted top-up; fan-out is for
                # full runs only (caps are per-run, not per-worker).
                workers=None if max_units is not None else self.workers,
                retry=policy.retry,
                policy=policy if policy.faults is not None else None,
            )
        else:
            from ..campaign import resume_campaign

            result = resume_campaign(
                self.store_dir,
                parallel=policy.parallel_config(),
                catalog=self._session._worker_catalog(),
                max_units=max_units,
                batch=policy.use_batch_kernel,
            )
        # Only a complete, unbounded result may stand in for the artifact;
        # a bounded resume is partial progress, not the campaign.  A
        # streaming result produced for an unsharded handle (stored layout
        # override) must not impersonate the resident artifact either.
        if max_units is None and (self.sharded or stored_layout is None):
            self._session._memo_put(self.kind, self._memo_key, result)
        return result
