"""Content-addressed artifact storage.

:class:`ArtifactStore` generalises the campaign result cache into a store
any pipeline stage can use: artifacts are JSON payloads addressed by the
SHA-256 digest of their *inputs*, fanned out over 256 two-hex-digit
subdirectories, written atomically (write-then-rename) and guarded by a
per-store schema version so layout changes miss instead of surfacing stale
data.  ``scope`` carves one physical directory into independent logical
stores (one per artifact kind), which is how a :class:`~repro.session.Session`
keeps corpora, datasets and analyses in a single workspace.

The digest helpers are the other half of content addressing:

* :func:`digest_json` — canonical hash of any JSON-able input description,
* :func:`digest_tree` — combined hash of a directory of files (names and
  bytes), used to key *external* inputs such as a user-supplied corpus so
  an edited file invalidates everything derived from it.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from ..errors import ArtifactError

__all__ = [
    "ArtifactStore",
    "canonical_json",
    "digest_json",
    "digest_tree",
]


def canonical_json(value: Any) -> Any:
    """Make a value JSON-canonical (tuples → lists, stable key order).

    Values that are not JSON-native are stringified, so frozen dataclass
    trees flattened with :func:`dataclasses.asdict` hash deterministically.
    """
    if isinstance(value, Mapping):
        return {str(k): canonical_json(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonical_json(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def digest_json(value: Any) -> str:
    """Full SHA-256 hex digest of the canonical JSON encoding of ``value``."""
    payload = json.dumps(canonical_json(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def digest_tree(directory: str | os.PathLike, pattern: str = "*.txt") -> str:
    """Combined SHA-256 digest of every ``pattern`` file under ``directory``.

    File *names* and file *bytes* both enter the hash (in sorted-name
    order), so renaming, editing, adding or removing a file all change the
    digest.  Hashing is roughly an order of magnitude cheaper than parsing
    the same bytes, which is what makes content-keyed caching of parse
    results worthwhile.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArtifactError(f"not a directory: {directory}")
    tree = hashlib.sha256()
    for path in sorted(directory.glob(pattern)):
        tree.update(path.name.encode("utf-8"))
        tree.update(b"\x00")
        tree.update(path.read_bytes())
        tree.update(b"\x00")
    return tree.hexdigest()


class ArtifactStore:
    """Directory of JSON artifacts keyed by content hash.

    Subclasses may override :attr:`error` (the exception type raised on
    malformed keys and unreadable entries), :attr:`schema` (entries written
    under a different schema version read as misses) and
    :attr:`payload_field` (the JSON field holding the artifact value —
    the campaign cache predates the generalisation and stores its value
    under ``"row"``).
    """

    #: Exception type for malformed keys / unreadable entries.
    error: type[Exception] = ArtifactError
    #: Entries written under a different schema version read as misses.
    schema: int = 1
    #: JSON field the artifact value is stored under.
    payload_field: str = "value"

    def __init__(self, directory: str | os.PathLike, schema: int | None = None):
        # Created lazily on first ``put``: read-only operations (status on a
        # mistyped path, say) must not leave empty directories behind.
        self.directory = Path(directory)
        if schema is not None:
            self.schema = schema

    def scope(self, kind: str, schema: int | None = None) -> "ArtifactStore":
        """An independent store for one artifact kind under this directory.

        ``schema`` overrides the child store's schema version (each kind
        can evolve its payload layout independently); the parent's version
        is inherited by default.
        """
        if not kind or "/" in kind or kind.startswith("."):
            raise self.error(f"malformed artifact kind {kind!r}")
        return ArtifactStore(
            self.directory / kind, schema=self.schema if schema is None else schema
        )

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise self.error(f"malformed cache key {key!r}")
        return self.directory / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """All stored keys (unordered)."""
        for path in self.directory.glob("??/*.json"):
            yield path.stem

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Any | None:
        """The stored value for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise self.error(f"unreadable cache entry {path}: {exc}") from exc
        if payload.get("schema") != self.schema:
            return None
        return payload[self.payload_field]

    def put(
        self,
        key: str,
        value: Any,
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> Path:
        """Store ``value`` under ``key`` atomically; returns the entry path.

        ``arrays`` additionally writes a binary ``.npz`` sidecar next to the
        JSON entry (see :meth:`get_arrays`): the JSON stays the source of
        truth for metadata while bulk columnar payloads round-trip as NumPy
        arrays instead of JSON rows.  Passing ``arrays=None`` removes any
        stale sidecar a previous writer left for the key.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        sidecar = self.sidecar_path(key)
        if arrays is not None:
            # Sidecar first: a reader never sees a JSON entry whose arrays
            # are still being written (both renames are atomic).
            # The tmp name carries the writer's pid: two processes racing to
            # put the same key must not share a staging file, or the loser's
            # rename finds its tmp already consumed by the winner.
            tmp = sidecar.with_name(f"{sidecar.name}.{os.getpid()}.tmp")
            with open(tmp, "wb") as handle:
                np.savez(handle, **dict(arrays))
            os.replace(tmp, sidecar)
        else:
            sidecar.unlink(missing_ok=True)
        # Value key order is preserved (not canonicalised): for row-shaped
        # artifacts it is the column order of the assembled frame, and
        # cached rows must line up with freshly computed ones.
        payload = json.dumps(
            {"schema": self.schema, "key": key, self.payload_field: value}
        )
        # Write-then-rename keeps a killed process from leaving a torn
        # entry that would poison the next warm run.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return path

    def sidecar_path(self, key: str) -> Path:
        """Where the binary columnar sidecar for ``key`` lives (if any)."""
        return self._path(key).with_suffix(".npz")

    def get_arrays(self, key: str) -> dict[str, np.ndarray] | None:
        """The ``.npz`` sidecar arrays for ``key``, or ``None`` when absent.

        A missing sidecar is a cache miss (the caller recomputes); a present
        but unreadable one is corruption and raises, mirroring :meth:`get`.
        """
        path = self.sidecar_path(key)
        try:
            with np.load(path, allow_pickle=False) as payload:
                return {name: payload[name] for name in payload.files}
        except FileNotFoundError:
            return None
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise self.error(f"unreadable cache sidecar {path}: {exc}") from exc

    def sidecar_digest(self, key: str) -> str | None:
        """SHA-256 hex digest of the sidecar's bytes, or ``None`` when absent.

        This is the content checksum the campaign shard manifest records at
        flush time and re-verifies on every reload/recovery path: a torn or
        bit-rotted ``.npz`` no longer matches and the shard re-executes
        instead of being adopted.
        """
        path = self.sidecar_path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise self.error(f"unreadable cache sidecar {path}: {exc}") from exc
        return hashlib.sha256(data).hexdigest()

    def clear(self) -> int:
        """Delete every entry (sidecars included); returns entries removed."""
        removed = 0
        for path in list(self.directory.glob("??/*.json")):
            path.unlink()
            removed += 1
        for path in list(self.directory.glob("??/*.npz")):
            path.unlink()
        return removed
