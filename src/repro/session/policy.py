"""Execution policies: how a session turns work into CPU time.

:class:`ExecutionPolicy` subsumes the two knobs the pipeline used to expose
separately — the :class:`~repro.parallel.ParallelConfig` worker pool and the
campaign runner's ``batch=`` flag selecting the vectorized simulation
kernel — behind one declarative object:

==========  =============================  ================================
mode        worker pool                    simulation kernel (``auto``)
==========  =============================  ================================
``batch``   serial (in-process)            vectorized :class:`BatchDirector`
``serial``  serial (in-process)            scalar :class:`RunDirector`
``thread``  thread pool                    vectorized per worker chunk
``process`` process pool                   vectorized per worker chunk
==========  =============================  ================================

``kernel`` overrides the last column (``"batch"`` / ``"scalar"``) when a
fidelity study needs the scalar path under a pool, or vice versa.  The
default policy — ``ExecutionPolicy()`` — reproduces the pipeline's historic
defaults: serial dispatch, vectorized campaign kernel.

A policy describes *how* results are computed, never *what* they are: batch
and scalar kernels are bit-for-bit identical (pinned by the batch-simulator
equivalence tests), so policies are deliberately excluded from artifact
content hashes — switching executors never invalidates a cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import SessionError
from ..faults.retry import RetryPolicy
from ..parallel import ParallelConfig

__all__ = ["ExecutionPolicy"]

_MODES = ("serial", "thread", "process", "batch")
_KERNELS = ("auto", "batch", "scalar")

_BACKENDS = {"serial": "serial", "batch": "serial", "thread": "thread", "process": "process"}

_PRIORITIES = ("high", "normal", "low")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a :class:`~repro.session.Session` executes its stages.

    Attributes
    ----------
    mode:
        ``"batch"`` (default), ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Pool size for ``thread``/``process`` modes; ``None`` uses
        ``os.cpu_count()``.  Ignored by the serial modes.
    chunk_size:
        Items handed to a worker per task (amortises IPC cost).
    kernel:
        ``"auto"`` (default; see the table above), ``"batch"`` or
        ``"scalar"`` — the simulation kernel campaigns run on.
    serial_threshold:
        Inputs up to this size run serially even under a pool mode
        (``None`` uses the :class:`ParallelConfig` default; ``0`` forces
        pool dispatch for any input size).
    shard_size:
        Units per shard for campaign execution.  ``None`` (default) runs
        campaigns unsharded (the whole expansion and every result resident);
        any value routes campaigns through the sharded streaming runner,
        which caps resident memory at O(shard_size) by flushing each
        shard's rows to the store before the next shard starts.
    max_resident_results:
        Upper bound on result rows resident at once.  Enables sharding by
        itself and clamps ``shard_size`` from above, so a policy can state
        a memory budget directly instead of a shard layout.
    profile:
        Enable span tracing for this session: stage and hot-path spans are
        emitted to ``events.jsonl`` in the session workspace, feeding
        ``spectrends profile report``.  Equivalent to ``REPRO_PROFILE=1``.
        Like every policy knob it changes how work is *observed*, never
        what is computed — traced and untraced results are bit-identical.
    retry:
        A :class:`~repro.faults.RetryPolicy` enabling per-unit retry
        rounds with backoff and poison-unit quarantine for sharded
        campaigns.  ``None`` (default) keeps the historical behaviour:
        one attempt per unit per pass, failures recorded but never
        quarantined.
    faults:
        A :class:`~repro.faults.FaultPlan` (or inline JSON / file path /
        mapping, as ``REPRO_FAULTS`` accepts) installed for the duration
        of policy-driven campaign runs — chaos testing only.  Like
        ``profile``, retry/faults are execution knobs: they are excluded
        from artifact content hashes, and the non-quarantined results are
        bit-identical with or without them.
    priority:
        Fair-share class a service submission runs under: ``"high"``,
        ``"normal"`` (default) or ``"low"``.  Maps to the scheduler's
        deficit-round-robin weights — a scheduling knob only, so like
        every policy field it can never change the computed bytes.
    job_ttl:
        Seconds a *finished* service job's store is retained before the
        scheduler evicts it from the service root (``None`` = keep
        forever).  A resubmit after eviction simply recomputes.
    """

    mode: str = "batch"
    workers: int | None = None
    chunk_size: int = 32
    kernel: str = "auto"
    serial_threshold: int | None = None
    shard_size: int | None = None
    max_resident_results: int | None = None
    profile: bool = False
    retry: RetryPolicy | None = None
    faults: Any = None
    priority: str = "normal"
    job_ttl: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SessionError(
                f"unknown execution mode {self.mode!r}; valid modes: {_MODES}"
            )
        if self.kernel not in _KERNELS:
            raise SessionError(
                f"unknown kernel {self.kernel!r}; valid kernels: {_KERNELS}"
            )
        if self.workers is not None and self.workers < 0:
            raise SessionError("workers must be >= 0")
        if self.chunk_size < 1:
            raise SessionError("chunk_size must be >= 1")
        if self.serial_threshold is not None and self.serial_threshold < 0:
            raise SessionError("serial_threshold must be >= 0")
        if self.shard_size is not None and self.shard_size < 1:
            raise SessionError("shard_size must be >= 1")
        if self.max_resident_results is not None and self.max_resident_results < 1:
            raise SessionError("max_resident_results must be >= 1")
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise SessionError("retry must be a repro.faults.RetryPolicy or None")
        if self.priority not in _PRIORITIES:
            raise SessionError(
                f"unknown priority {self.priority!r}; valid priorities: {_PRIORITIES}"
            )
        if self.job_ttl is not None and self.job_ttl <= 0:
            raise SessionError("job_ttl must be > 0 seconds")

    # ------------------------------------------------------------------ #
    def parallel_config(self) -> ParallelConfig:
        """The equivalent worker-pool configuration."""
        kwargs = {}
        if self.serial_threshold is not None:
            kwargs["serial_threshold"] = self.serial_threshold
        return ParallelConfig(
            max_workers=self.workers,
            backend=_BACKENDS[self.mode],
            chunk_size=self.chunk_size,
            **kwargs,
        )

    @property
    def use_batch_kernel(self) -> bool:
        """Whether campaigns simulate through the vectorized kernel."""
        if self.kernel != "auto":
            return self.kernel == "batch"
        return self.mode != "serial"

    @property
    def sharded(self) -> bool:
        """Whether campaigns run through the sharded streaming path."""
        return self.shard_size is not None or self.max_resident_results is not None

    @property
    def campaign_workers(self) -> int | None:
        """Worker-pool fan-out for sharded campaigns, or ``None`` for serial.

        A policy asks for the multi-worker shard scheduler by combining
        ``mode="process"`` (worker processes), an explicit ``workers`` count
        above one, and a sharded layout — shards are the unit of
        distribution, so unsharded campaigns ignore this entirely.  Each
        spawned worker executes its claimed shards serially; the
        parallelism lives at the worker level (``campaign/sharding.py``).
        """
        if (
            self.mode == "process"
            and self.sharded
            and self.workers is not None
            and self.workers > 1
        ):
            return self.workers
        return None

    @property
    def effective_shard_size(self) -> int | None:
        """Units per shard after applying the residency budget, if sharded.

        ``max_resident_results`` clamps ``shard_size`` from above and
        enables sharding on its own; ``None`` means unsharded execution.
        """
        if not self.sharded:
            return None
        if self.shard_size is None:
            return self.max_resident_results
        if self.max_resident_results is None:
            return self.shard_size
        return min(self.shard_size, self.max_resident_results)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_parallel(
        cls, config: ParallelConfig | None, batch: bool = True
    ) -> "ExecutionPolicy":
        """Adapt a legacy ``(ParallelConfig, batch=)`` pair to a policy."""
        kernel = "batch" if batch else "scalar"
        if config is None or config.backend == "serial" or config.effective_workers <= 1:
            return cls(mode="batch" if batch else "serial", kernel=kernel)
        return cls(
            mode=config.backend,
            workers=config.max_workers,
            chunk_size=config.chunk_size,
            kernel=kernel,
            serial_threshold=config.serial_threshold,
        )

    @classmethod
    def from_jobs(
        cls,
        jobs: int | None,
        batch: bool = True,
        shard_size: int | None = None,
        retry: RetryPolicy | None = None,
        priority: str = "normal",
        job_ttl: float | None = None,
    ) -> "ExecutionPolicy":
        """The policy behind CLI ``--jobs N`` / ``--shard-size N`` flags."""
        kernel = "batch" if batch else "scalar"
        if jobs and jobs > 1:
            return cls(
                mode="process",
                workers=jobs,
                kernel=kernel,
                shard_size=shard_size,
                retry=retry,
                priority=priority,
                job_ttl=job_ttl,
            )
        return cls(
            mode="batch" if batch else "serial",
            kernel=kernel,
            shard_size=shard_size,
            retry=retry,
            priority=priority,
            job_ttl=job_ttl,
        )
