"""Session layer: one composable, cached entry point for every pipeline stage.

* :class:`Session` — owns a workspace, an :class:`ArtifactStore` and an
  :class:`ExecutionPolicy`; exposes the pipeline as lazy, content-hash-cached
  stage methods (``corpus``/``dataset``/``analysis``/``campaign``) plus the
  extension registries for new platforms, workloads and analyses.
* :class:`ExecutionPolicy` — serial / thread / process / batch-kernel
  execution, subsuming :class:`repro.parallel.ParallelConfig` + the
  campaign ``batch=`` flag.
* :class:`ArtifactStore` and the digest helpers — generalised
  content-addressed storage (the campaign result cache is one instance).
* The typed handles (:class:`CorpusHandle`, :class:`DatasetHandle`,
  :class:`AnalysisHandle`, :class:`CampaignHandle`) returned by the stages.

Attributes resolve lazily (PEP 562) so that low-level consumers — the
campaign cache imports :mod:`repro.session.artifacts` — never drag the full
session machinery (and its pipeline imports) into their import graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "Session",
    "ExecutionPolicy",
    "ArtifactStore",
    "digest_json",
    "digest_tree",
    "AnalysisResult",
    "ArtifactHandle",
    "CorpusHandle",
    "DatasetHandle",
    "DatasetSummary",
    "AnalysisHandle",
    "CampaignHandle",
]

if TYPE_CHECKING:
    from .artifacts import ArtifactStore, digest_json, digest_tree
    from .handles import (
        AnalysisHandle,
        AnalysisResult,
        ArtifactHandle,
        CampaignHandle,
        CorpusHandle,
        DatasetHandle,
        DatasetSummary,
    )
    from .policy import ExecutionPolicy
    from .session import Session

_EXPORTS = {
    "Session": "session",
    "ExecutionPolicy": "policy",
    "ArtifactStore": "artifacts",
    "digest_json": "artifacts",
    "digest_tree": "artifacts",
    "AnalysisResult": "handles",
    "ArtifactHandle": "handles",
    "CorpusHandle": "handles",
    "DatasetHandle": "handles",
    "DatasetSummary": "handles",
    "AnalysisHandle": "handles",
    "CampaignHandle": "handles",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
