"""The session: one composable, cached entry point for every pipeline stage.

A :class:`Session` owns

* a **workspace** directory holding the content-addressed
  :class:`~repro.session.artifacts.ArtifactStore` plus the materialised
  corpora and campaign stores (``workspace=None`` uses an ephemeral
  temporary directory, removed when the session closes),
* an :class:`~repro.session.policy.ExecutionPolicy` describing how stages
  turn into CPU time (serial / thread / process pools, vectorized or scalar
  simulation kernel),
* the **catalog** of CPU platforms and the extension registries
  (:meth:`register_platform`, :meth:`register_workload`,
  :meth:`register_analysis`) through which new scenario families plug in
  without touching core modules.

Stages are lazy, composable methods returning typed handles::

    with Session(workspace="ws/") as session:
        corpus = session.corpus(runs=960, seed=2024)     # nothing runs yet
        runs = session.dataset().result()                # generate + parse
        report = session.analysis(figures=True).result() # full paper pipeline
        sweep = session.campaign("spec.json").result()   # cached campaign

Every handle is keyed by the content hash of its inputs and upstream
artifact keys; invoking a stage twice does the work once, and re-opening the
same workspace in a new process reloads warm artifacts instead of
recomputing them — a warm re-``analysis`` over an unchanged corpus performs
zero parsing and zero simulation.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Mapping

from ..errors import SessionError
from ..frame import Frame
from .artifacts import ArtifactStore, digest_json, digest_tree
from .handles import (
    AnalysisHandle,
    AnalysisResult,
    CampaignHandle,
    CorpusHandle,
    DatasetHandle,
)
from .policy import ExecutionPolicy

__all__ = ["Session", "analyze_frame"]


def analyze_frame(
    runs: Frame,
    table1: bool = True,
    figures: bool = False,
) -> AnalysisResult:
    """Run the paper's analysis pipeline over an in-memory run frame.

    This is the workspace-free core of :meth:`Session.analysis`; the
    deprecated :func:`repro.api.analyze` shim delegates here.
    """
    from ..core.dataset import derive_columns
    from ..core.figures import all_figures
    from ..core.filters import apply_paper_filters
    from ..core.report import build_report

    if "overall_efficiency" not in runs:
        runs = derive_columns(runs)
    comparison = build_report(runs, include_table1=table1)
    filtered, _ = apply_paper_filters(runs)
    rendered = tuple(all_figures(runs, filtered)) if figures else ()
    return AnalysisResult(
        unfiltered=runs, filtered=filtered, comparison=comparison, figures=rendered
    )

#: Bump when a stage's persisted artifact layout or its derivation changes;
#: old workspace entries then miss instead of surfacing stale results.
#: (The dataset stage's ``.npz`` columnar sidecar did *not* bump the schema:
#: new payloads carry a ``columns`` field, legacy ``rows`` payloads still
#: load, and both describe the same bit-identical frame — so existing
#: workspaces stay warm across the format change.)
STAGE_SCHEMAS: Mapping[str, int] = {
    "corpus": 1,
    "dataset": 1,
    "analysis": 1,
    "campaign": 1,
}

#: Process-wide digest of the default catalog.  ``default_catalog()`` is
#: memoized per process, so its content digest is a constant — computing it
#: per Session (~2 ms of dataclass flattening) used to dominate warm
#: dataset reloads from fresh sessions, e.g. every CLI invocation.
_DEFAULT_CATALOG_DIGEST: str | None = None


class Session:
    """Workspace-backed facade over the whole pipeline.

    Parameters
    ----------
    workspace:
        Directory holding the artifact store, materialised corpora and
        campaign stores.  ``None`` creates an ephemeral temporary workspace
        removed on :meth:`close` (or garbage collection).
    policy:
        Default :class:`ExecutionPolicy` for every stage.
    catalog:
        CPU platform catalog; defaults to the paper's market catalog.
        Extended at runtime via :meth:`register_platform`.
    """

    def __init__(
        self,
        workspace: str | os.PathLike | None = None,
        policy: ExecutionPolicy | None = None,
        catalog=None,
    ):
        self._ephemeral = workspace is None
        if self._ephemeral:
            workspace = tempfile.mkdtemp(prefix="spectrends-session-")
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, workspace, ignore_errors=True
            )
        else:
            self._cleanup = None
        self.workspace = Path(workspace)
        self.policy = policy or ExecutionPolicy()
        self.store = ArtifactStore(self.workspace / "store")

        # Tracing: opt-in via policy.profile or REPRO_TRACE/REPRO_PROFILE.
        # When on, stage and hot-path spans land in the workspace's
        # events.jsonl; when off, the no-op tracer path costs ~nothing.
        from ..obs.trace import JsonlSink, get_tracer

        self._trace_sink: JsonlSink | None = None
        self._trace_enabled_here = False
        tracer = get_tracer()
        if self.policy.profile and not tracer.enabled:
            tracer.enabled = True
            self._trace_enabled_here = True
        if tracer.enabled:
            self._trace_sink = tracer.add_sink(JsonlSink(self.events_path))

        from ..market.catalog import default_catalog

        self._catalog = default_catalog() if catalog is None else catalog
        # ``None`` while the default catalog is in use: worker payloads then
        # ship no catalog and each worker rebuilds the default locally.
        self._custom_catalog = catalog
        self._catalog_digest: str | None = None
        self._memo: dict[tuple[str, str], Any] = {}
        self._last: dict[str, Any] = {}

        from ..simulator.director import WORKLOAD_PRESETS

        self._workloads = dict(WORKLOAD_PRESETS)
        self._analyses: dict[str, tuple[Callable[[Frame], Any], str]] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def events_path(self) -> Path:
        """The workspace's span/event log (written only when tracing is on)."""
        return self.workspace / "events.jsonl"

    @property
    def tracer(self):
        """The process tracer this session's stages report spans to."""
        from ..obs.trace import get_tracer

        return get_tracer()

    def close(self) -> None:
        """Drop the memo; remove the workspace if it is ephemeral."""
        self._memo.clear()
        self._last.clear()
        if self._trace_sink is not None:
            self.tracer.remove_sink(self._trace_sink)
            self._trace_sink = None
        if self._trace_enabled_here:
            self.tracer.enabled = False
            self._trace_enabled_here = False
        if self._cleanup is not None:
            self._cleanup()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        flavour = "ephemeral" if self._ephemeral else "persistent"
        return (
            f"<Session workspace={str(self.workspace)!r} ({flavour}), "
            f"policy={self.policy.mode!r}, {len(self._memo)} memoized>"
        )

    # ------------------------------------------------------------------ #
    # Internal plumbing used by the handles
    # ------------------------------------------------------------------ #
    def _store_for(self, kind: str) -> ArtifactStore:
        return self.store.scope(kind, schema=STAGE_SCHEMAS.get(kind, 1))

    def _corpus_root(self) -> Path:
        return self.workspace / "corpora"

    def _campaign_root(self) -> Path:
        return self.workspace / "campaigns"

    def _memo_has(self, kind: str, key: str) -> bool:
        return (kind, key) in self._memo

    def _memo_get(self, kind: str, key: str) -> Any:
        return self._memo.get((kind, key))

    def _memo_put(self, kind: str, key: str, value: Any) -> None:
        self._memo[(kind, key)] = value

    def clear_memo(self) -> int:
        """Forget in-memory results (on-disk artifacts stay warm)."""
        count = len(self._memo)
        self._memo.clear()
        return count

    # ------------------------------------------------------------------ #
    # Catalog + extension registries
    # ------------------------------------------------------------------ #
    @property
    def catalog(self):
        return self._catalog

    def _worker_catalog(self):
        """What execution payloads ship: ``None`` for the default catalog."""
        return self._custom_catalog

    def catalog_digest(self) -> str:
        """Content digest of the catalog (folded into corpus/campaign keys)."""
        if self._catalog_digest is None:
            global _DEFAULT_CATALOG_DIGEST
            if self._custom_catalog is None and _DEFAULT_CATALOG_DIGEST is not None:
                self._catalog_digest = _DEFAULT_CATALOG_DIGEST
                return self._catalog_digest
            from ..campaign.cache import entry_digest

            self._catalog_digest = digest_json(
                [entry_digest(entry) for entry in self._catalog.entries]
            )
            if self._custom_catalog is None:
                _DEFAULT_CATALOG_DIGEST = self._catalog_digest
        return self._catalog_digest

    def register_platform(self, entry, replace: bool = False) -> None:
        """Add a :class:`CatalogEntry` to this session's catalog.

        Corpus and campaign keys fold in the catalog content, so registering
        a platform naturally invalidates only artifacts that depend on it.
        """
        from ..market.catalog import Catalog

        entries = list(self._catalog.entries)
        existing = [e for e in entries if e.cpu.model == entry.cpu.model]
        if existing and not replace:
            raise SessionError(
                f"platform {entry.cpu.model!r} is already in the catalog "
                "(pass replace=True to override)"
            )
        entries = [e for e in entries if e.cpu.model != entry.cpu.model]
        entries.append(entry)
        self._catalog = Catalog(entries)
        self._custom_catalog = self._catalog
        self._catalog_digest = None

    def register_workload(self, name: str, options, replace: bool = False) -> None:
        """Register a named :class:`SimulationOptions` bundle.

        The name becomes valid as the ``workload=`` argument of
        :meth:`corpus`, :meth:`dataset` and :meth:`campaign`.
        """
        from ..simulator.director import SimulationOptions

        if not isinstance(options, SimulationOptions):
            raise SessionError("register_workload expects a SimulationOptions")
        if name in self._workloads and not replace:
            raise SessionError(
                f"workload {name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._workloads[name] = options

    def register_analysis(
        self,
        name: str,
        fn: Callable[[Frame], Any],
        version: str = "1",
        replace: bool = False,
    ) -> None:
        """Register a custom analysis: a callable over the derived run frame.

        Invoke it with ``session.analysis(name=<name>)``.  ``version`` is
        folded into the content key (callables cannot be hashed), so bumping
        it invalidates memoized results of an updated analysis.
        """
        if name == "paper":
            raise SessionError("the name 'paper' is reserved for the built-in pipeline")
        if name in self._analyses and not replace:
            raise SessionError(
                f"analysis {name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._analyses[name] = (fn, version)

    def _registered_analysis(self, name: str) -> Callable[[Frame], Any]:
        try:
            return self._analyses[name][0]
        except KeyError:
            raise SessionError(
                f"unknown analysis {name!r}; registered: "
                f"{sorted(self._analyses) or 'none'}"
            ) from None

    @property
    def workloads(self) -> tuple[str, ...]:
        """Names of the registered workload presets."""
        return tuple(sorted(self._workloads))

    @property
    def analyses(self) -> tuple[str, ...]:
        """Names of the registered custom analyses (``paper`` is implicit)."""
        return tuple(sorted(self._analyses))

    def _resolve_options(self, workload, options):
        from ..simulator.director import SimulationOptions

        if workload is not None and options is not None:
            raise SessionError("pass either workload= or options=, not both")
        if workload is not None:
            try:
                return self._workloads[workload]
            except KeyError:
                raise SessionError(
                    f"unknown workload {workload!r}; registered: "
                    f"{sorted(self._workloads)}"
                ) from None
        return options or SimulationOptions()

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #
    def corpus(
        self,
        runs: int = 960,
        seed: int = 2024,
        workload: str | None = None,
        options=None,
        directory: str | os.PathLike | None = None,
    ) -> CorpusHandle:
        """A synthetic corpus of ``runs`` defect-free result files.

        With ``directory`` the files are written to that exact path (always
        regenerated — external directories are not workspace artifacts);
        without it the corpus is materialised once under the workspace and
        reused by key.
        """
        resolved = self._resolve_options(workload, options)
        key = digest_json(
            {
                "stage": "corpus",
                "schema": STAGE_SCHEMAS["corpus"],
                "runs": int(runs),
                "seed": int(seed),
                "options": asdict(resolved),
                "catalog": self.catalog_digest(),
            }
        )
        handle = CorpusHandle(
            self, key, runs=int(runs), seed=int(seed), options=resolved,
            directory=directory,
        )
        self._last["corpus"] = handle
        return handle

    def dataset(
        self,
        corpus: "CorpusHandle | str | os.PathLike | None" = None,
        runs: int | None = None,
        seed: int | None = None,
        workload: str | None = None,
        options=None,
        text_path: bool = False,
        mmap: bool = False,
    ) -> DatasetHandle:
        """The derived analysis frame of a corpus.

        ``corpus`` may be a :class:`CorpusHandle`, a path to an external
        corpus directory (keyed by the content digest of its files), or
        ``None``.  With ``corpus=None`` and no generation arguments, the
        session's most recent :meth:`corpus` handle is reused; passing any
        of ``runs``/``seed``/``workload``/``options`` always resolves a
        corpus from those arguments (defaults 960 / 2024).

        Synthetic workspace corpora derive their records directly from the
        simulation results (the parse bypass — bit-identical to the text
        round trip, see :class:`DatasetHandle`); ``text_path=True`` forces
        the render→parse route instead.  Like the execution policy, the
        route is excluded from the content key: both produce the same
        artifact.

        ``mmap=True`` loads the persisted columnar sidecar as an
        out-of-core frame: numeric columns become memmap views
        (:class:`repro.frame.MmapColumn`) so a dataset larger than RAM
        stays queryable, with ``memory_usage(deep=True)`` reporting the
        resident-vs-mapped split honestly.  Also a load knob, also
        excluded from the content key — the artifact is identical either
        way, and workspaces that never persist (ephemeral sessions,
        external ``directory=`` corpora) fall back to the eager frame.
        """
        if corpus is None:
            explicit_args = (
                runs is not None or seed is not None
                or workload is not None or options is not None
            )
            if not explicit_args and "corpus" in self._last:
                corpus = self._last["corpus"]
            else:
                corpus = self.corpus(
                    runs=960 if runs is None else runs,
                    seed=2024 if seed is None else seed,
                    workload=workload,
                    options=options,
                )
        if isinstance(corpus, CorpusHandle):
            source: "CorpusHandle | Path" = corpus
            upstream = {"corpus": corpus.key}
            if corpus.is_external:
                # An explicit directory is the caller's to manage: its
                # contents are not guaranteed to match the generation key,
                # so derived datasets must not be trusted across processes.
                upstream["directory"] = str(corpus.directory)
        else:
            source = Path(corpus)
            if self._ephemeral:
                # The workspace dies with the session, so the key only has
                # to be stable in-process: skip the tree hash (which reads
                # every corpus file) and key by location instead.
                upstream = {"path": str(source.resolve())}
            else:
                upstream = {"tree": digest_tree(source)}
        key = digest_json(
            {
                "stage": "dataset",
                "schema": STAGE_SCHEMAS["dataset"],
                "source": upstream,
            }
        )
        handle = DatasetHandle(self, key, source, text_path=text_path, mmap=mmap)
        self._last["dataset"] = handle
        return handle

    def analysis(
        self,
        dataset: "DatasetHandle | None" = None,
        name: str = "paper",
        table1: bool = True,
        figures: bool = False,
    ) -> AnalysisHandle:
        """An analysis over a dataset (the paper pipeline, or a registered one).

        ``dataset=None`` uses the session's most recent :meth:`dataset`
        handle (creating the default one if no stage ran yet).
        """
        if dataset is None:
            dataset = self._last.get("dataset") or self.dataset()
        if name == "paper":
            version = "1"
        else:
            self._registered_analysis(name)  # fail fast on unknown names
            version = self._analyses[name][1]
        key = digest_json(
            {
                "stage": "analysis",
                "schema": STAGE_SCHEMAS["analysis"],
                "dataset": dataset.key,
                "name": name,
                "version": version,
                "table1": bool(table1),
                "figures": bool(figures),
            }
        )
        self._last["analysis"] = handle = AnalysisHandle(
            self, key, dataset, name=name, table1=table1, figures=figures
        )
        return handle

    def campaign(
        self,
        spec,
        store: str | os.PathLike | None = None,
        max_units: int | None = None,
        workload: str | None = None,
        shard_size: int | None = None,
        progress: Callable | None = None,
        workers: int | None = None,
    ) -> CampaignHandle:
        """A declarative scenario sweep executed into a resumable store.

        ``spec`` may be a :class:`CampaignSpec`, a mapping in the same shape
        or a path to a JSON spec file.  ``store`` overrides the workspace
        placement (``<workspace>/campaigns/<name>-<key prefix>``).  A
        ``workload`` preset supplies base values for option axes the spec
        leaves unset.

        ``shard_size`` routes execution through the sharded streaming
        runner (resident memory O(shard_size), result a
        :class:`~repro.campaign.sharding.StreamingCampaignResult`); the
        session policy's ``shard_size``/``max_resident_results`` supply the
        default.  ``workers`` fans a sharded run out across that many
        lease-coordinated worker processes (default: the policy's
        ``campaign_workers``); results are bit-identical for any worker
        count, so like every execution knob it stays out of the keys.
        ``progress`` is invoked after every flushed shard (the CLI's
        streaming status line) and, being an observer, never enters any
        key.
        """
        from ..campaign import CampaignSpec

        if isinstance(spec, (str, os.PathLike)):
            spec = CampaignSpec.from_json_file(spec)
        elif isinstance(spec, Mapping):
            spec = CampaignSpec.from_dict(spec)
        if workload is not None:
            spec = self._apply_workload(spec, workload)
        # The key names the campaign *artifact* (spec + catalog content).
        # max_units is an execution bound, not content: it must not change
        # the key, or a bounded smoke run would land in a different default
        # store than the full run that later completes it.  The shard layout
        # is likewise excluded here (rows and store placement are layout
        # independent) — but it *is* folded into the handle's memo key,
        # because sharded and unsharded runs return different result types.
        key = digest_json(
            {
                "stage": "campaign",
                "schema": STAGE_SCHEMAS["campaign"],
                "spec": spec.to_dict(),
                "catalog": self.catalog_digest(),
            }
        )
        if store is None:
            store = self._campaign_root() / f"{spec.name}-{key[:12]}"
        handle = CampaignHandle(
            self,
            key,
            spec,
            Path(store),
            max_units=max_units,
            shard_size=shard_size,
            progress=progress,
            workers=workers,
        )
        self._last["campaign"] = handle
        return handle

    def _apply_workload(self, spec, workload: str):
        """Fold a workload preset into a spec as base option-axis defaults."""
        from ..campaign import CampaignSpec
        from ..campaign.spec import OPTION_AXES
        from ..simulator.director import SimulationOptions

        preset = self._resolve_options(workload, None)
        defaults = SimulationOptions()
        base = dict(spec.base)
        for axis in OPTION_AXES:
            value = getattr(preset, axis)
            if axis in spec.sweep or axis in base:
                continue  # explicit spec values win
            if value != getattr(defaults, axis):
                base[axis] = value
        return CampaignSpec(
            name=spec.name, sweep=spec.sweep, base=base, expansion=spec.expansion
        )

    # ------------------------------------------------------------------ #
    # Direct computations (no upstream artifact to key by)
    # ------------------------------------------------------------------ #
    def analyze_frame(
        self,
        runs: Frame,
        table1: bool = True,
        figures: bool = False,
    ) -> AnalysisResult:
        """Run the paper's analysis pipeline over an in-memory run frame."""
        return analyze_frame(runs, table1=table1, figures=figures)

    def table1(self) -> tuple:
        """The Table I comparison rows (computed once per session)."""
        memo = self._memo_get("table1", "static")
        if memo is None:
            from ..core.tables import table1

            memo = tuple(table1())
            self._memo_put("table1", "static", memo)
        return memo
