"""Frame ⇄ array codec for binary dataset artifacts.

A :class:`~repro.frame.Frame` round-trips through an
:class:`~repro.session.artifacts.ArtifactStore` ``.npz`` sidecar; a
JSON-side ``meta`` list records column order and logical kinds, so
reconstruction performs no type inference whatsoever — the reloaded frame is
the persisted frame, bit for bit (floats travel as binary float64, never
through decimal text).

Layout
------
``.npz`` readers pay a fixed per-member cost (zip entry + header parse), so
numeric columns are packed by kind into a handful of 2-D arrays rather
than stored one member per column:

===========  =====================================================
member       content
===========  =====================================================
``masks``    validity masks, ``(n_columns, n_rows)`` bool, column order
``float``    float64 columns stacked in column order
``int``      int64 columns stacked in column order
``bool``     bool columns stacked in column order
``str<i>``   the i-th string column as a unicode array (missing → ``""``)
===========  =====================================================

The i-th column of kind *k* is row i of member *k*; ``meta`` (name + kind
per column, in column order) is all that is needed to unpack.  String
columns get one member each — NumPy unicode arrays are fixed-width, so a
shared matrix would pad every cell to the longest string in *any* string
column; per-column members cost one zip entry apiece but keep each column
at its own width.  (``.npz`` holds no Python objects, so ``allow_pickle``
stays off.)  Missing entries are restored to ``None`` from the mask.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..errors import ArtifactError
from ..frame import Column, Frame

__all__ = ["frame_to_arrays", "frame_from_arrays"]

_KIND_DTYPES = {"float": np.float64, "int": np.int64, "bool": np.bool_}


def frame_to_arrays(frame: Frame) -> tuple[list[dict[str, str]], dict[str, np.ndarray]]:
    """Split a frame into JSON-able ``meta`` and the packed arrays to persist."""
    meta: list[dict[str, str]] = []
    stacks: dict[str, list] = {"float": [], "int": [], "bool": []}
    masks: list[np.ndarray] = []
    arrays: dict[str, np.ndarray] = {}
    n_str = 0
    for name in frame.columns:
        column = frame[name]
        meta.append({"name": name, "kind": column.kind})
        if column.kind == "str":
            cells = ["" if value is None else value for value in column.values]
            # NumPy fixed-width unicode strips *trailing* NUL codepoints
            # (interior ones survive).  If any value ends with one, suffix
            # every cell with a uniform sentinel — recorded in the meta so
            # ordinary columns pay nothing on reload — and strip it back off
            # when unpacking.
            if any(cell.endswith("\x00") for cell in cells):
                meta[-1]["padded"] = "1"
                cells = [cell + "\x01" for cell in cells]
            arrays[f"str{n_str}"] = np.array(cells, dtype=str)
            n_str += 1
        else:
            stacks[column.kind].append(
                column.values.astype(_KIND_DTYPES[column.kind], copy=False)
            )
        masks.append(column.mask)
    if masks:
        arrays["masks"] = np.vstack(masks)
    for kind in ("float", "int", "bool"):
        if stacks[kind]:
            arrays[kind] = np.vstack(stacks[kind])
    return meta, arrays


def frame_from_arrays(
    meta: list[Mapping[str, Any]], arrays: Mapping[str, np.ndarray]
) -> Frame:
    """Rebuild the persisted frame from ``meta`` + sidecar arrays."""
    columns: dict[str, Column] = {}
    if not meta:
        return Frame(columns)
    try:
        masks = arrays["masks"]
    except KeyError:
        raise ArtifactError("columnar sidecar is missing the 'masks' member") from None
    positions = {"float": 0, "int": 0, "bool": 0, "str": 0}
    for index, spec in enumerate(meta):
        kind = str(spec["kind"])
        if kind not in positions:
            raise ArtifactError(f"unknown column kind {kind!r} in dataset artifact")
        row = positions[kind]
        positions[kind] += 1
        try:
            values = arrays[f"str{row}"] if kind == "str" else arrays[kind][row]
        except (KeyError, IndexError):
            raise ArtifactError(
                f"columnar sidecar is missing data for column {spec.get('name')!r}"
            ) from None
        mask = masks[index].astype(bool, copy=False)
        if kind == "str":
            restored = values.astype(object)
            if spec.get("padded"):
                restored = np.array(
                    [cell[:-1] for cell in restored], dtype=object
                )
            restored[mask] = None
            values = restored
        else:
            values = values.astype(_KIND_DTYPES[kind], copy=False)
        columns[str(spec["name"])] = Column(values, mask, kind)
    return Frame(columns)
