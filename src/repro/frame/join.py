"""Hash joins between frames.

Two interchangeable engines:

``"vector"`` (default)
    Key columns of both frames are factorized jointly into integer codes
    (:mod:`repro.frame.codes`); the right side is sorted once by code and
    each left row finds its matches with a ``searchsorted`` range — the
    whole join is NumPy index arithmetic, with output columns gathered by
    fancy indexing instead of per-row Python appends.  Key column pairs
    whose kinds differ (``int`` vs ``str``, say) fall back to the reference
    engine, whose Python equality is the defined semantics for them.

``"python"``
    The scalar reference: the right frame indexed by key tuple, the left
    frame scanned once.  Selectable via ``engine="python"`` or
    ``REPRO_FRAME_ENGINE=python``; the Hypothesis equivalence suite holds
    both engines to identical output.

Missing keys (masked entries, or NaN in float key columns) follow SQL
semantics in both engines: they never match, not even each other.  Left
rows with a missing key behave like unmatched rows (kept and null-filled by
``left``/``outer``, dropped by ``inner``); right rows with a missing key are
only emitted by ``outer``, as right-only rows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import JoinError
from .codes import join_codes, kernel_engine, key_missing_mask
from .column import Column
from .frame import Frame

__all__ = ["join"]

_HOW = ("inner", "left", "outer")

#: Backing-array fill for injected missing entries, per column kind.  Matches
#: what ``Column.from_values`` stores for ``None`` so that engines (and
#: ``to_numpy``) agree on the payload under the mask.
_NULL_FILL = {"float": np.nan, "int": 0, "bool": False, "str": None}


def join(
    left: Frame,
    right: Frame,
    on: Sequence[str] | str,
    how: str = "inner",
    engine: str | None = None,
) -> Frame:
    """Join two frames on equal key columns.

    Parameters
    ----------
    left, right:
        Input frames.  Non-key columns occurring in both frames get a
        ``_right`` suffix on the right-hand copy.
    on:
        Key column name(s); must exist in both frames.
    how:
        ``"inner"`` (default), ``"left"`` or ``"outer"``.
    engine:
        ``"vector"`` (default) or ``"python"``; ``None`` uses the process
        default (see :func:`repro.frame.codes.default_engine`).

    Notes
    -----
    Row multiplicity follows SQL semantics (cartesian product within a key);
    missing keys never match (see the module docstring).  Output row order:
    left rows in order (each expanded to its matches, in right-row order),
    then — for ``outer`` — unmatched right rows in right order.
    """
    if isinstance(on, str):
        on = [on]
    on = list(on)
    if not on:
        raise JoinError("at least one join key is required")
    if how not in _HOW:
        raise JoinError(f"unknown join type {how!r}; expected one of {_HOW}")
    for key in on:
        if key not in left:
            raise JoinError(f"join key {key!r} missing from left frame")
        if key not in right:
            raise JoinError(f"join key {key!r} missing from right frame")

    if kernel_engine(engine) == "python":
        return _join_python(left, right, on, how)
    codes = join_codes([left[key] for key in on], [right[key] for key in on])
    if codes is None:
        # Mixed-kind key pair: Python equality semantics, reference engine.
        return _join_python(left, right, on, how)
    return _join_vector(left, right, on, how, *codes)


def _output_layout(left: Frame, right: Frame, on: list[str]):
    right_value_columns = [name for name in right.columns if name not in on]
    rename = {
        name: (f"{name}_right" if name in left.columns else name)
        for name in right_value_columns
    }
    return right_value_columns, rename


# --------------------------------------------------------------------------- #
# Reference engine
# --------------------------------------------------------------------------- #
def _join_python(left: Frame, right: Frame, on: list[str], how: str) -> Frame:
    right_value_columns, rename = _output_layout(left, right, on)

    # Index the right frame by key tuple (rows with missing keys never match).
    right_key_cols = [right[key] for key in on]
    right_row_missing = _any_key_missing(right_key_cols)
    right_index: dict[tuple, list[int]] = {}
    for i in range(len(right)):
        if right_row_missing[i]:
            continue
        key = tuple(column[i] for column in right_key_cols)
        right_index.setdefault(key, []).append(i)

    out_columns = left.columns + [rename[name] for name in right_value_columns]
    data: dict[str, list] = {name: [] for name in out_columns}

    left_key_cols = [left[key] for key in on]
    left_row_missing = _any_key_missing(left_key_cols)
    matched_right: set[int] = set()
    for i in range(len(left)):
        if left_row_missing[i]:
            matches = []
        else:
            key = tuple(column[i] for column in left_key_cols)
            matches = right_index.get(key, [])
        if matches:
            for j in matches:
                matched_right.add(j)
                for name in left.columns:
                    data[name].append(left[name][i])
                for name in right_value_columns:
                    data[rename[name]].append(right[name][j])
        elif how in ("left", "outer"):
            for name in left.columns:
                data[name].append(left[name][i])
            for name in right_value_columns:
                data[rename[name]].append(None)

    if how == "outer":
        for j in range(len(right)):
            if j in matched_right:
                continue
            for name in left.columns:
                if name in on:
                    data[name].append(right[name][j])
                else:
                    data[name].append(None)
            for name in right_value_columns:
                data[rename[name]].append(right[name][j])

    # Output kinds follow the input columns (inference would degrade empty
    # or all-null outputs to "float", diverging from the vector engine);
    # cross-kind key pairs keep inference — Python equality defined their
    # matches, and Python inference defines their merged output kind.
    kinds: dict[str, str | None] = {name: left[name].kind for name in left.columns}
    for name in right_value_columns:
        kinds[rename[name]] = right[name].kind
    for key in on:
        if left[key].kind != right[key].kind:
            kinds[key] = None
    return Frame(
        {
            name: Column.from_values(data[name], kind=kinds[name])
            for name in out_columns
        }
    )


def _any_key_missing(key_columns) -> np.ndarray:
    missing = key_missing_mask(key_columns[0])
    for column in key_columns[1:]:
        missing = missing | key_missing_mask(column)
    return missing


# --------------------------------------------------------------------------- #
# Vector engine
# --------------------------------------------------------------------------- #
def _gather(column: Column, indices: np.ndarray, null: np.ndarray) -> Column:
    """Fancy-index a column, masking output rows where ``null`` is True.

    Unmasked NaN in float columns becomes missing in the output, matching
    the reference engine (which rebuilds columns through
    ``Column.from_values``, where NaN has always meant missing) — join
    output semantics, not a vector-engine invention.
    """
    safe = np.where(null, 0, indices)
    if len(column) == 0:
        # Nothing to gather from; all output rows are necessarily null.
        return _null_column(column.kind, len(indices))
    values = column.values[safe]
    mask = column.mask[safe] | null
    if column.kind == "float":
        with np.errstate(invalid="ignore"):
            mask = mask | np.isnan(values)
    return _canonical(values, mask, column.kind)


_NULL_DTYPES = {"float": np.float64, "int": np.int64, "bool": np.bool_, "str": object}


def _null_column(kind: str, length: int) -> Column:
    values = np.full(length, _NULL_FILL[kind], dtype=_NULL_DTYPES[kind])
    return Column(values, np.ones(length, dtype=bool), kind)


def _canonical(values: np.ndarray, mask: np.ndarray, kind: str) -> Column:
    """Build a column whose masked payload matches ``Column.from_values``."""
    if mask.any():
        values = values.copy()
        values[mask] = _NULL_FILL[kind]
    return Column(values, mask, kind)


def _concat_columns(head: Column, tail: Column) -> Column:
    values = np.concatenate([head.values, tail.values])
    mask = np.concatenate([head.mask, tail.mask])
    return Column(values, mask, head.kind)


def _join_vector(
    left: Frame,
    right: Frame,
    on: list[str],
    how: str,
    left_codes: np.ndarray,
    right_codes: np.ndarray,
) -> Frame:
    right_value_columns, rename = _output_layout(left, right, on)
    n_left, n_right = len(left), len(right)

    # Sort the (matchable) right rows by key code once; each left row's
    # matches are then one searchsorted range.  The stable sort keeps rows
    # with equal keys in right-row order, reproducing the reference
    # engine's match order.
    right_valid = np.flatnonzero(right_codes >= 0)
    sorted_right = right_valid[
        np.argsort(right_codes[right_valid], kind="stable")
    ]
    sorted_keys = right_codes[sorted_right]

    matchable = left_codes >= 0
    lo = np.searchsorted(sorted_keys, left_codes, side="left")
    hi = np.searchsorted(sorted_keys, left_codes, side="right")
    counts = np.where(matchable, hi - lo, 0).astype(np.int64)

    keep_unmatched_left = how in ("left", "outer")
    out_counts = np.maximum(counts, 1) if keep_unmatched_left else counts
    total = int(out_counts.sum())

    left_out = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
    block_starts = np.cumsum(out_counts) - out_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(block_starts, out_counts)
    right_out = np.full(total, -1, dtype=np.int64)
    has_match = np.repeat(counts > 0, out_counts)
    if total:
        gather_at = np.repeat(lo, out_counts) + within
        right_out[has_match] = sorted_right[gather_at[has_match]]

    # Unmatched right rows, appended (right order) by outer joins only.
    if how == "outer":
        matched = np.zeros(n_right, dtype=bool)
        emitted = right_out[right_out >= 0]
        matched[emitted] = True
        extra = np.flatnonzero(~matched)
    else:
        extra = np.empty(0, dtype=np.int64)
    n_extra = len(extra)

    right_null = right_out < 0
    no_extra_null = np.zeros(n_extra, dtype=bool)

    columns: dict[str, Column] = {}
    for name in left.columns:
        head = _gather(left[name], left_out, np.zeros(total, dtype=bool))
        if n_extra:
            if name in on:
                tail = _gather(right[name], extra, no_extra_null)
            else:
                tail = _null_column(left[name].kind, n_extra)
            head = _concat_columns(head, tail)
        columns[name] = head
    for name in right_value_columns:
        head = _gather(right[name], right_out, right_null)
        if n_extra:
            head = _concat_columns(head, _gather(right[name], extra, no_extra_null))
        columns[rename[name]] = head

    return Frame(columns)
