"""Hash joins between frames."""

from __future__ import annotations

from typing import Sequence

from ..errors import JoinError
from .frame import Frame

__all__ = ["join"]

_HOW = ("inner", "left", "outer")


def join(left: Frame, right: Frame, on: Sequence[str] | str, how: str = "inner") -> Frame:
    """Join two frames on equal key columns.

    Parameters
    ----------
    left, right:
        Input frames.  Non-key columns occurring in both frames get a
        ``_right`` suffix on the right-hand copy.
    on:
        Key column name(s); must exist in both frames.
    how:
        ``"inner"`` (default), ``"left"`` or ``"outer"``.

    Notes
    -----
    This is a straightforward hash join: the right frame is indexed by key
    tuple, then the left frame is scanned once.  Row multiplicity follows SQL
    semantics (cartesian product within a key).
    """
    if isinstance(on, str):
        on = [on]
    on = list(on)
    if how not in _HOW:
        raise JoinError(f"unknown join type {how!r}; expected one of {_HOW}")
    for key in on:
        if key not in left:
            raise JoinError(f"join key {key!r} missing from left frame")
        if key not in right:
            raise JoinError(f"join key {key!r} missing from right frame")

    right_value_columns = [name for name in right.columns if name not in on]
    rename = {
        name: (f"{name}_right" if name in left.columns else name)
        for name in right_value_columns
    }

    # Index the right frame by key tuple.
    right_index: dict[tuple, list[int]] = {}
    right_key_cols = [right[key] for key in on]
    for i in range(len(right)):
        key = tuple(column[i] for column in right_key_cols)
        right_index.setdefault(key, []).append(i)

    out_columns = left.columns + [rename[name] for name in right_value_columns]
    data: dict[str, list] = {name: [] for name in out_columns}

    left_key_cols = [left[key] for key in on]
    matched_right: set[int] = set()
    for i in range(len(left)):
        key = tuple(column[i] for column in left_key_cols)
        matches = right_index.get(key, [])
        if matches:
            for j in matches:
                matched_right.add(j)
                for name in left.columns:
                    data[name].append(left[name][i])
                for name in right_value_columns:
                    data[rename[name]].append(right[name][j])
        elif how in ("left", "outer"):
            for name in left.columns:
                data[name].append(left[name][i])
            for name in right_value_columns:
                data[rename[name]].append(None)

    if how == "outer":
        for j in range(len(right)):
            if j in matched_right:
                continue
            key = tuple(column[j] for column in right_key_cols)
            for name in left.columns:
                if name in on:
                    data[name].append(key[on.index(name)])
                else:
                    data[name].append(None)
            for name in right_value_columns:
                data[rename[name]].append(right[name][j])

    return Frame.from_dict({name: data[name] for name in out_columns})
