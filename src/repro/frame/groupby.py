"""Group-by aggregation for :class:`repro.frame.Frame`.

Two interchangeable engines build the grouping:

``"vector"`` (default)
    Key columns are factorized into dense integer codes
    (:mod:`repro.frame.codes`), codes are combined arithmetically, and one
    stable ``argsort`` turns the frame into contiguous per-group segments.
    Aggregations then run on NumPy slices of those segments — the same
    reduction, over the same values in the same (original row) order, as the
    scalar path, which keeps results bit-identical; pure counting kernels
    (``size``/``count``) use segment reductions (``np.diff`` /
    ``np.add.reduceat``) where exactness is order-independent.

``"python"``
    The scalar reference: per-row tuple keys into dict buckets.  Kept
    selectable (``engine="python"`` or ``REPRO_FRAME_ENGINE=python``) as the
    semantic oracle for the Hypothesis equivalence suite.

Missing key entries (masked, or NaN in float columns) are segregated into a
per-column null bucket — they group together, never with a real value (the
int sentinel 0 and float NaN payloads in the backing arrays are ignored).
Group order is the order of first appearance of each key, which keeps
results deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import GroupByError
from .column import Column
from .codes import group_codes, kernel_engine, key_missing_mask
from .frame import Frame

__all__ = ["GroupBy", "Aggregation", "AGGREGATIONS"]


def _agg_mean(column: Column) -> float:
    return column.mean()


def _agg_sum(column: Column) -> float:
    return column.sum()


def _agg_min(column: Column):
    return column.min()


def _agg_max(column: Column):
    return column.max()


def _agg_std(column: Column) -> float:
    return column.std()


def _agg_median(column: Column) -> float:
    return column.median()


def _agg_count(column: Column) -> int:
    return column.count()


def _agg_size(column: Column) -> int:
    return len(column)


def _agg_first(column: Column):
    return column[0] if len(column) else None


def _agg_last(column: Column):
    return column[len(column) - 1] if len(column) else None


def _agg_nunique(column: Column) -> int:
    return len(column.unique())


def _agg_q25(column: Column) -> float:
    return column.quantile(0.25)


def _agg_q75(column: Column) -> float:
    return column.quantile(0.75)


#: Named aggregation functions usable in :meth:`GroupBy.agg` specs.
AGGREGATIONS: dict[str, Callable[[Column], Any]] = {
    "mean": _agg_mean,
    "sum": _agg_sum,
    "min": _agg_min,
    "max": _agg_max,
    "std": _agg_std,
    "median": _agg_median,
    "count": _agg_count,
    "size": _agg_size,
    "first": _agg_first,
    "last": _agg_last,
    "nunique": _agg_nunique,
    "q25": _agg_q25,
    "q75": _agg_q75,
}


#: Segment kernels for the numeric built-ins: each applies the *same* NumPy
#: reduction :class:`Column` applies to the same valid-values array, so the
#: results are bit-identical to the scalar reference (see
#: ``GroupBy._agg_segments``).  ``first``/``last`` read row 0 / row -1 of the
#: segment exactly as ``Column.__getitem__`` would.
_NUMERIC_KERNELS: dict[str, Callable[[np.ndarray], Any]] = {
    "mean": lambda v: float(v.mean()) if len(v) else float("nan"),
    "sum": lambda v: float(v.sum()) if len(v) else 0.0,
    "min": lambda v: float(v.min()) if len(v) else None,
    "max": lambda v: float(v.max()) if len(v) else None,
    "std": lambda v: float(v.std(ddof=1)) if len(v) > 1 else float("nan"),
    "median": lambda v: float(np.median(v)) if len(v) else float("nan"),
    "q25": lambda v: float(np.quantile(v, 0.25)) if len(v) else float("nan"),
    "q75": lambda v: float(np.quantile(v, 0.75)) if len(v) else float("nan"),
}


@dataclass(frozen=True)
class Aggregation:
    """A single output column of a group-by: ``source`` column + function.

    ``func`` may be the name of a built-in aggregation (see
    :data:`AGGREGATIONS`) or any callable taking a :class:`Column` and
    returning a scalar.
    """

    source: str
    func: str | Callable[[Column], Any]

    def resolve(self) -> Callable[[Column], Any]:
        if callable(self.func):
            return self.func
        try:
            return AGGREGATIONS[self.func]
        except KeyError:
            raise GroupByError(
                f"unknown aggregation {self.func!r}; expected one of {sorted(AGGREGATIONS)}"
            ) from None


class GroupBy:
    """Lazy grouping of a frame by one or more key columns.

    Groups are materialised as index arrays; aggregation and ``apply`` both
    reuse them.  Group order is the order of first appearance of each key,
    which keeps results deterministic.  ``engine`` selects the grouping
    kernel (``"vector"`` / ``"python"``; ``None`` uses the process default).
    """

    def __init__(
        self,
        frame: Frame,
        keys: Sequence[str],
        engine: str | None = None,
        _codes: np.ndarray | None = None,
    ):
        if not keys:
            raise GroupByError("at least one grouping key is required")
        missing = [key for key in keys if key not in frame]
        if missing:
            raise GroupByError(f"unknown grouping columns: {missing}")
        self._frame = frame
        self._keys = list(keys)
        self._engine = kernel_engine(engine)
        # Precomputed row codes for the key columns (plan-executor fusion
        # hands in codes factorized once on the unfiltered frame and subset
        # by the selection mask).  Any assignment with equal key ⇔ equal
        # code yields the identical grouping: segments come from a stable
        # argsort and group order from first appearance, not code values.
        self._injected_codes = _codes
        self._group_keys: list[tuple] = []
        self._group_indices: list[np.ndarray] = []
        # Segment layout of the vector engine (None on the python path):
        # ``_order`` stably sorts rows by key code, so group ``g`` (in
        # first-appearance order) occupies ``_order[_starts[g]:_ends[g]]``
        # with original row order intact.
        self._order: np.ndarray | None = None
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None
        self._sorted_starts: np.ndarray | None = None
        self._appearance: np.ndarray | None = None
        if self._engine == "python":
            self._build_python()
        else:
            self._build_vector()

    # ------------------------------------------------------------------ #
    def _key_columns(self) -> list[Column]:
        return [self._frame[key] for key in self._keys]

    def _build_python(self) -> None:
        key_columns = self._key_columns()
        missing_masks = [key_missing_mask(column) for column in key_columns]
        buckets: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        for i in range(len(self._frame)):
            key = tuple(
                None if missing[i] else column[i]
                for column, missing in zip(key_columns, missing_masks)
            )
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(i)
        self._group_keys = order
        self._group_indices = [np.asarray(buckets[key], dtype=np.int64) for key in order]

    def _build_vector(self) -> None:
        key_columns = self._key_columns()
        if self._injected_codes is not None:
            codes = np.asarray(self._injected_codes, dtype=np.int64)
            if len(codes) != len(self._frame):
                raise GroupByError(
                    f"injected code array length {len(codes)} != frame "
                    f"length {len(self._frame)}"
                )
        else:
            codes = group_codes(key_columns)
        order = np.argsort(codes, kind="stable")
        if len(codes) == 0:
            self._order = order
            self._starts = np.empty(0, dtype=np.int64)
            self._ends = np.empty(0, dtype=np.int64)
            self._sorted_starts = np.empty(0, dtype=np.int64)
            self._appearance = np.empty(0, dtype=np.int64)
            return
        sorted_codes = codes[order]
        starts = np.flatnonzero(np.r_[True, sorted_codes[1:] != sorted_codes[:-1]])
        ends = np.append(starts[1:], len(codes))
        # The stable sort makes ``order[start]`` each group's first original
        # row; sorting groups by it yields first-appearance group order.
        firsts = order[starts]
        appearance = np.argsort(firsts, kind="stable")
        self._order = order
        self._sorted_starts = starts
        self._appearance = appearance
        self._starts = starts[appearance]
        self._ends = ends[appearance]
        self._group_indices = [
            order[s:e] for s, e in zip(self._starts, self._ends)
        ]
        missing_masks = [key_missing_mask(column) for column in key_columns]
        self._group_keys = [
            tuple(
                None if missing[i] else column[i]
                for column, missing in zip(key_columns, missing_masks)
            )
            for i in firsts[appearance]
        ]

    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    @property
    def engine(self) -> str:
        """The grouping kernel this instance was built with."""
        return self._engine

    @property
    def ngroups(self) -> int:
        return len(self._group_keys)

    def groups(self):
        """Iterate over ``(key_tuple, sub_frame)`` pairs."""
        for key, indices in zip(self._group_keys, self._group_indices):
            yield key, self._frame.take(indices)

    def get_group(self, key: tuple) -> Frame:
        """Return the sub-frame for one group key."""
        if not isinstance(key, tuple):
            key = (key,)
        for group_key, indices in zip(self._group_keys, self._group_indices):
            if group_key == key:
                return self._frame.take(indices)
        raise GroupByError(f"no group with key {key!r}")

    def size(self) -> Frame:
        """Group sizes as a frame with the key columns plus ``count``."""
        return self.agg({"count": Aggregation(self._keys[0], "size")})

    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalise_spec(
        spec: Mapping[str, "Aggregation | tuple | str"],
    ) -> dict[str, Aggregation]:
        normalised: dict[str, Aggregation] = {}
        for out_name, agg in spec.items():
            if isinstance(agg, Aggregation):
                normalised[out_name] = agg
            elif isinstance(agg, tuple) and len(agg) == 2:
                normalised[out_name] = Aggregation(agg[0], agg[1])
            elif isinstance(agg, str):
                normalised[out_name] = Aggregation(out_name, agg)
            else:
                raise GroupByError(f"invalid aggregation spec for {out_name!r}: {agg!r}")
        return normalised

    def agg(self, spec: Mapping[str, Aggregation | tuple | str]) -> Frame:
        """Aggregate each group.

        ``spec`` maps output column names to either an :class:`Aggregation`,
        a ``(source_column, func)`` tuple, or a bare function name (applied
        to the column with the same name as the output).
        """
        normalised = self._normalise_spec(spec)
        for out_name, agg in normalised.items():
            if agg.source not in self._frame:
                raise GroupByError(
                    f"aggregation {out_name!r} references unknown column {agg.source!r}"
                )

        data: dict[str, Any] = {key: [] for key in self._keys}
        if self._group_keys:
            for key, values in zip(self._keys, zip(*self._group_keys)):
                data[key] = list(values)
        if self._order is not None:
            computed = self._agg_vector(normalised)
            for out_name in normalised:
                value = computed[out_name]
                # Lists, not arrays, into from_dict: both engines then build
                # the output identically (down to the empty-input kind
                # inference), keeping them interchangeable frame-for-frame.
                data[out_name] = (
                    value.tolist() if isinstance(value, np.ndarray) else value
                )
        else:
            for out_name in normalised:
                data[out_name] = []
            for indices in self._group_indices:
                sub = self._frame.take(indices)
                for out_name, agg in normalised.items():
                    func = agg.resolve()
                    data[out_name].append(func(sub[agg.source]))
        return Frame.from_dict(data)

    def _agg_vector(self, normalised: dict[str, Aggregation]) -> dict[str, Any]:
        """All aggregations over the contiguous per-group segments.

        The stable sort preserved original row order inside each group, so a
        segment holds exactly the rows (and row order) the scalar path's
        ``frame.take(indices)`` would produce — every reduction below applies
        the same NumPy call to the same array as the scalar path, and is
        therefore identical bit for bit.  Aggregations are grouped by source
        column so the gather, the validity filtering and the float
        conversion are paid once per source, not once per output.
        """
        starts, ends = self._starts, self._ends
        out: dict[str, Any] = {}
        by_source: dict[str, list[tuple[str, Aggregation]]] = {}
        for out_name, agg in normalised.items():
            by_source.setdefault(agg.source, []).append((out_name, agg))
        for source, items in by_source.items():
            column = self._frame[source]
            kind = column.kind
            sorted_values = sorted_mask = sorted_float = None
            valid_segments: list[np.ndarray] | None = None
            for out_name, agg in items:
                if agg.func == "size":
                    out[out_name] = ends - starts
                    continue
                if sorted_mask is None:
                    sorted_mask = column.mask[self._order]
                if agg.func == "count":
                    if len(starts) == 0:
                        out[out_name] = np.empty(0, dtype=np.int64)
                        continue
                    counts = np.add.reduceat(
                        (~sorted_mask).astype(np.int64), self._sorted_starts
                    )
                    out[out_name] = counts[self._appearance]
                    continue
                if (
                    kind != "str"
                    and isinstance(agg.func, str)
                    and agg.func in _NUMERIC_KERNELS
                ):
                    if valid_segments is None:
                        if sorted_float is None:
                            sorted_float = column.values.astype(np.float64)[
                                self._order
                            ]
                        drop_nan = kind == "float"
                        valid_segments = []
                        for s, e in zip(starts, ends):
                            valid = sorted_float[s:e][~sorted_mask[s:e]]
                            if drop_nan:
                                valid = valid[~np.isnan(valid)]
                            valid_segments.append(valid)
                    kernel = _NUMERIC_KERNELS[agg.func]
                    out[out_name] = [kernel(valid) for valid in valid_segments]
                    continue
                # Everything else (callables, string reductions, nunique,
                # first/last, ...) runs on a per-group Column view over the
                # contiguous segment.
                func = agg.resolve()
                if sorted_values is None:
                    sorted_values = column.values[self._order]
                out[out_name] = [
                    func(Column(sorted_values[s:e], sorted_mask[s:e], kind))
                    for s, e in zip(starts, ends)
                ]
        return out

    def apply(self, func: Callable[[Frame], Mapping[str, Any]]) -> Frame:
        """Apply ``func`` to each group's sub-frame.

        ``func`` must return a mapping of column name → scalar; the key
        columns are prepended automatically.
        """
        records: list[dict[str, Any]] = []
        for key, indices in zip(self._group_keys, self._group_indices):
            sub = self._frame.take(indices)
            result = dict(func(sub))
            for key_name, key_value in zip(self._keys, key):
                result.setdefault(key_name, key_value)
            records.append(result)
        ordered_columns = self._keys + [
            name for name in (records[0] if records else {}) if name not in self._keys
        ]
        return Frame.from_records(records, columns=ordered_columns if records else self._keys)
