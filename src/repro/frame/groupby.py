"""Group-by aggregation for :class:`repro.frame.Frame`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import GroupByError
from .column import Column
from .frame import Frame

__all__ = ["GroupBy", "Aggregation", "AGGREGATIONS"]


def _agg_mean(column: Column) -> float:
    return column.mean()


def _agg_sum(column: Column) -> float:
    return column.sum()


def _agg_min(column: Column):
    return column.min()


def _agg_max(column: Column):
    return column.max()


def _agg_std(column: Column) -> float:
    return column.std()


def _agg_median(column: Column) -> float:
    return column.median()


def _agg_count(column: Column) -> int:
    return column.count()


def _agg_size(column: Column) -> int:
    return len(column)


def _agg_first(column: Column):
    return column[0] if len(column) else None


def _agg_last(column: Column):
    return column[len(column) - 1] if len(column) else None


def _agg_nunique(column: Column) -> int:
    return len(column.unique())


def _agg_q25(column: Column) -> float:
    return column.quantile(0.25)


def _agg_q75(column: Column) -> float:
    return column.quantile(0.75)


#: Named aggregation functions usable in :meth:`GroupBy.agg` specs.
AGGREGATIONS: dict[str, Callable[[Column], Any]] = {
    "mean": _agg_mean,
    "sum": _agg_sum,
    "min": _agg_min,
    "max": _agg_max,
    "std": _agg_std,
    "median": _agg_median,
    "count": _agg_count,
    "size": _agg_size,
    "first": _agg_first,
    "last": _agg_last,
    "nunique": _agg_nunique,
    "q25": _agg_q25,
    "q75": _agg_q75,
}


@dataclass(frozen=True)
class Aggregation:
    """A single output column of a group-by: ``source`` column + function.

    ``func`` may be the name of a built-in aggregation (see
    :data:`AGGREGATIONS`) or any callable taking a :class:`Column` and
    returning a scalar.
    """

    source: str
    func: str | Callable[[Column], Any]

    def resolve(self) -> Callable[[Column], Any]:
        if callable(self.func):
            return self.func
        try:
            return AGGREGATIONS[self.func]
        except KeyError:
            raise GroupByError(
                f"unknown aggregation {self.func!r}; expected one of {sorted(AGGREGATIONS)}"
            ) from None


class GroupBy:
    """Lazy grouping of a frame by one or more key columns.

    Groups are materialised as index arrays; aggregation and ``apply`` both
    reuse them.  Group order is the order of first appearance of each key,
    which keeps results deterministic.
    """

    def __init__(self, frame: Frame, keys: Sequence[str]):
        if not keys:
            raise GroupByError("at least one grouping key is required")
        missing = [key for key in keys if key not in frame]
        if missing:
            raise GroupByError(f"unknown grouping columns: {missing}")
        self._frame = frame
        self._keys = list(keys)
        self._group_keys: list[tuple] = []
        self._group_indices: list[np.ndarray] = []
        self._build()

    def _build(self) -> None:
        key_columns = [self._frame[key] for key in self._keys]
        buckets: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        for i in range(len(self._frame)):
            key = tuple(column[i] for column in key_columns)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(i)
        self._group_keys = order
        self._group_indices = [np.asarray(buckets[key], dtype=np.int64) for key in order]

    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> list[str]:
        return list(self._keys)

    @property
    def ngroups(self) -> int:
        return len(self._group_keys)

    def groups(self):
        """Iterate over ``(key_tuple, sub_frame)`` pairs."""
        for key, indices in zip(self._group_keys, self._group_indices):
            yield key, self._frame.take(indices)

    def get_group(self, key: tuple) -> Frame:
        """Return the sub-frame for one group key."""
        if not isinstance(key, tuple):
            key = (key,)
        for group_key, indices in zip(self._group_keys, self._group_indices):
            if group_key == key:
                return self._frame.take(indices)
        raise GroupByError(f"no group with key {key!r}")

    def size(self) -> Frame:
        """Group sizes as a frame with the key columns plus ``count``."""
        return self.agg({"count": Aggregation(self._keys[0], "size")})

    # ------------------------------------------------------------------ #
    def agg(self, spec: Mapping[str, Aggregation | tuple | str]) -> Frame:
        """Aggregate each group.

        ``spec`` maps output column names to either an :class:`Aggregation`,
        a ``(source_column, func)`` tuple, or a bare function name (applied
        to the column with the same name as the output).
        """
        normalised: dict[str, Aggregation] = {}
        for out_name, agg in spec.items():
            if isinstance(agg, Aggregation):
                normalised[out_name] = agg
            elif isinstance(agg, tuple) and len(agg) == 2:
                normalised[out_name] = Aggregation(agg[0], agg[1])
            elif isinstance(agg, str):
                normalised[out_name] = Aggregation(out_name, agg)
            else:
                raise GroupByError(f"invalid aggregation spec for {out_name!r}: {agg!r}")
        for out_name, agg in normalised.items():
            if agg.source not in self._frame:
                raise GroupByError(
                    f"aggregation {out_name!r} references unknown column {agg.source!r}"
                )

        data: dict[str, list] = {key: [] for key in self._keys}
        for out_name in normalised:
            data[out_name] = []
        for key, indices in zip(self._group_keys, self._group_indices):
            for key_name, key_value in zip(self._keys, key):
                data[key_name].append(key_value)
            sub = self._frame.take(indices)
            for out_name, agg in normalised.items():
                func = agg.resolve()
                value = func(sub[agg.source])
                data[out_name].append(value)
        return Frame.from_dict(data)

    def apply(self, func: Callable[[Frame], Mapping[str, Any]]) -> Frame:
        """Apply ``func`` to each group's sub-frame.

        ``func`` must return a mapping of column name → scalar; the key
        columns are prepended automatically.
        """
        records: list[dict[str, Any]] = []
        for key, indices in zip(self._group_keys, self._group_indices):
            sub = self._frame.take(indices)
            result = dict(func(sub))
            for key_name, key_value in zip(self._keys, key):
                result.setdefault(key_name, key_value)
            records.append(result)
        ordered_columns = self._keys + [
            name for name in (records[0] if records else {}) if name not in self._keys
        ]
        return Frame.from_records(records, columns=ordered_columns if records else self._keys)
