"""Out-of-core column backend: memory-mapped / streamed ``.npz`` members.

The columnar artifact codec (:mod:`repro.session.columnar`) packs a frame
into an uncompressed ``.npz``: numeric columns stacked by kind into 2-D
members, one fixed-width unicode member per string column, plus a
``masks`` validity matrix.  ``np.savez`` stores members *uncompressed*
(``ZIP_STORED``), which means every member's payload is a contiguous byte
range of the archive — so a column can be read without materialising the
file at all:

* :class:`NpzMap` parses the zip central directory plus each member's
  ``.npy`` header once and exposes two access paths per member:
  :meth:`NpzMap.memmap` (an ``np.memmap`` view over the payload — zero
  bytes read until pages are touched) and :meth:`NpzMap.read_rows`
  (explicit ``os.pread`` of a row range into a fresh heap buffer — the
  streaming path, whose bytes are counted in :data:`SCAN_STATS`);
* :class:`MmapColumn` is the third column backend (after the eager heap
  column and the scalar reference engine's view of it): a
  :class:`~repro.frame.column.Column` whose ``values``/``mask`` buffers
  are memmap views, so a frame reloaded with ``mmap=True`` costs a few
  pages of headers no matter how many gigabytes the artifact holds;
* :func:`open_frame_npz` rebuilds a persisted frame with every numeric
  column memory-mapped (string columns hold Python objects and must live
  on the heap, so they materialise on open — project them away first, or
  scan lazily, when they are not needed).

Byte accounting is honest: a memmap view reports its buffer under
``Column.mapped_nbytes`` while ``resident_nbytes`` counts only heap
allocations, so ``Frame.memory_usage(deep=True)`` on an out-of-core frame
shows kilobytes resident against gigabytes mapped instead of lying about
either (the torcharrow-style split the frame engine docs promise).
"""

from __future__ import annotations

import os
import struct
import threading
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

import numpy as np
import numpy.lib.format as npformat

from ..errors import ArtifactError
from .column import Column
from .frame import Frame

__all__ = [
    "SCAN_STATS",
    "MmapColumn",
    "NpzMap",
    "ScanStats",
    "open_frame_npz",
]

#: Size of the zip local-file-header prefix preceding each member's name.
_LOCAL_HEADER_FMT = "<IHHHHHIIIHH"
_LOCAL_HEADER_SIZE = struct.calcsize(_LOCAL_HEADER_FMT)


@dataclass
class ScanStats:
    """Counters over the streamed (``read_rows``) artifact access path.

    ``bytes_read`` counts payload bytes actually fetched from ``.npz``
    members; ``members_opened`` counts member headers parsed.  The plan
    executor's pushdown tests assert that a pruned + filtered scan reads
    strictly fewer bytes than a full materialisation — these counters are
    the instrument.  Thread-safe; ``reset()`` zeroes between measurements.
    """

    bytes_read: int = 0
    members_opened: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_bytes(self, n: int) -> None:
        with self._lock:
            self.bytes_read += int(n)

    def add_member(self) -> None:
        with self._lock:
            self.members_opened += 1

    def reset(self) -> None:
        with self._lock:
            self.bytes_read = 0
            self.members_opened = 0


#: Process-wide scan counters (the instrumented loader the benchmarks and
#: pushdown tests read).
SCAN_STATS = ScanStats()


@dataclass(frozen=True)
class _Member:
    """One ``.npy`` member of an uncompressed archive: payload geometry."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    offset: int  # absolute byte offset of the array payload
    fortran: bool

    @property
    def row_nbytes(self) -> int:
        width = self.shape[1] if len(self.shape) > 1 else 1
        return int(width) * self.dtype.itemsize


class NpzMap:
    """Random access into an uncompressed ``.npz`` without loading it.

    Parses the archive's central directory on construction and each
    requested member's ``.npy`` header on first touch; after that, a
    member is just ``(dtype, shape, offset)`` and both access paths are
    pure offset arithmetic.  Compressed members (``np.savez_compressed``)
    have no contiguous payload and raise — the artifact writers in this
    repository only ever use ``np.savez``.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._members: dict[str, _Member] = {}
        try:
            with zipfile.ZipFile(self.path) as archive:
                self._infos = {
                    info.filename: (info.header_offset, info.compress_type)
                    for info in archive.infolist()
                }
        except (OSError, zipfile.BadZipFile) as exc:
            raise ArtifactError(f"unreadable npz archive {self.path}: {exc}") from exc

    @property
    def names(self) -> list[str]:
        """Member names (without the ``.npy`` suffix), archive order."""
        return [name[: -len(".npy")] for name in self._infos if name.endswith(".npy")]

    def __contains__(self, name: str) -> bool:
        return f"{name}.npy" in self._infos

    def member(self, name: str) -> _Member:
        """Geometry of one member, parsing its header on first access."""
        cached = self._members.get(name)
        if cached is not None:
            return cached
        try:
            header_offset, compress_type = self._infos[f"{name}.npy"]
        except KeyError:
            raise ArtifactError(
                f"npz archive {self.path} has no member {name!r}"
            ) from None
        if compress_type != zipfile.ZIP_STORED:
            raise ArtifactError(
                f"npz member {name!r} in {self.path} is compressed; "
                "out-of-core access requires np.savez (stored) archives"
            )
        with open(self.path, "rb") as handle:
            handle.seek(header_offset)
            local = handle.read(_LOCAL_HEADER_SIZE)
            if len(local) < _LOCAL_HEADER_SIZE:
                raise ArtifactError(f"truncated npz archive {self.path}")
            fields = struct.unpack(_LOCAL_HEADER_FMT, local)
            name_len, extra_len = fields[9], fields[10]
            handle.seek(header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len)
            version = npformat.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = npformat.read_array_header_1_0(handle)
            else:
                shape, fortran, dtype = npformat.read_array_header_2_0(handle)
            member = _Member(
                name=name,
                dtype=dtype,
                shape=tuple(int(dim) for dim in shape),
                offset=handle.tell(),
                fortran=bool(fortran),
            )
        if member.fortran and len(member.shape) > 1:
            raise ArtifactError(
                f"npz member {name!r} in {self.path} is Fortran-ordered; "
                "the columnar codec only writes C-ordered stacks"
            )
        self._members[name] = member
        SCAN_STATS.add_member()
        return member

    # ------------------------------------------------------------------ #
    def memmap(self, name: str) -> np.memmap:
        """A read-only ``np.memmap`` over one member's payload.

        Creating the map reads nothing; pages fault in as they are
        touched and are reclaimable by the OS under memory pressure —
        the backing for :class:`MmapColumn`.
        """
        member = self.member(name)
        return np.memmap(
            self.path,
            dtype=member.dtype,
            mode="r",
            offset=member.offset,
            shape=member.shape,
        )

    def read_rows(self, name: str, row: int, start: int, stop: int) -> np.ndarray:
        """Read ``member[row, start:stop]`` into a fresh heap array.

        For 1-D members ``row`` must be 0 and the slice indexes elements.
        This is the counted streaming path: exactly the requested bytes
        are ``pread`` from the archive (no page-cache mapping enters the
        process), which is what keeps a filtered scan's RSS at
        O(chunk + matches) however large the artifact is.
        """
        member = self.member(name)
        n = member.shape[1] if len(member.shape) > 1 else member.shape[0]
        start = max(0, min(int(start), n))
        stop = max(start, min(int(stop), n))
        count = stop - start
        if count == 0:
            return np.empty(0, dtype=member.dtype)
        itemsize = member.dtype.itemsize
        offset = member.offset + (row * member.row_nbytes) + start * itemsize
        nbytes = count * itemsize
        fd = os.open(self.path, os.O_RDONLY)
        try:
            payload = os.pread(fd, nbytes, offset)
        finally:
            os.close(fd)
        if len(payload) != nbytes:
            raise ArtifactError(
                f"short read of npz member {name!r} in {self.path}: "
                f"wanted {nbytes} bytes at {offset}, got {len(payload)}"
            )
        SCAN_STATS.add_bytes(nbytes)
        return np.frombuffer(payload, dtype=member.dtype).copy()


class MmapColumn(Column):
    """A column whose buffers are memmap views over an ``.npz`` member.

    Behaviourally identical to an eager :class:`Column` — every kernel
    sees plain NumPy arrays — but construction reads nothing and byte
    accounting reports the buffers as *mapped*, not *resident* (see
    :attr:`Column.mapped_nbytes`).  Operations derive ordinary heap
    columns: ``filter``/``take`` materialise exactly the selected rows.
    Only numeric kinds can be mapped (string columns hold Python objects);
    :func:`open_frame_npz` materialises string columns on the heap.
    """

    __slots__ = ()


def _materialise_str(values: np.ndarray, mask: np.ndarray, padded: bool) -> np.ndarray:
    """Fixed-width unicode member → object array with ``None`` for missing.

    Mirrors :func:`repro.session.columnar.frame_from_arrays` exactly
    (including the trailing-NUL padding sentinel) so a mapped reload is
    bit-identical to the eager one.
    """
    restored = values.astype(object)
    if padded:
        restored = np.array([cell[:-1] for cell in restored], dtype=object)
    restored[mask] = None
    return restored


def open_frame_npz(
    path: str | os.PathLike,
    meta: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> Frame:
    """Open a persisted columnar artifact as an mmap-backed frame.

    ``meta`` is the JSON-side column list the artifact was written with
    (name + kind per column, in column order).  Numeric columns come back
    as :class:`MmapColumn` views — zero payload bytes read until touched;
    string columns (and every validity mask row that is accessed) fault
    in lazily through the same mapping.  ``columns`` restricts the frame
    to a subset (source order preserved) without opening the rest.
    """
    npz = NpzMap(path)
    wanted = None if columns is None else set(columns)
    mapped_masks: np.memmap | None = None
    stacks: dict[str, np.memmap] = {}
    out: dict[str, Column] = {}
    positions = {"float": 0, "int": 0, "bool": 0, "str": 0}
    for index, spec in enumerate(meta):
        kind = str(spec["kind"])
        if kind not in positions:
            raise ArtifactError(f"unknown column kind {kind!r} in dataset artifact")
        row = positions[kind]
        positions[kind] += 1
        name = str(spec["name"])
        if wanted is not None and name not in wanted:
            continue
        if mapped_masks is None:
            if "masks" not in npz:
                raise ArtifactError("columnar sidecar is missing the 'masks' member")
            mapped_masks = npz.memmap("masks")
        mask = mapped_masks[index]
        if kind == "str":
            # String columns live on the heap (object arrays of Python
            # str/None); copy the mask too so the column's buffers are
            # uniformly heap-resident and accounted as such.
            heap_mask = np.array(mask, dtype=bool)
            values = npz.memmap(f"str{row}")
            materialised = _materialise_str(values, heap_mask, bool(spec.get("padded")))
            out[name] = Column(materialised, heap_mask, "str")
        else:
            stack = stacks.get(kind)
            if stack is None:
                if kind not in npz:
                    raise ArtifactError(
                        f"columnar sidecar is missing data for column {name!r}"
                    )
                stack = stacks[kind] = npz.memmap(kind)
            out[name] = MmapColumn(stack[row], mask, kind)
    return Frame(out)


def iter_chunk_bounds(n_rows: int, chunk_rows: int) -> Iterator[tuple[int, int]]:
    """Contiguous ``[start, stop)`` windows covering ``n_rows``."""
    start = 0
    while start < n_rows:
        stop = min(start + chunk_rows, n_rows)
        yield start, stop
        start = stop
