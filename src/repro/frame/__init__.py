"""A small columnar data-frame substrate built on NumPy.

The upstream paper analyses SPEC Power results with pandas.  pandas is not
available in this environment, so :mod:`repro.frame` provides the subset of
functionality the analysis needs:

* :class:`Column` — a typed, missing-value-aware 1-D column,
* :class:`Frame` — an ordered collection of equal-length columns with
  filtering, sorting, derived columns, group-by aggregation and joins,
* :func:`read_csv` / :meth:`Frame.to_csv` — round-trippable CSV I/O,
* :meth:`Frame.lazy` / :func:`col` — lazy expression-graph plans with
  predicate pushdown, projection pruning and filter→groupby fusion
  (:mod:`repro.frame.plan`),
* :class:`MmapColumn` / :func:`open_frame_npz` — out-of-core columns
  memory-mapped over persisted ``.npz`` artifacts
  (:mod:`repro.frame.mmapio`).

The implementation favours vectorised NumPy operations over per-row Python
loops (see the project coding guides): filters are boolean masks, group-by
uses ``np.argsort`` + ``np.unique`` boundaries, and joins are hash joins on
key arrays.  Three engine tiers share one semantics — the eager vector
kernels, the scalar ``python`` oracle, and the ``lazy`` planner — held
bit-identical by the Hypothesis equivalence suites.
"""

from .column import Column
from .codes import default_engine, kernel_engine
from .frame import Frame, concat
from .groupby import GroupBy, Aggregation
from .join import join
from .csvio import read_csv, write_csv
from .mmapio import SCAN_STATS, MmapColumn, NpzMap, open_frame_npz

# plan imports frame/groupby/join, so it must come last.
from .plan import LazyFrame, col, concat_lazy, lazy_frame, scan_npz

__all__ = [
    "Aggregation",
    "Column",
    "Frame",
    "GroupBy",
    "LazyFrame",
    "MmapColumn",
    "NpzMap",
    "SCAN_STATS",
    "col",
    "concat",
    "concat_lazy",
    "default_engine",
    "join",
    "kernel_engine",
    "lazy_frame",
    "open_frame_npz",
    "read_csv",
    "scan_npz",
    "write_csv",
]
