"""A small columnar data-frame substrate built on NumPy.

The upstream paper analyses SPEC Power results with pandas.  pandas is not
available in this environment, so :mod:`repro.frame` provides the subset of
functionality the analysis needs:

* :class:`Column` — a typed, missing-value-aware 1-D column,
* :class:`Frame` — an ordered collection of equal-length columns with
  filtering, sorting, derived columns, group-by aggregation and joins,
* :func:`read_csv` / :meth:`Frame.to_csv` — round-trippable CSV I/O.

The implementation favours vectorised NumPy operations over per-row Python
loops (see the project coding guides): filters are boolean masks, group-by
uses ``np.argsort`` + ``np.unique`` boundaries, and joins are hash joins on
key arrays.
"""

from .column import Column
from .codes import default_engine
from .frame import Frame, concat
from .groupby import GroupBy, Aggregation
from .join import join
from .csvio import read_csv, write_csv

__all__ = [
    "Column",
    "Frame",
    "GroupBy",
    "Aggregation",
    "concat",
    "default_engine",
    "join",
    "read_csv",
    "write_csv",
]
