"""The :class:`Frame` container — an ordered set of equal-length columns."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..errors import FrameError
from .column import Column

__all__ = ["Frame", "concat"]


class Frame:
    """An immutable, column-oriented table.

    Frames behave like a light-weight pandas ``DataFrame``: columns are
    accessed by name, rows are selected with boolean masks, and most
    operations return new frames.  Column order is preserved and meaningful
    (CSV output, ``to_records`` and ``__repr__`` follow it).
    """

    def __init__(self, columns: Mapping[str, Column] | None = None):
        self._columns: dict[str, Column] = {}
        length: int | None = None
        for name, column in (columns or {}).items():
            if not isinstance(column, Column):
                column = Column.from_values(column)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise FrameError(
                    f"column {name!r} has length {len(column)}, expected {length}"
                )
            self._columns[str(name)] = column
        self._length = length or 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Any]]) -> "Frame":
        """Build a frame from a mapping of column name → values."""
        return cls({name: Column.from_values(values) for name, values in data.items()})

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Frame":
        """Build a frame from a list of dictionaries (rows).

        Keys missing from individual records become missing values.  When
        ``columns`` is not given, the union of keys in first-appearance order
        is used.
        """
        records = list(records)
        if columns is None:
            seen: dict[str, None] = {}
            for record in records:
                for key in record:
                    seen.setdefault(key, None)
            columns = list(seen)
        data = {
            name: Column.from_values([record.get(name) for record in records])
            for name in columns
        }
        return cls(data)

    @classmethod
    def empty(cls, columns: Sequence[str] = ()) -> "Frame":
        return cls({name: Column.from_values([]) for name in columns})

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> list[str]:
        """Column names in order."""
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._length, len(self._columns))

    @property
    def nbytes(self) -> int:
        """Total bytes held by all columns (see :attr:`Column.nbytes`)."""
        return sum(column.nbytes for column in self._columns.values())

    def memory_usage(self, deep: bool = False) -> "Frame":
        """Per-column byte accounting as a frame.

        One row per column with its logical kind and byte count, ordered by
        descending size, so the heaviest columns of a large aggregation (a
        campaign frame, say) surface first.  ``deep=True`` adds the honest
        split for out-of-core frames: ``resident`` (heap bytes actually
        held, string payloads included) and ``mapped`` (memory-mapped file
        bytes, reclaimable by the OS) — ``nbytes`` is always their sum.
        """
        names = ["column", "kind", "nbytes"]
        if deep:
            names += ["resident", "mapped"]
        records = []
        for name, column in self._columns.items():
            record = {"column": name, "kind": column.kind, "nbytes": column.nbytes}
            if deep:
                record["resident"] = column.resident_nbytes
                record["mapped"] = column.mapped_nbytes
            records.append(record)
        records.sort(key=lambda r: (-r["nbytes"], r["column"]))
        return Frame.from_records(records, columns=names)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, key):
        if isinstance(key, str):
            try:
                return self._columns[key]
            except KeyError:
                raise FrameError(f"no column named {key!r}; have {self.columns}") from None
        if isinstance(key, (list, tuple)):
            return self.select(list(key))
        if isinstance(key, np.ndarray):
            return self.filter(key)
        raise FrameError(f"unsupported index type: {type(key).__name__}")

    def column(self, name: str) -> Column:
        """Alias for ``frame[name]`` that reads better in call chains."""
        return self[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Frame(rows={self._length}, columns={self.columns})"

    def to_string(self, max_rows: int = 20) -> str:
        """A plain-text preview of the frame."""
        names = self.columns
        rows = [names]
        count = min(self._length, max_rows)
        for i in range(count):
            rows.append(
                ["" if self._columns[n][i] is None else str(self._columns[n][i]) for n in names]
            )
        widths = [max(len(row[j]) for row in rows) for j in range(len(names))]
        lines = []
        for idx, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
            if idx == 0:
                lines.append("  ".join("-" * widths[j] for j in range(len(names))))
        if self._length > count:
            lines.append(f"... ({self._length - count} more rows)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Row/column selection
    # ------------------------------------------------------------------ #
    def select(self, names: Sequence[str]) -> "Frame":
        """Project onto a subset of columns (in the given order)."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise FrameError(f"unknown columns: {missing}")
        return Frame({name: self._columns[name] for name in names})

    def drop(self, names: Sequence[str] | str) -> "Frame":
        """Remove one or more columns."""
        if isinstance(names, str):
            names = [names]
        drop = set(names)
        return Frame({n: c for n, c in self._columns.items() if n not in drop})

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """Rename columns according to ``mapping`` (old → new)."""
        return Frame({mapping.get(n, n): c for n, c in self._columns.items()})

    def with_column(self, name: str, values: Any) -> "Frame":
        """Return a new frame with column ``name`` added or replaced."""
        if isinstance(values, Column):
            column = values
        elif isinstance(values, np.ndarray):
            column = Column.from_numpy(values)
        elif np.isscalar(values) or values is None:
            column = Column.full(self._length, values)
        else:
            column = Column.from_values(values)
        if len(column) != self._length and self._length != 0:
            raise FrameError(
                f"new column {name!r} has length {len(column)}, expected {self._length}"
            )
        data = dict(self._columns)
        data[name] = column
        return Frame(data)

    def with_columns(self, columns: Mapping[str, Any]) -> "Frame":
        frame = self
        for name, values in columns.items():
            frame = frame.with_column(name, values)
        return frame

    def assign(self, name: str, func: Callable[["Frame"], Any]) -> "Frame":
        """Add a column computed from the frame itself."""
        return self.with_column(name, func(self))

    def filter(self, mask: np.ndarray | Column) -> "Frame":
        """Keep rows where ``mask`` is ``True``."""
        if isinstance(mask, Column):
            mask = mask.astype("bool").to_numpy(missing=False).astype(bool)
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise FrameError(
                f"mask length {len(mask)} does not match frame length {self._length}"
            )
        return Frame({n: c.filter(mask) for n, c in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Frame":
        """Select rows by integer position."""
        indices = np.asarray(indices)
        return Frame({n: c.take(indices) for n, c in self._columns.items()})

    def head(self, n: int = 5) -> "Frame":
        return self.take(np.arange(min(n, self._length)))

    def tail(self, n: int = 5) -> "Frame":
        start = max(self._length - n, 0)
        return self.take(np.arange(start, self._length))

    def row(self, index: int) -> dict[str, Any]:
        """Return a single row as a dictionary."""
        if not -self._length <= index < self._length:
            raise FrameError(f"row index {index} out of range for {self._length} rows")
        return {name: column[index] for name, column in self._columns.items()}

    def iter_rows(self):
        """Iterate over rows as dictionaries (use sparingly on large frames)."""
        for i in range(self._length):
            yield self.row(i)

    def to_records(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    def to_dict(self) -> dict[str, list]:
        return {name: column.to_list() for name, column in self._columns.items()}

    # ------------------------------------------------------------------ #
    # Sorting / deduplication
    # ------------------------------------------------------------------ #
    def sort_by(
        self, names: Sequence[str] | str, descending: bool | Sequence[bool] = False
    ) -> "Frame":
        """Sort rows by one or more columns (stable, missing values last)."""
        if isinstance(names, str):
            names = [names]
        if isinstance(descending, bool):
            descending = [descending] * len(names)
        if len(descending) != len(names):
            raise FrameError("descending must match the number of sort keys")
        order = np.arange(self._length)
        # Stable sorts applied from the least-significant key to the most.
        for name, desc in list(zip(names, descending))[::-1]:
            column = self[name].take(order)
            sub_order = column.sort_indices(descending=desc)
            order = order[sub_order]
        return self.take(order)

    def unique(self, names: Sequence[str] | str) -> "Frame":
        """Drop duplicate rows considering only the given key columns."""
        if isinstance(names, str):
            names = [names]
        seen: set = set()
        keep = np.zeros(self._length, dtype=bool)
        key_columns = [self[name] for name in names]
        for i in range(self._length):
            key = tuple(column[i] for column in key_columns)
            if key not in seen:
                seen.add(key)
                keep[i] = True
        return self.filter(keep)

    def dropna(self, names: Sequence[str] | str | None = None) -> "Frame":
        """Remove rows with missing values in the given (or all) columns."""
        if names is None:
            names = self.columns
        elif isinstance(names, str):
            names = [names]
        keep = np.ones(self._length, dtype=bool)
        for name in names:
            keep &= self[name].notna()
        return self.filter(keep)

    # ------------------------------------------------------------------ #
    # Lazy plans (implemented in plan/)
    # ------------------------------------------------------------------ #
    def lazy(self) -> "LazyFrame":
        """Wrap this frame in a lazy plan; see :class:`repro.frame.plan.LazyFrame`.

        Chained ``filter``/``select``/``groupby``/``join``/``sort_by``
        calls build a logical plan instead of materializing intermediates;
        ``collect()`` optimizes (predicate pushdown, projection pruning,
        filter→groupby fusion) and executes on the eager kernels, with
        output bit-identical to the equivalent eager chain.
        """
        from .plan import lazy_frame

        return lazy_frame(self)

    # ------------------------------------------------------------------ #
    # Aggregation entry points (implemented in groupby.py / join.py)
    # ------------------------------------------------------------------ #
    def groupby(self, keys: Sequence[str] | str, engine: str | None = None):
        """Group rows by one or more key columns; see :class:`GroupBy`.

        ``engine`` selects the grouping kernel: ``"vector"`` (default) or
        the scalar ``"python"`` reference path.
        """
        from .groupby import GroupBy

        if isinstance(keys, str):
            keys = [keys]
        return GroupBy(self, list(keys), engine=engine)

    def join(
        self,
        other: "Frame",
        on: Sequence[str] | str,
        how: str = "inner",
        engine: str | None = None,
    ) -> "Frame":
        from .join import join as _join

        return _join(self, other, on=on, how=how, engine=engine)

    def value_counts(self, name: str) -> "Frame":
        """Frequency table of a column, ordered by descending count."""
        counts = self[name].value_counts()
        items = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return Frame.from_dict(
            {name: [k for k, _ in items], "count": [v for _, v in items]}
        )

    def describe(self, names: Sequence[str] | None = None) -> "Frame":
        """Summary statistics (count/mean/std/min/median/max) per column."""
        if names is None:
            names = [n for n in self.columns if self[n].kind in ("float", "int")]
        records = []
        for name in names:
            column = self[name]
            records.append(
                {
                    "column": name,
                    "count": column.count(),
                    "mean": column.mean(),
                    "std": column.std(),
                    "min": column.min(),
                    "median": column.median(),
                    "max": column.max(),
                }
            )
        return Frame.from_records(records)

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    def to_csv(self, path: str) -> None:
        from .csvio import write_csv

        write_csv(self, path)

    def equals(self, other: "Frame") -> bool:
        if not isinstance(other, Frame) or self.columns != other.columns:
            return False
        return all(self[name].equals(other[name]) for name in self.columns)


def concat(frames: Sequence[Frame]) -> Frame:
    """Vertically concatenate frames.

    Columns are unioned; values missing from an input frame become missing
    values in the result.  Column order follows first appearance.

    A column present in *every* input with one consistent kind is stitched
    as pure array work (``np.concatenate`` of values and validity masks) —
    the path campaign shard concatenation takes, where every shard shares
    one schema.  Columns that need backfilling or kind reconciliation fall
    back to the per-value route; both produce the same frame.
    """
    frames = [f for f in frames if f is not None]
    if not frames:
        return Frame()
    names: dict[str, None] = {}
    for frame in frames:
        for name in frame.columns:
            names.setdefault(name, None)
    columns: dict[str, Column] = {}
    for name in names:
        parts = [frame[name] for frame in frames if name in frame]
        kinds = {part.kind for part in parts}
        if len(parts) == len(frames) and len(kinds) == 1:
            if len(parts) == 1:
                columns[name] = parts[0]  # columns are immutable: share it
            else:
                columns[name] = Column(
                    np.concatenate([part.values for part in parts]),
                    np.concatenate([part.mask for part in parts]),
                    parts[0].kind,
                )
            continue
        values: list = []
        for frame in frames:
            if name in frame:
                values.extend(frame[name].to_list())
            else:
                values.extend([None] * len(frame))
        columns[name] = Column.from_values(values)
    return Frame(columns)
