"""Typed, missing-value-aware columns.

A :class:`Column` wraps a NumPy array together with a boolean validity mask.
Four logical kinds are supported:

``"float"``
    64-bit floating point.  Missing entries are stored as ``NaN`` *and*
    flagged in the mask so that ``NaN`` produced by computation can be
    distinguished from genuinely absent data when needed.
``"int"``
    64-bit signed integers.  Missing entries keep a sentinel of 0 in the
    backing array and are flagged in the mask.
``"bool"``
    Booleans with the same sentinel convention as ``"int"``.
``"str"``
    Python strings held in an object array; missing entries are ``None``.

Columns are immutable from the caller's perspective — every operation
returns a new column — which keeps Frame semantics simple and makes the
structures safe to share between threads in the parallel helpers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..errors import ColumnError

__all__ = ["Column"]

_KINDS = ("float", "int", "bool", "str")


def _infer_kind(values: Sequence[Any]) -> str:
    """Infer the logical kind of a sequence of Python values.

    A single string (or other non-numeric object) forces ``"str"`` for the
    whole column, so the scan stops at the first one instead of classifying
    the remaining values for nothing.
    """
    has_float = False
    has_int = False
    has_bool = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, (bool, np.bool_)):
            has_bool = True
        elif isinstance(value, (int, np.integer)):
            has_int = True
        elif isinstance(value, (float, np.floating)):
            has_float = True
        else:
            return "str"
    if has_float:
        return "float"
    if has_int:
        return "int"
    if has_bool:
        return "bool"
    return "float"


def _is_missing(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    if isinstance(value, np.floating) and np.isnan(float(value)):
        return True
    return False


class Column:
    """A 1-D typed column with an explicit missing-value mask.

    Columns are value-immutable by contract: every frame operation builds
    new columns rather than writing into existing ones.  ``_codes_memo``
    rides on that contract — it caches the key factorization
    (:func:`repro.frame.codes.group_codes`) the first time a column is used
    as a grouping key, so repeated group-bys over the same frame skip the
    ``np.unique`` pass entirely.
    """

    __slots__ = ("_values", "_mask", "_kind", "_codes_memo")

    def __init__(self, values: np.ndarray, mask: np.ndarray, kind: str):
        if kind not in _KINDS:
            raise ColumnError(f"unknown column kind {kind!r}")
        if values.ndim != 1 or mask.ndim != 1 or len(values) != len(mask):
            raise ColumnError("values and mask must be 1-D arrays of equal length")
        self._values = values
        self._mask = mask.astype(bool, copy=False)
        self._kind = kind
        self._codes_memo: "tuple | None" = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: Iterable[Any], kind: str | None = None) -> "Column":
        """Build a column from arbitrary Python values.

        ``None`` and ``NaN`` entries become missing values.  When ``kind`` is
        not given it is inferred from the data.
        """
        if isinstance(values, Column):
            return values if kind is None else values.astype(kind)
        if isinstance(values, np.ndarray):
            # A typed NumPy array already knows its kind: skip the per-value
            # Python inference scan entirely.  With an explicit matching
            # ``kind`` the conversion is likewise pure array work; a
            # *mismatched* kind falls through to the per-value loop, whose
            # element-wise coercion semantics (truncation, overflow errors)
            # are the documented behaviour.
            if kind is None:
                return cls.from_numpy(values)
            # Unsigned arrays stay on the per-value loop: int(value) raises
            # OverflowError past int64 range where astype would wrap.
            natural = {"f": "float", "i": "int", "b": "bool"}.get(values.dtype.kind)
            if natural == kind:
                return cls.from_numpy(values)
        items = list(values)
        if kind is None:
            kind = _infer_kind(items)
        n = len(items)
        mask = np.zeros(n, dtype=bool)
        if kind == "str":
            data = np.empty(n, dtype=object)
            for i, value in enumerate(items):
                if _is_missing(value):
                    data[i] = None
                    mask[i] = True
                else:
                    data[i] = str(value)
        elif kind == "float":
            data = np.empty(n, dtype=np.float64)
            for i, value in enumerate(items):
                if _is_missing(value):
                    data[i] = np.nan
                    mask[i] = True
                else:
                    data[i] = float(value)
        elif kind == "int":
            data = np.zeros(n, dtype=np.int64)
            for i, value in enumerate(items):
                if _is_missing(value):
                    mask[i] = True
                else:
                    data[i] = int(value)
        else:  # bool
            data = np.zeros(n, dtype=bool)
            for i, value in enumerate(items):
                if _is_missing(value):
                    mask[i] = True
                else:
                    data[i] = bool(value)
        return cls(data, mask, kind)

    @classmethod
    def from_numpy(cls, array: np.ndarray) -> "Column":
        """Build a column from a NumPy array, inferring the kind from dtype."""
        array = np.asarray(array)
        if array.dtype.kind == "f":
            mask = np.isnan(array)
            return cls(array.astype(np.float64), mask, "float")
        if array.dtype.kind in "iu":
            return cls(array.astype(np.int64), np.zeros(len(array), dtype=bool), "int")
        if array.dtype.kind == "b":
            return cls(array.astype(bool), np.zeros(len(array), dtype=bool), "bool")
        # Fall back to the generic constructor for object / unicode arrays.
        return cls.from_values(array.tolist())

    @classmethod
    def full(cls, length: int, value: Any, kind: str | None = None) -> "Column":
        """A column of ``length`` copies of ``value``."""
        return cls.from_values([value] * length, kind=kind)

    @classmethod
    def empty(cls, kind: str) -> "Column":
        return cls.from_values([], kind=kind)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """Logical kind: ``"float"``, ``"int"``, ``"bool"`` or ``"str"``."""
        return self._kind

    @property
    def nbytes(self) -> int:
        """Bytes this column addresses (resident heap + mapped file bytes).

        Numeric kinds report the NumPy buffer sizes.  String columns hold
        Python objects, so the object array's pointer buffer is counted plus
        the UTF-8 payload of each distinct string (interned duplicates are
        counted once, mirroring how CPython actually stores them).  For
        mmap-backed columns this is the *addressable* total; see
        :attr:`resident_nbytes` / :attr:`mapped_nbytes` for the honest
        split between heap allocations and reclaimable file mappings.
        """
        return self.resident_nbytes + self.mapped_nbytes

    @property
    def is_mapped(self) -> bool:
        """True when any backing buffer is a memory-mapped file view."""
        return isinstance(self._values, np.memmap) or isinstance(self._mask, np.memmap)

    @property
    def mapped_nbytes(self) -> int:
        """Bytes backed by memory-mapped files (reclaimable, not heap RSS).

        Pages of these buffers fault in on access and can be dropped by
        the OS under pressure, so counting them as resident would overstate
        an out-of-core frame's footprint by orders of magnitude.  Validity
        masks are included when they too are mapped.
        """
        total = 0
        if isinstance(self._values, np.memmap):
            total += self._values.nbytes
        if isinstance(self._mask, np.memmap):
            total += self._mask.nbytes
        return total

    @property
    def resident_nbytes(self) -> int:
        """Heap bytes this column actually holds (torcharrow-style deep).

        Equals :meth:`memory_usage` with ``deep=True``: heap-allocated
        buffers plus the deduplicated UTF-8 payload of string columns.
        Memory-mapped buffers are excluded — they live in the page cache,
        not this process's heap (see :attr:`mapped_nbytes`).
        """
        return self.memory_usage(deep=True)

    def memory_usage(self, deep: bool = False) -> int:
        """Resident bytes: backing buffers, plus string payload when ``deep``.

        ``deep=False`` counts the heap-allocated NumPy buffers only (for a
        string column that is the pointer buffer).  ``deep=True`` adds the
        UTF-8 payload of each distinct string, the honest per-column cost.
        Mapped buffers are never counted here — report them via
        :attr:`mapped_nbytes` instead of pretending the file is heap.
        """
        total = 0
        if not isinstance(self._values, np.memmap):
            total += self._values.nbytes
        if not isinstance(self._mask, np.memmap):
            total += self._mask.nbytes
        if deep and self._kind == "str":
            seen: set[int] = set()
            for value in self._values:
                if value is None or id(value) in seen:
                    continue
                seen.add(id(value))
                total += len(value.encode("utf-8", errors="replace"))
        return total

    @property
    def values(self) -> np.ndarray:
        """The backing NumPy array (do not mutate)."""
        return self._values

    @property
    def mask(self) -> np.ndarray:
        """Boolean array, ``True`` where the value is missing."""
        return self._mask

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            if self._mask[index]:
                return None
            value = self._values[index]
            if self._kind == "float":
                return float(value)
            if self._kind == "int":
                return int(value)
            if self._kind == "bool":
                return bool(value)
            return value
        if isinstance(index, slice):
            return Column(self._values[index], self._mask[index], self._kind)
        index = np.asarray(index)
        return self.take(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        preview = ", ".join(repr(v) for v in self.to_list()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column(kind={self._kind!r}, n={len(self)}, [{preview}{suffix}])"

    def __eq__(self, other: Any):
        return self._compare(other, "eq")

    def __ne__(self, other: Any):
        return self._compare(other, "ne")

    def __lt__(self, other: Any):
        return self._compare(other, "lt")

    def __le__(self, other: Any):
        return self._compare(other, "le")

    def __gt__(self, other: Any):
        return self._compare(other, "gt")

    def __ge__(self, other: Any):
        return self._compare(other, "ge")

    def __hash__(self):  # Columns are not hashable (they are mutable containers).
        raise TypeError("Column objects are unhashable")

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_list(self) -> list:
        """Convert to a list of Python values with ``None`` for missing."""
        return [self[i] for i in range(len(self))]

    def to_numpy(self, missing: Any = None) -> np.ndarray:
        """Return a NumPy array; missing values become ``missing``.

        For float columns the default keeps missing values as ``NaN``.
        """
        if self._kind == "float":
            out = self._values.copy()
            if missing is not None:
                out[self._mask] = missing
            return out
        if missing is None and self._kind in ("int", "bool") and not self._mask.any():
            return self._values.copy()
        out = np.array(self.to_list(), dtype=object)
        if missing is not None:
            out[self._mask] = missing
        return out

    def astype(self, kind: str) -> "Column":
        """Convert the column to another kind, preserving missing values."""
        if kind == self._kind:
            return self
        if kind not in _KINDS:
            raise ColumnError(f"unknown column kind {kind!r}")
        converted: list[Any] = []
        for value in self.to_list():
            if value is None:
                converted.append(None)
            elif kind == "str":
                converted.append(str(value))
            elif kind == "float":
                converted.append(float(value))
            elif kind == "int":
                converted.append(int(float(value)))
            else:
                converted.append(bool(value))
        return Column.from_values(converted, kind=kind)

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Column":
        """Select rows by integer position."""
        indices = np.asarray(indices)
        if indices.dtype.kind == "b":
            return self.filter(indices)
        return Column(self._values[indices], self._mask[indices], self._kind)

    def filter(self, mask: np.ndarray) -> "Column":
        """Select rows where ``mask`` is ``True``."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise ColumnError(
                f"filter mask length {len(mask)} != column length {len(self)}"
            )
        return Column(self._values[mask], self._mask[mask], self._kind)

    # ------------------------------------------------------------------ #
    # Missing-value handling
    # ------------------------------------------------------------------ #
    def isna(self) -> np.ndarray:
        """Boolean array flagging missing entries."""
        return self._mask.copy()

    def notna(self) -> np.ndarray:
        return ~self._mask

    def count(self) -> int:
        """Number of non-missing entries."""
        return int((~self._mask).sum())

    def fillna(self, value: Any) -> "Column":
        """Replace missing entries with ``value``."""
        if not self._mask.any():
            return self
        items = self.to_list()
        filled = [value if item is None else item for item in items]
        return Column.from_values(filled, kind=None if value is None else self._kind)

    def dropna(self) -> "Column":
        return self.filter(~self._mask)

    # ------------------------------------------------------------------ #
    # Vectorised comparisons / membership
    # ------------------------------------------------------------------ #
    def _compare(self, other: Any, op: str) -> np.ndarray:
        """Element-wise comparison returning a boolean mask.

        Missing entries always compare ``False`` so filters silently drop
        them, matching the semantics of the pandas code the paper uses.
        """
        if isinstance(other, Column):
            other_values = other._values
            other_missing = other._mask
        else:
            other_values = other
            other_missing = None
        if self._kind == "str":
            left = self._values.astype(object)
            if isinstance(other_values, np.ndarray):
                right = other_values.astype(object)
            else:
                right = other_values
            with np.errstate(all="ignore"):
                if op == "eq":
                    result = left == right
                elif op == "ne":
                    result = left != right
                else:
                    comparisons = {
                        "lt": np.less, "le": np.less_equal,
                        "gt": np.greater, "ge": np.greater_equal,
                    }
                    result = comparisons[op](left, right)
            result = np.asarray(result, dtype=bool)
        else:
            comparisons: dict[str, Callable] = {
                "eq": np.equal, "ne": np.not_equal,
                "lt": np.less, "le": np.less_equal,
                "gt": np.greater, "ge": np.greater_equal,
            }
            with np.errstate(invalid="ignore"):
                result = comparisons[op](self._values, other_values)
            result = np.asarray(result, dtype=bool)
        result &= ~self._mask
        if other_missing is not None:
            result &= ~other_missing
        return result

    def isin(self, values: Iterable[Any]) -> np.ndarray:
        """Boolean mask of rows whose value is a member of ``values``."""
        lookup = set(values)
        out = np.zeros(len(self), dtype=bool)
        for i, value in enumerate(self.to_list()):
            if value is not None and value in lookup:
                out[i] = True
        return out

    def str_contains(self, needle: str, case: bool = False) -> np.ndarray:
        """Substring match for string columns (missing entries are ``False``)."""
        if self._kind != "str":
            raise ColumnError("str_contains requires a string column")
        needle_cmp = needle if case else needle.lower()
        out = np.zeros(len(self), dtype=bool)
        for i, value in enumerate(self._values):
            if value is None:
                continue
            haystack = value if case else value.lower()
            out[i] = needle_cmp in haystack
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic (numeric kinds only)
    # ------------------------------------------------------------------ #
    def _binary(self, other: Any, func: Callable) -> "Column":
        if self._kind not in ("float", "int", "bool"):
            raise ColumnError("arithmetic requires a numeric column")
        left = self._values.astype(np.float64)
        left = left.copy()
        left[self._mask] = np.nan
        if isinstance(other, Column):
            right = other._values.astype(np.float64).copy()
            right[other._mask] = np.nan
        else:
            right = other
        with np.errstate(divide="ignore", invalid="ignore"):
            result = func(left, right)
        return Column.from_numpy(np.asarray(result, dtype=np.float64))

    def __add__(self, other):
        return self._binary(other, np.add)

    def __radd__(self, other):
        return self._binary(other, lambda a, b: np.add(b, a))

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return self._binary(other, lambda a, b: np.subtract(b, a))

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    def __rmul__(self, other):
        return self._binary(other, lambda a, b: np.multiply(b, a))

    def __truediv__(self, other):
        return self._binary(other, np.divide)

    def __rtruediv__(self, other):
        return self._binary(other, lambda a, b: np.divide(b, a))

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def _numeric_valid(self) -> np.ndarray:
        if self._kind not in ("float", "int", "bool"):
            raise ColumnError(f"numeric reduction on {self._kind!r} column")
        values = self._values.astype(np.float64)[~self._mask]
        if self._kind == "float":
            values = values[~np.isnan(values)]
        return values

    def sum(self) -> float:
        values = self._numeric_valid()
        return float(values.sum()) if len(values) else 0.0

    def mean(self) -> float:
        values = self._numeric_valid()
        return float(values.mean()) if len(values) else float("nan")

    def std(self, ddof: int = 1) -> float:
        values = self._numeric_valid()
        if len(values) <= ddof:
            return float("nan")
        return float(values.std(ddof=ddof))

    def min(self):
        values = self._numeric_valid() if self._kind != "str" else [
            v for v in self._values if v is not None
        ]
        if len(values) == 0:
            return None
        return min(values) if self._kind == "str" else float(np.min(values))

    def max(self):
        values = self._numeric_valid() if self._kind != "str" else [
            v for v in self._values if v is not None
        ]
        if len(values) == 0:
            return None
        return max(values) if self._kind == "str" else float(np.max(values))

    def median(self) -> float:
        values = self._numeric_valid()
        return float(np.median(values)) if len(values) else float("nan")

    def quantile(self, q: float) -> float:
        values = self._numeric_valid()
        return float(np.quantile(values, q)) if len(values) else float("nan")

    # ------------------------------------------------------------------ #
    # Grouping helpers
    # ------------------------------------------------------------------ #
    def unique(self) -> list:
        """Unique non-missing values, in order of first appearance."""
        seen: dict[Any, None] = {}
        for value in self.to_list():
            if value is not None and value not in seen:
                seen[value] = None
        return list(seen)

    def value_counts(self) -> dict:
        """Mapping of value → occurrence count (missing values excluded)."""
        counts: dict[Any, int] = {}
        for value in self.to_list():
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        return counts

    def sort_indices(self, descending: bool = False) -> np.ndarray:
        """Indices that would sort this column (missing values last)."""
        if self._kind == "str":
            keyed = [
                (value is None, value if value is not None else "")
                for value in self._values
            ]
            order = sorted(range(len(self)), key=lambda i: keyed[i],
                           reverse=descending)
            if descending:
                # Keep missing values last even in descending order.
                order = [i for i in order if not self._mask[i]] + [
                    i for i in order if self._mask[i]
                ]
            return np.asarray(order, dtype=np.int64)
        values = self._values.astype(np.float64).copy()
        values[self._mask] = np.inf if not descending else -np.inf
        order = np.argsort(values, kind="stable")
        if descending:
            order = order[::-1]
            missing = self._mask[order]
            order = np.concatenate([order[~missing], order[missing]])
        return order.astype(np.int64)

    def map(self, func: Callable[[Any], Any], kind: str | None = None) -> "Column":
        """Apply ``func`` element-wise (missing values stay missing)."""
        out = [None if value is None else func(value) for value in self.to_list()]
        return Column.from_values(out, kind=kind)

    def equals(self, other: "Column") -> bool:
        """Exact equality including positions of missing values."""
        if not isinstance(other, Column) or len(self) != len(other):
            return False
        return self.to_list() == other.to_list()
