"""Vectorised helper operations on columns and masks.

These helpers keep the analysis code (``repro.core``) free of ad-hoc NumPy
gymnastics: combining filter masks, cutting continuous values into bins and
computing ratios with missing-value propagation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FrameError
from .column import Column

__all__ = ["and_masks", "or_masks", "not_mask", "cut", "ratio", "clip"]


def and_masks(*masks: np.ndarray) -> np.ndarray:
    """Logical AND of one or more boolean masks."""
    if not masks:
        raise FrameError("and_masks requires at least one mask")
    out = np.asarray(masks[0], dtype=bool).copy()
    for mask in masks[1:]:
        out &= np.asarray(mask, dtype=bool)
    return out


def or_masks(*masks: np.ndarray) -> np.ndarray:
    """Logical OR of one or more boolean masks."""
    if not masks:
        raise FrameError("or_masks requires at least one mask")
    out = np.asarray(masks[0], dtype=bool).copy()
    for mask in masks[1:]:
        out |= np.asarray(mask, dtype=bool)
    return out


def not_mask(mask: np.ndarray) -> np.ndarray:
    """Logical NOT of a boolean mask."""
    return ~np.asarray(mask, dtype=bool)


def cut(column: Column, edges: Sequence[float], labels: Sequence | None = None) -> Column:
    """Bin a numeric column into intervals defined by ``edges``.

    Intervals are left-closed / right-open, except the last one which is
    closed on both sides.  Values outside the range and missing values map
    to missing.  ``labels`` defaults to the left edge of each interval.
    """
    edges = list(edges)
    if len(edges) < 2:
        raise FrameError("cut requires at least two bin edges")
    if sorted(edges) != edges:
        raise FrameError("bin edges must be sorted ascending")
    if labels is None:
        labels = edges[:-1]
    if len(labels) != len(edges) - 1:
        raise FrameError("number of labels must be len(edges) - 1")

    values = column.values.astype(np.float64, copy=True)
    values[column.mask] = np.nan
    indices = np.digitize(values, edges, right=False) - 1
    # Values equal to the final edge belong to the last bin.
    indices[np.isclose(values, edges[-1])] = len(labels) - 1
    out = []
    for idx, value in zip(indices, values):
        if np.isnan(value) or idx < 0 or idx >= len(labels):
            out.append(None)
        else:
            out.append(labels[int(idx)])
    return Column.from_values(out)


def ratio(numerator: Column, denominator: Column) -> Column:
    """Element-wise ratio; zero or missing denominators yield missing values."""
    num = numerator.values.astype(np.float64, copy=True)
    num[numerator.mask] = np.nan
    den = denominator.values.astype(np.float64, copy=True)
    den[denominator.mask] = np.nan
    with np.errstate(divide="ignore", invalid="ignore"):
        result = num / den
    result[np.isclose(den, 0.0) | np.isnan(den)] = np.nan
    return Column.from_numpy(result)


def clip(column: Column, low: float | None = None, high: float | None = None) -> Column:
    """Clamp numeric values to ``[low, high]``, preserving missing values."""
    values = column.values.astype(np.float64, copy=True)
    values[column.mask] = np.nan
    if low is not None:
        values = np.maximum(values, low)
    if high is not None:
        values = np.minimum(values, high)
    return Column.from_numpy(values)
