"""Lower a logical plan onto the eager frame kernels.

The executor is deliberately thin: every relational operator becomes the
corresponding eager :class:`~repro.frame.Frame` call (``filter`` /
``select`` / ``groupby`` / ``join`` / ``sort_by`` / ``head``), so a lazy
plan's output is *defined* to be what the eager chain produces — the
bit-identity contract falls out of sharing the code, not of re-proving
arithmetic.  Two places add machinery of their own:

**Out-of-core scans.**  A :class:`NpzSource` scan never loads the
artifact wholesale.  With a pushed-down predicate it streams the
predicate columns through fixed-size row chunks (building the full
selection mask at one bool per row), then gathers only the output
columns — and only for chunks that contain selected rows.  Bytes fetched
this way are counted in :data:`repro.frame.mmapio.SCAN_STATS`, which is
how the pushdown acceptance tests measure "reads less".

**Filter→groupby fusion.**  When a group-by sits directly on an
in-memory scan with a pushed-down predicate (the shape the optimizer
produces for ``frame.lazy().filter(p).groupby(k).agg(...)``), the
factorization pass runs on the *unfiltered* key columns — hitting the
``Column._codes_memo`` the frame may already carry — and the codes are
subset by the selection mask.  Equal value ⇔ equal code survives
subsetting, and the group-by's stable argsort derives group order from
first appearance, not code values, so the fused result is bit-identical
to factorizing the filtered frame from scratch (the equivalence suite
pins this).  Fusion only fires on the vector kernel; the python oracle
takes the unfused path.
"""

from __future__ import annotations

import os

import numpy as np

from ...errors import FrameError
from ..column import Column
from ..frame import Frame, concat
from ..groupby import GroupBy
from ..join import join
from ..mmapio import NpzMap, iter_chunk_bounds
from .nodes import (
    Concat,
    Filter,
    FrameSource,
    GroupByNode,
    JoinNode,
    Limit,
    NpzSource,
    PlanNode,
    Project,
    Scan,
    Sort,
)

__all__ = ["execute", "scan_chunk_rows"]

#: Default number of rows per streamed scan chunk.  At eight bytes per
#: numeric cell a chunk of a 10-column artifact is ~5 MiB resident.
_DEFAULT_CHUNK_ROWS = 65536


def scan_chunk_rows() -> int:
    """Rows per chunk for streamed ``.npz`` scans.

    ``REPRO_SCAN_CHUNK_ROWS`` overrides the default — the out-of-core
    benchmarks pin it to keep the RSS budget deterministic.
    """
    raw = os.environ.get("REPRO_SCAN_CHUNK_ROWS", "")
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_CHUNK_ROWS
    return value if value > 0 else _DEFAULT_CHUNK_ROWS


def execute(node: PlanNode, kernel: str) -> Frame:
    """Execute a plan with the given kernel engine (``vector``/``python``)."""
    if isinstance(node, Scan):
        return _execute_scan(node)
    if isinstance(node, Filter):
        frame = execute(node.child, kernel)
        return frame.filter(node.predicate.evaluate(frame))
    if isinstance(node, Project):
        return execute(node.child, kernel).select(list(node.columns))
    if isinstance(node, GroupByNode):
        return _execute_groupby(node, kernel)
    if isinstance(node, JoinNode):
        return join(
            execute(node.left, kernel),
            execute(node.right, kernel),
            on=list(node.on),
            how=node.how,
            engine=kernel,
        )
    if isinstance(node, Sort):
        return execute(node.child, kernel).sort_by(
            list(node.keys), descending=list(node.descending)
        )
    if isinstance(node, Limit):
        return execute(node.child, kernel).head(node.n)
    if isinstance(node, Concat):
        return concat([execute(child, kernel) for child in node.children])
    raise FrameError(f"unknown plan node type {type(node).__name__}")


# --------------------------------------------------------------------------- #
# Scans
# --------------------------------------------------------------------------- #
def _execute_scan(node: Scan) -> Frame:
    if isinstance(node.source, FrameSource):
        frame = node.source.frame
        if node.predicate is not None:
            frame = frame.filter(node.predicate.evaluate(frame))
        if node.columns is not None:
            frame = frame.select(list(node.columns))
        return frame
    if isinstance(node.source, NpzSource):
        return _scan_npz(node.source, node.columns, node.predicate)
    raise FrameError(f"unknown scan source type {type(node.source).__name__}")


def _execute_groupby(node: GroupByNode, kernel: str) -> Frame:
    spec = {out: agg for out, agg in node.aggs}
    child = node.child
    if (
        kernel == "vector"
        and isinstance(child, Scan)
        and isinstance(child.source, FrameSource)
        and child.predicate is not None
    ):
        # Fusion: factorize the unfiltered keys once (memo-friendly),
        # subset the codes by the selection mask.
        source = child.source.frame
        selection = np.asarray(child.predicate.evaluate(source), dtype=bool)
        codes = None
        if len(node.keys) and all(key in source for key in node.keys):
            from ..codes import group_codes

            codes = group_codes([source[key] for key in node.keys])[selection]
        frame = source.filter(selection)
        if child.columns is not None:
            frame = frame.select(list(child.columns))
        grouped = GroupBy(frame, list(node.keys), engine="vector", _codes=codes)
        return grouped.agg(spec)
    frame = execute(child, kernel)
    return frame.groupby(list(node.keys), engine=kernel).agg(spec)


# --------------------------------------------------------------------------- #
# Out-of-core .npz scan
# --------------------------------------------------------------------------- #
class _ColumnLocator:
    """Where each column of a columnar artifact lives inside the archive."""

    def __init__(self, meta):
        self.specs: dict[str, dict] = {}
        positions = {"float": 0, "int": 0, "bool": 0, "str": 0}
        for index, spec in enumerate(meta):
            kind = str(spec["kind"])
            if kind not in positions:
                raise FrameError(f"unknown column kind {kind!r} in artifact meta")
            row = positions[kind]
            positions[kind] += 1
            self.specs[str(spec["name"])] = {
                "kind": kind,
                "mask_row": index,
                "member": f"str{row}" if kind == "str" else kind,
                "member_row": 0 if kind == "str" else row,
                "padded": bool(spec.get("padded")),
            }

    def names(self) -> list[str]:
        return list(self.specs)

    def __getitem__(self, name: str) -> dict:
        try:
            return self.specs[name]
        except KeyError:
            raise FrameError(
                f"no column named {name!r}; have {list(self.specs)}"
            ) from None


def _read_chunk_column(
    npz: NpzMap, locator: _ColumnLocator, name: str, start: int, stop: int
) -> Column:
    """One column's rows ``[start, stop)`` as a fresh heap column.

    Replicates :func:`repro.session.columnar.frame_from_arrays` exactly
    (dtype coercion, padded-string sentinel strip, ``None`` under the
    mask) so that concatenated chunks equal the eagerly loaded frame.
    """
    spec = locator[name]
    mask = npz.read_rows("masks", spec["mask_row"], start, stop).astype(
        bool, copy=False
    )
    values = npz.read_rows(spec["member"], spec["member_row"], start, stop)
    if spec["kind"] == "str":
        restored = values.astype(object)
        if spec["padded"]:
            restored = np.array([cell[:-1] for cell in restored], dtype=object)
        restored[mask] = None
        return Column(restored, mask, "str")
    return Column(values, mask, spec["kind"])


def _scan_npz(source: NpzSource, columns, predicate) -> Frame:
    npz = NpzMap(source.path)
    locator = _ColumnLocator(source.meta)
    out_names = list(columns) if columns is not None else locator.names()
    for name in out_names:
        locator[name]  # validate early, matching eager select() errors
    n_rows = npz.member("masks").shape[1] if "masks" in npz else 0
    chunk_rows = scan_chunk_rows()

    if predicate is None:
        parts = {name: [] for name in out_names}
        for start, stop in iter_chunk_bounds(n_rows, chunk_rows):
            for name in out_names:
                parts[name].append(_read_chunk_column(npz, locator, name, start, stop))
        return _assemble(parts, out_names, locator)

    pred_names = sorted(predicate.columns())
    for name in pred_names:
        locator[name]
    selected: list[np.ndarray] = []
    bounds = list(iter_chunk_bounds(n_rows, chunk_rows))
    # Pass 1: stream only the predicate columns, keep one bool per row.
    for start, stop in bounds:
        chunk = Frame(
            {
                name: _read_chunk_column(npz, locator, name, start, stop)
                for name in pred_names
            }
        )
        # An artifact chunk has the declared length even when no predicate
        # column exists (empty predicate never happens: Expr always reads
        # at least one column).
        selected.append(np.asarray(predicate.evaluate(chunk), dtype=bool))
    # Pass 2: gather output columns only for chunks with survivors.
    parts = {name: [] for name in out_names}
    for (start, stop), mask in zip(bounds, selected):
        if not mask.any():
            continue
        for name in out_names:
            column = _read_chunk_column(npz, locator, name, start, stop)
            parts[name].append(column.filter(mask))
    return _assemble(parts, out_names, locator)


def _assemble(
    parts: dict[str, list[Column]], out_names: list[str], locator: "_ColumnLocator"
) -> Frame:
    columns: dict[str, Column] = {}
    for name in out_names:
        chunks = parts[name]
        if not chunks:
            # No chunk survived the predicate (or the artifact is empty):
            # an empty column of the kind the artifact meta declares.
            columns[name] = Column.empty(locator[name]["kind"])
            continue
        if len(chunks) == 1:
            columns[name] = chunks[0]
        else:
            columns[name] = Column(
                np.concatenate([chunk.values for chunk in chunks]),
                np.concatenate([chunk.mask for chunk in chunks]),
                chunks[0].kind,
            )
    return Frame(columns)
