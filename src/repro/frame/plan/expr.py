"""Predicate expressions for lazy frame plans.

An :class:`Expr` is a row-wise boolean predicate over a frame: comparisons
of a column against a scalar or another column, membership tests,
missing-value tests, and ``&``/``|``/``~`` combinations.  ``col("name")``
is the entry point::

    lf.filter((col("watts") > 40.0) & col("vendor").isin(["a", "b"]))

Evaluation delegates to the exact :class:`~repro.frame.column.Column`
operations the eager path uses (``Column._compare``, ``isin``, ``isna``),
so a lazy filter produces bit-for-bit the mask ``frame.filter(...)`` would
— the equivalence suite leans on this.  Every expression is *row-wise
pure*: its value at row ``i`` depends only on row ``i``.  The optimizer's
rewrites (merging adjacent filters, pushing filters below projections and
stable sorts, chunked evaluation during out-of-core scans) are sound
precisely because of that property; any new expression type must preserve
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from ...errors import FrameError
from ..frame import Frame

__all__ = ["Expr", "ColExpr", "col"]

_OP_SYMBOLS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


class Expr:
    """Base class for row-wise boolean predicates."""

    def columns(self) -> frozenset[str]:
        """Names of every column the predicate reads."""
        raise NotImplementedError

    def evaluate(self, frame: Frame) -> np.ndarray:
        """The boolean row mask of this predicate over ``frame``."""
        raise NotImplementedError

    def __and__(self, other: "Expr") -> "Expr":
        return And(self, _require_expr(other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, _require_expr(other))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __bool__(self) -> bool:
        raise FrameError(
            "plan expressions cannot be used in boolean context; "
            "combine predicates with & | ~ instead of and/or/not"
        )


def _require_expr(value: Any) -> "Expr":
    if not isinstance(value, Expr):
        raise FrameError(
            f"expected a plan expression, got {type(value).__name__}; "
            "build predicates from col(...)"
        )
    return value


@dataclass(frozen=True, eq=False)
class ColExpr:
    """A reference to a column, awaiting a comparison to become a predicate."""

    name: str

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Comparison(self.name, "eq", other)

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return Comparison(self.name, "ne", other)

    def __lt__(self, other: Any) -> "Expr":
        return Comparison(self.name, "lt", other)

    def __le__(self, other: Any) -> "Expr":
        return Comparison(self.name, "le", other)

    def __gt__(self, other: Any) -> "Expr":
        return Comparison(self.name, "gt", other)

    def __ge__(self, other: Any) -> "Expr":
        return Comparison(self.name, "ge", other)

    def __hash__(self) -> int:
        return hash(("ColExpr", self.name))

    def isin(self, values: Iterable[Any]) -> "Expr":
        return IsIn(self.name, tuple(values))

    def isna(self) -> "Expr":
        return IsNa(self.name, negate=False)

    def notna(self) -> "Expr":
        return IsNa(self.name, negate=True)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


def col(name: str) -> ColExpr:
    """Reference a column by name inside a lazy plan."""
    return ColExpr(str(name))


@dataclass(frozen=True, eq=False)
class Comparison(Expr):
    """``column <op> operand`` where the operand is a scalar or a column.

    Missing entries compare ``False`` on either side — the documented
    :meth:`Column._compare` semantics, shared verbatim with eager filters.
    """

    column: str
    op: str
    operand: Any

    def columns(self) -> frozenset[str]:
        names = {self.column}
        if isinstance(self.operand, ColExpr):
            names.add(self.operand.name)
        return frozenset(names)

    def evaluate(self, frame: Frame) -> np.ndarray:
        operand = self.operand
        if isinstance(operand, ColExpr):
            operand = frame[operand.name]
        return frame[self.column]._compare(operand, self.op)

    def __repr__(self) -> str:
        return f"(col({self.column!r}) {_OP_SYMBOLS[self.op]} {self.operand!r})"


@dataclass(frozen=True, eq=False)
class IsIn(Expr):
    """Membership test; missing entries are ``False``."""

    column: str
    values: tuple

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def evaluate(self, frame: Frame) -> np.ndarray:
        return frame[self.column].isin(self.values)

    def __repr__(self) -> str:
        return f"col({self.column!r}).isin({list(self.values)!r})"


@dataclass(frozen=True, eq=False)
class IsNa(Expr):
    """Missing-value test (``negate=True`` keeps the non-missing rows)."""

    column: str
    negate: bool

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def evaluate(self, frame: Frame) -> np.ndarray:
        column = frame[self.column]
        return column.notna() if self.negate else column.isna()

    def __repr__(self) -> str:
        suffix = "notna" if self.negate else "isna"
        return f"col({self.column!r}).{suffix}()"


@dataclass(frozen=True, eq=False)
class And(Expr):
    left: Expr
    right: Expr

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, frame: Frame) -> np.ndarray:
        return self.left.evaluate(frame) & self.right.evaluate(frame)

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True, eq=False)
class Or(Expr):
    left: Expr
    right: Expr

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, frame: Frame) -> np.ndarray:
        return self.left.evaluate(frame) | self.right.evaluate(frame)

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


@dataclass(frozen=True, eq=False)
class Not(Expr):
    operand: Expr

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def evaluate(self, frame: Frame) -> np.ndarray:
        return ~self.operand.evaluate(frame)

    def __repr__(self) -> str:
        return f"~{self.operand!r}"
