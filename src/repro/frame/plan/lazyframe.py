"""The user-facing lazy frame: build a plan, optimize, collect.

``Frame.lazy()`` returns a :class:`LazyFrame`; each method appends one
logical node and returns a new lazy frame (plans are immutable and
shareable, like everything else in :mod:`repro.frame`).  Nothing touches
data until :meth:`LazyFrame.collect`, which optimizes the plan
(predicate pushdown, projection pruning — :mod:`.optimizer`) and lowers
it onto the eager kernels (:mod:`.executor`).  ``engine`` selects the
kernels exactly like the eager API: ``"lazy"``/``"vector"`` run the
vector kernels (with filter→groupby fusion), ``"python"`` runs the
scalar oracle; ``None`` follows ``REPRO_FRAME_ENGINE``.

``scan_npz`` opens a persisted columnar artifact as a lazy frame without
loading it — with a filter in the plan, ``collect()`` streams the
artifact and reads only the bytes the predicate and projection require.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Sequence

from ...errors import FrameError, GroupByError
from ..codes import kernel_engine
from ..frame import Frame
from ..groupby import GroupBy
from .executor import execute
from .expr import Expr
from .nodes import (
    Concat,
    Filter,
    FrameSource,
    GroupByNode,
    JoinNode,
    Limit,
    NpzSource,
    PlanNode,
    Project,
    Scan,
    Sort,
    explain,
    output_columns,
)
from .optimizer import optimize

__all__ = ["LazyFrame", "LazyGroupBy", "lazy_frame", "scan_npz", "concat_lazy"]


class LazyFrame:
    """A deferred computation over one or more frame sources."""

    def __init__(self, node: PlanNode):
        self._node = node

    # ------------------------------------------------------------------ #
    @property
    def node(self) -> PlanNode:
        """The logical plan (immutable; shared between derived frames)."""
        return self._node

    @property
    def columns(self) -> list[str]:
        """Output column names of this plan, in order."""
        return output_columns(self._node)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LazyFrame(columns={self.columns})"

    # ------------------------------------------------------------------ #
    # Plan building
    # ------------------------------------------------------------------ #
    def filter(self, predicate: Expr) -> "LazyFrame":
        """Keep rows where ``predicate`` holds (build with ``col(...)``)."""
        if not isinstance(predicate, Expr):
            raise FrameError(
                "LazyFrame.filter takes a plan expression; build one with "
                "col('name') comparisons"
            )
        return LazyFrame(Filter(self._node, predicate))

    def select(self, names: Sequence[str]) -> "LazyFrame":
        """Project onto a subset of columns (in the given order)."""
        if isinstance(names, str):
            names = [names]
        return LazyFrame(Project(self._node, tuple(str(n) for n in names)))

    def groupby(self, keys: Sequence[str] | str) -> "LazyGroupBy":
        """Group by key columns; call ``.agg(spec)`` to finish the plan."""
        if isinstance(keys, str):
            keys = [keys]
        keys = tuple(str(k) for k in keys)
        if not keys:
            raise GroupByError("at least one grouping key is required")
        return LazyGroupBy(self._node, keys)

    def join(
        self,
        other: "LazyFrame | Frame",
        on: Sequence[str] | str,
        how: str = "inner",
    ) -> "LazyFrame":
        """Join against another lazy frame (or an eager frame)."""
        if isinstance(other, Frame):
            other = other.lazy()
        if not isinstance(other, LazyFrame):
            raise FrameError(
                f"cannot join LazyFrame with {type(other).__name__}"
            )
        if isinstance(on, str):
            on = [on]
        return LazyFrame(
            JoinNode(self._node, other._node, tuple(str(k) for k in on), how)
        )

    def sort_by(
        self,
        names: Sequence[str] | str,
        descending: bool | Sequence[bool] = False,
    ) -> "LazyFrame":
        """Stable sort by one or more columns (missing values last)."""
        if isinstance(names, str):
            names = [names]
        names = tuple(str(n) for n in names)
        if isinstance(descending, bool):
            descending = (descending,) * len(names)
        else:
            descending = tuple(bool(d) for d in descending)
        if len(descending) != len(names):
            raise FrameError("descending must match the number of sort keys")
        return LazyFrame(Sort(self._node, names, descending))

    def head(self, n: int = 5) -> "LazyFrame":
        return LazyFrame(Limit(self._node, int(n)))

    def limit(self, n: int) -> "LazyFrame":
        """Alias for :meth:`head` that reads better in query chains."""
        return self.head(n)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def collect(self, engine: str | None = None) -> Frame:
        """Optimize and execute the plan, returning an eager frame.

        The result is bit-identical to running the same chain of eager
        calls — the optimizer only applies rewrites with that property
        and the executor lowers onto the eager kernels themselves.
        """
        kernel = kernel_engine(engine)
        return execute(optimize(self._node), kernel)

    def explain(self, optimized: bool = True) -> str:
        """The plan as indented text (after optimization by default)."""
        node = optimize(self._node) if optimized else self._node
        return explain(node)


class LazyGroupBy:
    """An unfinished group-by: holds keys until ``agg`` supplies outputs."""

    def __init__(self, node: PlanNode, keys: tuple[str, ...]):
        self._node = node
        self._keys = keys

    def agg(self, spec: Mapping[str, Any]) -> LazyFrame:
        """Aggregate each group; accepts the same spec as ``GroupBy.agg``."""
        normalised = GroupBy._normalise_spec(spec)
        aggs = tuple(normalised.items())
        return LazyFrame(GroupByNode(self._node, self._keys, aggs))

    def size(self) -> LazyFrame:
        """Group sizes as a frame with the key columns plus ``count``."""
        from ..groupby import Aggregation

        return LazyFrame(
            GroupByNode(
                self._node,
                self._keys,
                (("count", Aggregation(self._keys[0], "size")),),
            )
        )


def lazy_frame(frame: Frame) -> LazyFrame:
    """Wrap an in-memory frame in a lazy plan (``Frame.lazy`` delegates here)."""
    return LazyFrame(Scan(FrameSource(frame)))


def scan_npz(
    path: str | os.PathLike,
    meta: Sequence[Mapping[str, Any]],
    label: str = "",
) -> LazyFrame:
    """Open a persisted columnar ``.npz`` artifact as a lazy frame.

    ``meta`` is the JSON-side column list stored alongside the artifact
    (name + kind per column).  Nothing is read until ``collect()``; with
    a filter in the plan the scan streams row chunks and reads only the
    predicate columns plus the matching ranges of the output columns.
    """
    source = NpzSource(str(path), tuple(dict(spec) for spec in meta), label=label)
    return LazyFrame(Scan(source))


def concat_lazy(frames: Sequence[LazyFrame]) -> LazyFrame:
    """Vertically concatenate lazy frames (shard scans, typically).

    Filters pushed onto the concatenation distribute over every input, so
    a filtered multi-shard scan streams each shard independently.
    """
    frames = list(frames)
    if not frames:
        return lazy_frame(Frame())
    if len(frames) == 1:
        return frames[0]
    return LazyFrame(Concat(tuple(frame.node for frame in frames)))
