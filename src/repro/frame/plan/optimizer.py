"""Logical plan rewrites: predicate pushdown + projection pruning.

Every rewrite here preserves the plan's output *bit for bit* — the
Hypothesis plan suite holds ``collect()`` to identity with the eager
pipeline it mirrors, so each rule must argue its soundness:

**Filter merging** — ``Filter(Filter(c, p), q) → Filter(c, p & q)``.
Predicates are row-wise pure (see :mod:`.expr`), so evaluating ``q`` on
the unfiltered rows and intersecting masks selects exactly the rows that
survive both sequential filters, in the same order.

**Filter below Project** — only when the predicate reads a subset of the
projected columns.  A predicate that reads a column the projection drops
must *keep* failing at collect time exactly as the eager chain would, so
it is left in place.

**Filter below Sort** — sorts are stable and predicates row-wise, so
filter-then-stable-sort equals stable-sort-then-filter (a stable sort of
a subsequence is the subsequence of the stable sort).

**Filter over Concat** — a row-wise predicate distributes to each input,
but only when every input provably produces the *same schema* (names and
kinds, via :func:`.nodes.output_schema`): eager ``concat`` re-infers a
column's kind when its inputs disagree, and filtering before the union
changes which values feed that inference.  Campaign shard scans — the
case pushdown exists for — share one schema by construction.

**Filter into Scan** — the scan applies the predicate while loading.
For ``.npz`` sources this is the payoff: the executor reads only the
predicate columns on the first pass and only the matching row ranges of
the remaining columns on the second, which is what the instrumented
byte counters measure.

Filters never move below :class:`Limit` (``head`` then filter selects
different rows than filter then ``head``) or below :class:`GroupByNode`
(a post-aggregation filter reads aggregate columns).

**Projection pruning** — a top-down pass narrows each :class:`Scan` to
the columns the plan above it actually consumes.  ``needed=None`` means
"everything" and is the state at the root, so plans whose output schema
is the scan schema are never narrowed; :class:`Project` and
:class:`GroupByNode` reset the needed set.  :class:`JoinNode` is a
pruning barrier: the eager join's ``_right`` suffix rule depends on
which *left* columns exist, so narrowing a join input could rename join
outputs.
"""

from __future__ import annotations

from ...errors import FrameError
from .expr import And
from .nodes import (
    Concat,
    Filter,
    GroupByNode,
    JoinNode,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    output_schema,
)

__all__ = ["optimize", "push_filters", "prune_projections"]


def optimize(node: PlanNode) -> PlanNode:
    """Apply all rewrites; the result collects bit-identically."""
    return prune_projections(push_filters(node), needed=None)


# --------------------------------------------------------------------------- #
# Predicate pushdown
# --------------------------------------------------------------------------- #
def push_filters(node: PlanNode) -> PlanNode:
    """Push every filter as close to its scan as soundness allows."""
    node = _rebuild(node, push_filters)
    if not isinstance(node, Filter):
        return node
    child = node.child
    predicate = node.predicate
    if isinstance(child, Filter):
        # Sequential filters intersect; keep application order in the And.
        return push_filters(Filter(child.child, And(child.predicate, predicate)))
    if isinstance(child, Project) and predicate.columns() <= set(child.columns):
        return Project(
            push_filters(Filter(child.child, predicate)), child.columns
        )
    if isinstance(child, Sort):
        return Sort(
            push_filters(Filter(child.child, predicate)),
            child.keys,
            child.descending,
        )
    if isinstance(child, Concat):
        # Sound only when every input provably shares one schema (names
        # AND kinds): eager concat re-infers a column's kind when its
        # inputs disagree, and filtering first changes which values feed
        # that inference.  Campaign shards (one spec ⇒ one schema) always
        # qualify; heterogeneous unions keep the filter above.
        schemas = [output_schema(grandchild) for grandchild in child.children]
        if schemas and schemas[0] is not None and all(
            schema == schemas[0] for schema in schemas
        ):
            return Concat(
                tuple(
                    push_filters(Filter(grandchild, predicate))
                    for grandchild in child.children
                )
            )
        return node
    if isinstance(child, Scan):
        available = set(child.source.column_names())
        if predicate.columns() <= available:
            merged = (
                predicate
                if child.predicate is None
                else And(child.predicate, predicate)
            )
            return Scan(child.source, child.columns, merged)
    return node


# --------------------------------------------------------------------------- #
# Projection pruning
# --------------------------------------------------------------------------- #
def prune_projections(node: PlanNode, needed: frozenset[str] | None) -> PlanNode:
    """Narrow scans to the columns consumed above them.

    ``needed=None`` means the full output is required (root state); a
    :class:`Project` or :class:`GroupByNode` resets it to exactly what
    that node reads.
    """
    if isinstance(node, Scan):
        if needed is None or node.columns is not None:
            return node
        keep = tuple(
            name for name in node.source.column_names() if name in needed
        )
        return Scan(node.source, keep, node.predicate)
    if isinstance(node, Filter):
        child_needed = (
            None if needed is None else frozenset(needed | node.predicate.columns())
        )
        return Filter(prune_projections(node.child, child_needed), node.predicate)
    if isinstance(node, Project):
        return Project(
            prune_projections(node.child, frozenset(node.columns)), node.columns
        )
    if isinstance(node, GroupByNode):
        reads = set(node.keys)
        for _, agg in node.aggs:
            reads.add(agg.source)
        return GroupByNode(
            prune_projections(node.child, frozenset(reads)), node.keys, node.aggs
        )
    if isinstance(node, JoinNode):
        # Pruning barrier: the ``_right`` suffix rule keys off which left
        # columns exist, so narrowing an input could rename join outputs.
        return JoinNode(
            prune_projections(node.left, None),
            prune_projections(node.right, None),
            node.on,
            node.how,
        )
    if isinstance(node, Sort):
        child_needed = None if needed is None else frozenset(needed | set(node.keys))
        return Sort(
            prune_projections(node.child, child_needed), node.keys, node.descending
        )
    if isinstance(node, Limit):
        return Limit(prune_projections(node.child, needed), node.n)
    if isinstance(node, Concat):
        return Concat(
            tuple(prune_projections(child, needed) for child in node.children)
        )
    raise FrameError(f"unknown plan node type {type(node).__name__}")


# --------------------------------------------------------------------------- #
def _rebuild(node: PlanNode, visit) -> PlanNode:
    """Rebuild ``node`` with ``visit`` applied to each child."""
    if isinstance(node, Scan):
        return node
    if isinstance(node, Filter):
        return Filter(visit(node.child), node.predicate)
    if isinstance(node, Project):
        return Project(visit(node.child), node.columns)
    if isinstance(node, GroupByNode):
        return GroupByNode(visit(node.child), node.keys, node.aggs)
    if isinstance(node, JoinNode):
        return JoinNode(visit(node.left), visit(node.right), node.on, node.how)
    if isinstance(node, Sort):
        return Sort(visit(node.child), node.keys, node.descending)
    if isinstance(node, Limit):
        return Limit(visit(node.child), node.n)
    if isinstance(node, Concat):
        return Concat(tuple(visit(child) for child in node.children))
    raise FrameError(f"unknown plan node type {type(node).__name__}")
