"""Lazy query plans over :mod:`repro.frame` — the v3 frame engine tier.

``Frame.lazy()`` (or :func:`scan_npz` over a persisted columnar artifact)
builds a logical plan instead of computing; ``collect()`` optimizes the
plan — predicate pushdown into artifact loading, projection pruning,
filter→groupby fusion reusing memoized key codes — and lowers it onto
the same eager kernels the direct API uses, so lazy results are
bit-identical to their eager equivalents on every engine.

See :mod:`.expr` (predicates), :mod:`.nodes` (the plan algebra),
:mod:`.optimizer` (rewrites + soundness arguments) and :mod:`.executor`
(lowering + the out-of-core streamed scan).
"""

from .expr import ColExpr, Expr, col
from .lazyframe import LazyFrame, LazyGroupBy, concat_lazy, lazy_frame, scan_npz
from .nodes import (
    Concat,
    Filter,
    FrameSource,
    GroupByNode,
    JoinNode,
    Limit,
    NpzSource,
    PlanNode,
    Project,
    Scan,
    Sort,
    output_columns,
)
from .optimizer import optimize, prune_projections, push_filters

__all__ = [
    "ColExpr",
    "Concat",
    "Expr",
    "Filter",
    "FrameSource",
    "GroupByNode",
    "JoinNode",
    "LazyFrame",
    "LazyGroupBy",
    "Limit",
    "NpzSource",
    "PlanNode",
    "Project",
    "Scan",
    "Sort",
    "col",
    "concat_lazy",
    "lazy_frame",
    "optimize",
    "output_columns",
    "prune_projections",
    "push_filters",
    "scan_npz",
]
