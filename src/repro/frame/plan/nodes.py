"""Logical plan nodes for lazy frames.

A plan is a small immutable tree: a :class:`Scan` leaf naming where rows
come from (an in-memory frame, or a persisted columnar ``.npz`` artifact)
under zero or more relational operators (:class:`Filter`,
:class:`Project`, :class:`GroupByNode`, :class:`JoinNode`, :class:`Sort`,
:class:`Limit`, :class:`Concat`).  Nodes carry *what* to compute, never
*how* — the optimizer rewrites the tree (:mod:`.optimizer`) and the
executor lowers it onto the eager frame kernels (:mod:`.executor`).

``output_columns`` computes each node's output schema by name.  The join
schema intentionally reuses the eager join's collision rule (right-hand
value columns that clash with a *left* column gain a ``_right`` suffix) so
a plan's schema always matches what ``collect()`` produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ...errors import FrameError
from ..frame import Frame
from ..groupby import Aggregation
from .expr import Expr

__all__ = [
    "Concat",
    "Filter",
    "FrameSource",
    "GroupByNode",
    "JoinNode",
    "Limit",
    "NpzSource",
    "PlanNode",
    "Project",
    "Scan",
    "Sort",
    "join_output_columns",
    "output_columns",
    "output_schema",
]


# --------------------------------------------------------------------------- #
# Scan sources
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class FrameSource:
    """Rows come from an in-memory frame (the ``Frame.lazy()`` entry point)."""

    frame: Frame

    def column_names(self) -> list[str]:
        return self.frame.columns

    def column_kinds(self) -> dict[str, str]:
        return {name: self.frame[name].kind for name in self.frame.columns}

    def describe(self) -> str:
        return f"frame[{len(self.frame)} rows x {len(self.frame.columns)} cols]"


@dataclass(frozen=True, eq=False)
class NpzSource:
    """Rows come from a persisted columnar ``.npz`` artifact.

    ``meta`` is the JSON-side column list the artifact was written with
    (:func:`repro.session.columnar.frame_to_arrays`); it fully determines
    the member layout, so a scan touches only the bytes it needs.
    ``label`` is a human-readable tag for ``explain()`` output (a shard
    index, a dataset key prefix).
    """

    path: str
    meta: tuple[Mapping[str, Any], ...]
    label: str = ""

    def column_names(self) -> list[str]:
        return [str(spec["name"]) for spec in self.meta]

    def column_kinds(self) -> dict[str, str]:
        return {str(spec["name"]): str(spec["kind"]) for spec in self.meta}

    def describe(self) -> str:
        tag = self.label or self.path
        return f"npz[{tag}, {len(self.meta)} cols]"


# --------------------------------------------------------------------------- #
# Plan nodes
# --------------------------------------------------------------------------- #
class PlanNode:
    """Base class for logical plan nodes (immutable by convention)."""


@dataclass(frozen=True, eq=False)
class Scan(PlanNode):
    """Load rows from a source.

    ``columns`` restricts the *output* schema (``None`` means all, in
    source order); ``predicate`` filters rows during the load.  Both are
    written by the optimizer — predicate columns need not appear in
    ``columns``, the executor reads them for evaluation only.
    """

    source: FrameSource | NpzSource
    columns: tuple[str, ...] | None = None
    predicate: Expr | None = None


@dataclass(frozen=True, eq=False)
class Filter(PlanNode):
    child: PlanNode
    predicate: Expr


@dataclass(frozen=True, eq=False)
class Project(PlanNode):
    child: PlanNode
    columns: tuple[str, ...]


@dataclass(frozen=True, eq=False)
class GroupByNode(PlanNode):
    """Group by ``keys`` and aggregate; ``aggs`` maps output name → spec."""

    child: PlanNode
    keys: tuple[str, ...]
    aggs: tuple[tuple[str, Aggregation], ...]


@dataclass(frozen=True, eq=False)
class JoinNode(PlanNode):
    left: PlanNode
    right: PlanNode
    on: tuple[str, ...]
    how: str = "inner"


@dataclass(frozen=True, eq=False)
class Sort(PlanNode):
    child: PlanNode
    keys: tuple[str, ...]
    descending: tuple[bool, ...]


@dataclass(frozen=True, eq=False)
class Limit(PlanNode):
    child: PlanNode
    n: int


@dataclass(frozen=True, eq=False)
class Concat(PlanNode):
    """Vertical concatenation of children, in order (shard scans)."""

    children: tuple[PlanNode, ...]


# --------------------------------------------------------------------------- #
# Schema computation
# --------------------------------------------------------------------------- #
def join_output_columns(
    left_columns: Sequence[str], right_columns: Sequence[str], on: Sequence[str]
) -> list[str]:
    """Output schema of a join, mirroring the eager ``_output_layout`` rule."""
    left_columns = list(left_columns)
    right_value = [name for name in right_columns if name not in on]
    renamed = [
        f"{name}_right" if name in left_columns else name for name in right_value
    ]
    return left_columns + renamed


def output_columns(node: PlanNode) -> list[str]:
    """The output column names of ``node``, in order."""
    if isinstance(node, Scan):
        names = node.source.column_names()
        if node.columns is not None:
            names = [name for name in node.columns]
        return names
    if isinstance(node, (Filter, Sort, Limit)):
        return output_columns(node.child)
    if isinstance(node, Project):
        return list(node.columns)
    if isinstance(node, GroupByNode):
        return list(node.keys) + [out for out, _ in node.aggs]
    if isinstance(node, JoinNode):
        return join_output_columns(
            output_columns(node.left), output_columns(node.right), node.on
        )
    if isinstance(node, Concat):
        names: dict[str, None] = {}
        for child in node.children:
            for name in output_columns(child):
                names.setdefault(name, None)
        return list(names)
    raise FrameError(f"unknown plan node type {type(node).__name__}")


def output_schema(node: PlanNode) -> dict[str, str] | None:
    """``name → kind`` of ``node``'s output when statically known.

    Sources declare their kinds (a frame carries them, artifact meta
    records them); filters, sorts and limits pass them through; a
    projection narrows them.  Aggregations, joins and concatenations can
    *change* kinds (eager ``concat`` re-infers a column's kind when its
    inputs disagree), so they return ``None`` — the optimizer only
    applies schema-sensitive rewrites where the schema is provable.
    """
    if isinstance(node, Scan):
        kinds = node.source.column_kinds()
        names = node.columns if node.columns is not None else kinds
        return {name: kinds[name] for name in names if name in kinds}
    if isinstance(node, (Filter, Sort, Limit)):
        return output_schema(node.child)
    if isinstance(node, Project):
        child = output_schema(node.child)
        if child is None or any(name not in child for name in node.columns):
            return None
        return {name: child[name] for name in node.columns}
    return None


def explain(node: PlanNode, indent: int = 0) -> str:
    """Render a plan tree as indented text (one node per line)."""
    pad = "  " * indent
    if isinstance(node, Scan):
        parts = [node.source.describe()]
        if node.columns is not None:
            parts.append(f"columns={list(node.columns)}")
        if node.predicate is not None:
            parts.append(f"pushdown={node.predicate!r}")
        return f"{pad}Scan[{', '.join(parts)}]"
    if isinstance(node, Filter):
        return f"{pad}Filter[{node.predicate!r}]\n" + explain(node.child, indent + 1)
    if isinstance(node, Project):
        return f"{pad}Project[{list(node.columns)}]\n" + explain(node.child, indent + 1)
    if isinstance(node, GroupByNode):
        aggs = {out: (agg.source, agg.func) for out, agg in node.aggs}
        fused = ""
        if (
            isinstance(node.child, Scan)
            and node.child.predicate is not None
            and isinstance(node.child.source, FrameSource)
        ):
            fused = ", fused=filter->groupby"
        return f"{pad}GroupBy[keys={list(node.keys)}, aggs={aggs}{fused}]\n" + explain(
            node.child, indent + 1
        )
    if isinstance(node, JoinNode):
        return (
            f"{pad}Join[on={list(node.on)}, how={node.how}]\n"
            + explain(node.left, indent + 1)
            + "\n"
            + explain(node.right, indent + 1)
        )
    if isinstance(node, Sort):
        return f"{pad}Sort[keys={list(node.keys)}, descending={list(node.descending)}]\n" + explain(
            node.child, indent + 1
        )
    if isinstance(node, Limit):
        return f"{pad}Limit[{node.n}]\n" + explain(node.child, indent + 1)
    if isinstance(node, Concat):
        rendered = "\n".join(explain(child, indent + 1) for child in node.children)
        return f"{pad}Concat[{len(node.children)} inputs]\n" + rendered
    raise FrameError(f"unknown plan node type {type(node).__name__}")
