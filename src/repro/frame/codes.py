"""Vectorized key factorization shared by :mod:`groupby` and :mod:`join`.

Both group-by and hash joins reduce to the same primitive: turn one or more
key columns into dense integer codes such that two rows carry the same code
exactly when their keys are equal.  Once keys are integers, grouping is an
``argsort`` plus segment boundaries and joining is a ``searchsorted`` — no
per-row Python dispatch, no tuple hashing.

Missing keys
------------
A key entry is *missing* when it is masked **or** (for float columns) is
``NaN``.  The two kernels agree on one explicit policy:

* **group-by** segregates missing keys: all rows whose key component is
  missing land in one null bucket per key column (so ``(None,)`` is a single
  group, and ``("a", None)`` is distinct from ``("a", "b")``);
* **joins** follow SQL semantics: a missing key never matches anything, not
  even another missing key.  Such rows surface as unmatched (kept and
  null-filled by ``left``/``outer`` joins, dropped by ``inner``).

The ``python`` reference engine implements the same policy with per-row
loops; the Hypothesis equivalence suite drives random frames through both
engines and requires identical output (values, masks, row order).
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import FrameError

__all__ = [
    "ENGINES",
    "default_engine",
    "resolve_engine",
    "kernel_engine",
    "key_missing_mask",
    "group_codes",
    "join_codes",
]

ENGINES = ("vector", "python", "lazy")

#: Largest combined-code space the arithmetic key combiner may address before
#: falling back to row-wise ``np.unique(axis=0)`` (keeps int64 overflow-free).
_MAX_COMBINED = 2**62


def default_engine() -> str:
    """The frame kernel engine used when none is requested explicitly.

    ``REPRO_FRAME_ENGINE=python`` switches the whole process to the scalar
    reference path (useful to bisect a suspected kernel bug in the field);
    ``REPRO_FRAME_ENGINE=lazy`` routes eager calls through the vector
    kernels while :meth:`LazyFrame.collect` additionally runs the plan
    optimizer (pushdown, pruning, filter→groupby fusion).
    """
    return os.environ.get("REPRO_FRAME_ENGINE", "vector")


def resolve_engine(engine: str | None) -> str:
    resolved = default_engine() if engine is None else engine
    if resolved not in ENGINES:
        raise FrameError(
            f"unknown frame engine {resolved!r}; expected one of {ENGINES}"
        )
    return resolved


def kernel_engine(engine: str | None) -> str:
    """The *kernel* an engine name lowers to: ``"vector"`` or ``"python"``.

    ``"lazy"`` is a planning tier, not a third kernel — its plans execute
    on the vector kernels (with extra plan-level rewrites), so group-by
    and join normalize through this helper before dispatching.
    """
    resolved = resolve_engine(engine)
    return "vector" if resolved == "lazy" else resolved


def key_missing_mask(column) -> np.ndarray:
    """True where a grouping/join key is missing (masked, or NaN for floats)."""
    mask = column.mask
    if column.kind == "float":
        with np.errstate(invalid="ignore"):
            mask = mask | np.isnan(column.values)
    return mask


def _unique_codes(values: np.ndarray, kind: str) -> tuple[np.ndarray, int]:
    """Codes (equal value ⇔ equal code) and distinct count for non-missing values.

    String columns factorize through one dict pass (first-appearance code
    order): exact Python equality, unlike a cast to NumPy fixed-width
    unicode, which strips trailing NUL codepoints and would silently merge
    keys differing only in trailing ``"\\x00"``.  Codes carry no ordering
    guarantee either way (see :func:`group_codes`).
    """
    if kind == "str":
        table: dict = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            codes[i] = table.setdefault(value, len(table))
        return codes, len(table)
    uniques, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64, copy=False), len(uniques)


def _combine_codes(per_column: list[np.ndarray], caps: list[int]) -> np.ndarray:
    """Fold per-column codes (each in ``[0, cap)``) into one code per row."""
    space = 1
    for cap in caps:
        space *= max(cap, 1)
    if space <= _MAX_COMBINED:
        combined = per_column[0].astype(np.int64, copy=True)
        for codes, cap in zip(per_column[1:], caps[1:]):
            combined *= cap
            combined += codes
        return combined
    # Key space too large for arithmetic packing: compare rows directly.
    stacked = np.stack(per_column, axis=1)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    return inverse.astype(np.int64, copy=False)


def _column_codes(column) -> tuple[np.ndarray, int]:
    """Factorize one key column: ``(codes, cap)`` with 0 as the null bucket.

    Memoized on the column (columns are value-immutable, see
    :class:`~repro.frame.column.Column`): grouping the same frame by the
    same keys repeatedly — the normal shape of an analysis pipeline — pays
    the ``np.unique`` factorization once.  The returned array is shared and
    must not be written to (:func:`_combine_codes` copies before mutating).
    """
    memo = column._codes_memo
    if memo is not None:
        return memo
    missing = key_missing_mask(column)
    codes = np.zeros(len(column), dtype=np.int64)  # 0 = null bucket
    valid = np.flatnonzero(~missing)
    n_unique = 0
    if len(valid) > 0:
        inverse, n_unique = _unique_codes(column.values[valid], column.kind)
        codes[valid] = inverse + 1
    memo = (codes, n_unique + 1)
    column._codes_memo = memo
    return memo


def group_codes(columns) -> np.ndarray:
    """One int64 row code per row such that equal keys share a code.

    Missing entries participate as a per-column null bucket, so the codes
    partition rows exactly as the scalar tuple-key path does.  Codes carry
    **no ordering guarantee** — callers that need first-appearance group
    order derive it from a stable argsort of the codes (one sort yields the
    segments, the per-group first rows and the appearance order at once).
    """
    per_column: list[np.ndarray] = []
    caps: list[int] = []
    for column in columns:
        codes, cap = _column_codes(column)
        per_column.append(codes)
        caps.append(cap)
    n = len(per_column[0])
    if n == 0:
        return np.empty(0, dtype=np.int64)
    return _combine_codes(per_column, caps)


def join_codes(left_columns, right_columns) -> tuple[np.ndarray, np.ndarray] | None:
    """Comparable row codes for the key columns of two frames.

    Returns ``(left_codes, right_codes)`` where equal codes mean equal keys
    and ``-1`` marks a row with at least one missing key component (which
    must never match).  Returns ``None`` when a key column pair mixes kinds
    (e.g. ``int`` vs ``str``): cross-kind equality follows Python semantics
    the NumPy encoding cannot reproduce, so the caller falls back to the
    ``python`` engine.
    """
    n_left = len(left_columns[0]) if left_columns else 0
    per_column: list[np.ndarray] = []
    caps: list[int] = []
    any_missing = None
    for left_col, right_col in zip(left_columns, right_columns):
        if left_col.kind != right_col.kind:
            return None
        l_miss = key_missing_mask(left_col)
        r_miss = key_missing_mask(right_col)
        missing = np.concatenate([l_miss, r_miss])
        codes = np.full(len(missing), -1, dtype=np.int64)
        valid = np.flatnonzero(~missing)
        n_unique = 0
        if len(valid) > 0:
            if left_col.kind == "str":
                values = np.concatenate([
                    np.asarray(left_col.values, dtype=object),
                    np.asarray(right_col.values, dtype=object),
                ])[valid]
            else:
                values = np.concatenate(
                    [left_col.values, right_col.values]
                )[valid]
            inverse, n_unique = _unique_codes(values, left_col.kind)
            codes[valid] = inverse
        per_column.append(codes)
        caps.append(max(n_unique, 1))
        any_missing = missing if any_missing is None else (any_missing | missing)
    combined = _combine_codes(per_column, caps)
    combined[any_missing] = -1
    return combined[:n_left], combined[n_left:]
