"""CSV reading and writing for :class:`repro.frame.Frame`.

The paper's artifact stores both the raw parsed dataset and intermediate
processed tables as CSV; we mirror that with a small, dependency-free
implementation on top of :mod:`csv`.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Sequence

from ..errors import CSVError
from .column import Column
from .frame import Frame

__all__ = ["read_csv", "write_csv", "frame_to_csv_text", "frame_from_csv_text"]

_MISSING_TOKENS = {"", "NA", "N/A", "NaN", "nan", "None", "NULL", "NC"}
_TRUE_TOKENS = {"true", "True", "TRUE"}
_FALSE_TOKENS = {"false", "False", "FALSE"}


def _convert_column(raw: Sequence[str]) -> Column:
    """Infer a column type from CSV string cells and build a Column."""
    values: list = []
    all_int = True
    all_float = True
    all_bool = True
    for cell in raw:
        token = cell.strip()
        if token in _MISSING_TOKENS:
            values.append(None)
            continue
        if token in _TRUE_TOKENS or token in _FALSE_TOKENS:
            values.append(token in _TRUE_TOKENS)
            all_int = all_float = False
            continue
        all_bool = False
        try:
            as_float = float(token)
        except ValueError:
            return Column.from_values(
                [None if c.strip() in _MISSING_TOKENS else c for c in raw], kind="str"
            )
        values.append(as_float)
        if not as_float.is_integer() or "." in token or "e" in token.lower():
            all_int = False
    if all_bool and any(v is not None for v in values):
        return Column.from_values(values, kind="bool")
    if all_int and any(v is not None for v in values):
        return Column.from_values(
            [None if v is None else int(v) for v in values], kind="int"
        )
    if all_float:
        return Column.from_values(values, kind="float")
    return Column.from_values([None if not c.strip() else c for c in raw], kind="str")


def frame_from_csv_text(text: str) -> Frame:
    """Parse CSV text into a frame with automatic type inference."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return Frame()
    header = [name.strip() for name in rows[0]]
    if len(set(header)) != len(header):
        raise CSVError(f"duplicate column names in CSV header: {header}")
    body = rows[1:]
    columns = {}
    for index, name in enumerate(header):
        cells = [row[index] if index < len(row) else "" for row in body]
        columns[name] = _convert_column(cells)
    return Frame(columns)


def read_csv(path: str | os.PathLike) -> Frame:
    """Read a CSV file into a :class:`Frame`."""
    try:
        with open(path, "r", encoding="utf-8", newline="") as handle:
            return frame_from_csv_text(handle.read())
    except OSError as exc:
        raise CSVError(f"cannot read CSV file {path}: {exc}") from exc


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return ""
        return repr(value)
    return str(value)


def frame_to_csv_text(frame: Frame) -> str:
    """Serialise a frame to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(frame.columns)
    columns = [frame[name] for name in frame.columns]
    for i in range(len(frame)):
        writer.writerow([_format_cell(column[i]) for column in columns])
    return buffer.getvalue()


def write_csv(frame: Frame, path: str | os.PathLike) -> None:
    """Write a frame to a CSV file, creating parent directories as needed."""
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(frame_to_csv_text(frame))
