"""Directory-level corpus parsing.

``parse_directory`` walks a directory of ``.txt`` reports, parses each file,
validates it and splits the corpus into accepted records and rejected files
(with per-reason counts), reproducing the paper's "1017 downloaded → 960
parsed" funnel.  Parsing is a pure per-file function, so it can run on a
process pool.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..errors import ParseError
from ..frame import Frame
from ..parallel import ParallelConfig, parallel_map
from .fields import RunRecord
from .resultfile import parse_result_file
from .validation import validate_run

__all__ = ["CorpusParseReport", "parse_directory", "records_to_frame"]


@dataclass(frozen=True)
class RejectedFile:
    """A file removed before analysis and the reason it was removed."""

    file_name: str
    reason: str


@dataclass(frozen=True)
class CorpusParseReport:
    """Outcome of parsing a result-file directory."""

    records: tuple[RunRecord, ...]
    rejected: tuple[RejectedFile, ...]
    directory: str

    @property
    def total_files(self) -> int:
        return len(self.records) + len(self.rejected)

    @property
    def parsed_count(self) -> int:
        return len(self.records)

    def rejection_counts(self) -> dict[str, int]:
        """Number of rejected files per reason (the Section II table)."""
        counts: dict[str, int] = {}
        for rejected in self.rejected:
            counts[rejected.reason] = counts.get(rejected.reason, 0) + 1
        return counts

    def to_frame(self) -> Frame:
        """The accepted records as an analysis frame."""
        return records_to_frame(self.records)

    def describe(self) -> str:
        reasons = ", ".join(
            f"{reason}: {count}" for reason, count in sorted(self.rejection_counts().items())
        )
        return (
            f"{self.total_files} files in {self.directory}: {self.parsed_count} parsed, "
            f"{len(self.rejected)} rejected ({reasons or 'none'})"
        )


def _parse_one(path: str) -> tuple[str, RunRecord | None, str | None]:
    """Worker: parse + validate one file; returns (file, record, rejection)."""
    name = os.path.basename(path)
    try:
        parsed = parse_result_file(path)
    except ParseError as exc:
        return name, None, f"parse_error: {exc}"
    report = validate_run(parsed.record)
    if not report.is_valid:
        return name, None, str(report.primary_issue)
    return name, parsed.record, None


def parse_directory(
    directory: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    pattern: str = "*.txt",
) -> CorpusParseReport:
    """Parse every report in ``directory`` and validate it."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ParseError(f"not a directory: {directory}")
    paths = sorted(str(p) for p in directory.glob(pattern))
    outcomes = parallel_map(_parse_one, paths, config=parallel or ParallelConfig(backend="serial"))
    records: list[RunRecord] = []
    rejected: list[RejectedFile] = []
    for name, record, reason in outcomes:
        if record is not None:
            records.append(record)
        else:
            rejected.append(RejectedFile(name, reason or "unknown"))
    return CorpusParseReport(
        records=tuple(records), rejected=tuple(rejected), directory=str(directory)
    )


def records_to_frame(records: Iterable[RunRecord]) -> Frame:
    """Build the flat analysis frame from parsed records."""
    rows = [record.to_dict() for record in records]
    return Frame.from_records(rows)
