"""Parsing of SPEC-style result report files.

This mirrors the parsing stage of the paper's artifact: plain-text result
files are turned into flat records (one per run) with hardware/software
configuration, the per-load-level measurements and the overall score.

* :mod:`repro.parser.fields` — canonical record field names and helpers,
* :mod:`repro.parser.resultfile` — the text parser,
* :mod:`repro.parser.cpuinfo` — CPU-name classification (vendor, family,
  server vs desktop vs non-x86),
* :mod:`repro.parser.validation` — the paper's Section II consistency
  checks,
* :mod:`repro.parser.corpus` — directory-level parsing with parallelism and
  a rejection report.
"""

from .fields import LOAD_LEVELS, RunRecord, level_field
from .resultfile import parse_result_text, parse_result_file, ParsedRun
from .cpuinfo import CPUInfo, classify_cpu
from .validation import ValidationIssue, ValidationReport, validate_run
from .corpus import CorpusParseReport, parse_directory, records_to_frame

__all__ = [
    "LOAD_LEVELS",
    "RunRecord",
    "level_field",
    "parse_result_text",
    "parse_result_file",
    "ParsedRun",
    "CPUInfo",
    "classify_cpu",
    "ValidationIssue",
    "ValidationReport",
    "validate_run",
    "CorpusParseReport",
    "parse_directory",
    "records_to_frame",
]
