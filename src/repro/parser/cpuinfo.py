"""CPU-name classification.

The paper's filters hinge on three questions answered from the free-text
"CPU Name" field of each report:

1. which silicon vendor made the part (Intel, AMD, or someone else),
2. whether it is a server/workstation part (Xeon, Opteron, EPYC) or a
   desktop part,
3. whether the name is specific enough to identify the model at all
   (submissions with just "Intel Processor" are dropped as ambiguous).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["CPUInfo", "classify_cpu"]

_SERVER_FAMILIES = {
    "xeon": "Xeon",
    "opteron": "Opteron",
    "epyc": "EPYC",
}

_DESKTOP_MARKERS = (
    "core i3", "core i5", "core i7", "core i9", "core 2", "pentium", "celeron",
    "athlon", "phenom", "ryzen", "sempron", "a10-", "a8-", "fx-",
)

_NON_X86_VENDORS = {
    "power": "IBM",
    "sparc": "Oracle",
    "thunderx": "Cavium",
    "altra": "Ampere",
    "graviton": "Amazon",
    "kunpeng": "Huawei",
    "itanium": "Intel",  # IA-64: not x86 despite the vendor
}

#: A model token is a word containing at least one digit (e.g. "8490H",
#: "E5-2660", "9754"); its absence marks the CPU name as ambiguous.
_MODEL_TOKEN_RE = re.compile(r"[A-Za-z]*\d[\w+\-.]*")


@dataclass(frozen=True)
class CPUInfo:
    """Classification of one CPU name string."""

    raw: str
    vendor: str  # "Intel", "AMD" or another silicon vendor
    family: str  # "Xeon", "Opteron", "EPYC", "Desktop", "NonX86", "Unknown"
    cpu_class: str  # "server", "desktop", "non_x86", "unknown"
    model_token: str | None  # e.g. "8490H", None when ambiguous
    is_ambiguous: bool

    @property
    def is_x86_server(self) -> bool:
        return self.cpu_class == "server" and self.vendor in ("Intel", "AMD")


def classify_cpu(name: str | None) -> CPUInfo:
    """Classify a free-text CPU name."""
    raw = (name or "").strip()
    lowered = raw.lower()
    if not raw:
        return CPUInfo(raw, "Unknown", "Unknown", "unknown", None, True)

    # Vendor ----------------------------------------------------------------
    if lowered.startswith("intel") or " intel " in f" {lowered} ":
        vendor = "Intel"
    elif lowered.startswith("amd") or " amd " in f" {lowered} ":
        vendor = "AMD"
    else:
        vendor = "Other"
    non_x86 = None
    for marker, silicon_vendor in _NON_X86_VENDORS.items():
        if marker in lowered:
            non_x86 = silicon_vendor
            break
    if non_x86 is not None and "xeon" not in lowered:
        vendor = non_x86 if vendor == "Other" else vendor

    # Family / class ----------------------------------------------------------
    family = "Unknown"
    cpu_class = "unknown"
    for marker, family_name in _SERVER_FAMILIES.items():
        if marker in lowered:
            family = family_name
            cpu_class = "server"
            break
    if cpu_class == "unknown":
        if non_x86 is not None:
            family, cpu_class = "NonX86", "non_x86"
        elif any(marker in lowered for marker in _DESKTOP_MARKERS):
            family, cpu_class = "Desktop", "desktop"
        elif vendor in ("Intel", "AMD"):
            family, cpu_class = "Unknown", "unknown"
        else:
            family, cpu_class = "NonX86", "non_x86"

    # Model token / ambiguity ------------------------------------------------
    tokens = _MODEL_TOKEN_RE.findall(raw)
    # Frequency-looking tokens ("2.25GHz") and register widths do not identify
    # a model.
    model_tokens = [
        token for token in tokens
        if not token.lower().endswith("ghz") and not token.lower().endswith("mhz")
    ]
    model_token = model_tokens[-1] if model_tokens else None
    is_ambiguous = model_token is None
    if cpu_class == "unknown" and vendor in ("Intel", "AMD") and is_ambiguous:
        # "Intel Processor" / "AMD Processor": vendor known, nothing else.
        family = "Unknown"
    return CPUInfo(raw, vendor, family, cpu_class, model_token, is_ambiguous)
