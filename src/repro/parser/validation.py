"""Consistency checks on parsed runs (the paper's Section II filters).

The paper removes 57 of 1017 downloaded results before analysis.  The same
checks are implemented here; each produces a :class:`ValidationIssue` so the
dataset funnel can be reported with per-reason counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .fields import RunRecord

__all__ = ["ValidationIssue", "ValidationReport", "validate_run"]

#: Hardware availability dates outside this window are implausible: the
#: benchmark targets servers sold between the early 2000s and "shortly after
#: the present" (reports are sometimes submitted before general availability).
_PLAUSIBLE_YEARS = (2004, 2026)

#: No x86 server sold in the covered period had more than this many cores in
#: a single submission (1024 already allows 16-node blade chassis).
_MAX_PLAUSIBLE_CORES = 4096
_MAX_PLAUSIBLE_THREADS_PER_CORE = 8


class ValidationIssue(str, enum.Enum):
    """One reason a run is excluded before analysis."""

    NOT_ACCEPTED = "not_accepted"
    AMBIGUOUS_DATE = "ambiguous_date"
    IMPLAUSIBLE_DATE = "implausible_date"
    AMBIGUOUS_CPU = "ambiguous_cpu"
    MISSING_NODE_COUNT = "missing_node_count"
    INCONSISTENT_CORE_THREAD = "inconsistent_core_thread"
    IMPLAUSIBLE_CORE_COUNT = "implausible_core_count"
    MISSING_MEASUREMENTS = "missing_measurements"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one run."""

    run_id: str
    issues: tuple[ValidationIssue, ...] = ()

    @property
    def is_valid(self) -> bool:
        return not self.issues

    @property
    def primary_issue(self) -> ValidationIssue | None:
        """The first (most severe) issue — used for the funnel counts."""
        return self.issues[0] if self.issues else None


def _date_issues(record: RunRecord) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if record.hw_avail_year is None or record.hw_avail_month is None:
        issues.append(ValidationIssue.AMBIGUOUS_DATE)
        return issues
    if not _PLAUSIBLE_YEARS[0] <= record.hw_avail_year <= _PLAUSIBLE_YEARS[1]:
        issues.append(ValidationIssue.IMPLAUSIBLE_DATE)
    return issues


def _core_thread_issues(record: RunRecord) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    cores = record.cores_total
    chips = record.total_chips
    per_chip = record.cores_per_chip
    threads = record.threads_total
    per_core = record.threads_per_core

    if cores is not None and (cores < 1 or cores > _MAX_PLAUSIBLE_CORES):
        issues.append(ValidationIssue.IMPLAUSIBLE_CORE_COUNT)
        return issues
    if per_core is not None and not 1 <= per_core <= _MAX_PLAUSIBLE_THREADS_PER_CORE:
        issues.append(ValidationIssue.IMPLAUSIBLE_CORE_COUNT)
        return issues

    if cores is not None and chips is not None and per_chip is not None:
        if cores != chips * per_chip:
            issues.append(ValidationIssue.INCONSISTENT_CORE_THREAD)
            return issues
    if cores is not None and threads is not None and per_core is not None:
        if threads != cores * per_core:
            issues.append(ValidationIssue.INCONSISTENT_CORE_THREAD)
            return issues
    if (
        record.nodes is not None
        and record.sockets_per_node is not None
        and chips is not None
        and chips != record.nodes * record.sockets_per_node
    ):
        issues.append(ValidationIssue.INCONSISTENT_CORE_THREAD)
    return issues


def _measurement_issues(record: RunRecord) -> list[ValidationIssue]:
    full_power = record.get_level("power", 100)
    full_ops = record.get_level("ssj_ops", 100)
    if full_power is None or full_ops is None or record.power_idle is None:
        return [ValidationIssue.MISSING_MEASUREMENTS]
    return []


def validate_run(record: RunRecord) -> ValidationReport:
    """Run every consistency check on a parsed record.

    The issue order matches the paper's filter order (acceptance, dates, CPU
    name, node count, core/thread counts, measurements) so that
    ``primary_issue`` reproduces the per-reason counts of Section II.
    """
    issues: list[ValidationIssue] = []
    if not record.accepted:
        issues.append(ValidationIssue.NOT_ACCEPTED)
    issues.extend(_date_issues(record))
    if record.cpu_class == "unknown" or record.cpu_name is None:
        issues.append(ValidationIssue.AMBIGUOUS_CPU)
    if record.nodes is None:
        issues.append(ValidationIssue.MISSING_NODE_COUNT)
    issues.extend(_core_thread_issues(record))
    issues.extend(_measurement_issues(record))
    return ValidationReport(run_id=record.run_id, issues=tuple(issues))
