"""Canonical field names of a parsed run record.

A *run record* is a flat dictionary (one per result file) whose keys are
stable column names used throughout :mod:`repro.core`.  Keeping the names in
one place avoids the scattered string literals that plague ad-hoc analysis
scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["LOAD_LEVELS", "level_field", "RunRecord"]

#: The graduated target loads, in percent, highest first (idle handled
#: separately as ``power_idle``).
LOAD_LEVELS: tuple[int, ...] = (100, 90, 80, 70, 60, 50, 40, 30, 20, 10)


def level_field(kind: str, level: int) -> str:
    """Column name for a per-level quantity.

    ``level_field("power", 70)`` → ``"power_070"``; zero-padding keeps the
    columns lexicographically ordered.
    """
    if kind not in ("power", "ssj_ops", "actual_load"):
        raise ValueError(f"unknown per-level field kind {kind!r}")
    if level not in LOAD_LEVELS:
        raise ValueError(f"unknown load level {level}")
    return f"{kind}_{level:03d}"


@dataclass
class RunRecord:
    """One parsed run in canonical flat form.

    ``to_dict`` produces the row used to build the analysis
    :class:`repro.frame.Frame`; missing values stay ``None``.
    """

    run_id: str = ""
    file_name: str = ""
    # Dates -----------------------------------------------------------------
    hw_avail_year: int | None = None
    hw_avail_month: int | None = None
    hw_avail_decimal: float | None = None
    sw_avail_year: int | None = None
    sw_avail_month: int | None = None
    test_year: int | None = None
    test_month: int | None = None
    publication_year: int | None = None
    publication_month: int | None = None
    # System ------------------------------------------------------------------
    system_vendor: str | None = None
    system_model: str | None = None
    nodes: int | None = None
    sockets_per_node: int | None = None
    total_chips: int | None = None
    cores_total: int | None = None
    cores_per_chip: int | None = None
    threads_total: int | None = None
    threads_per_core: int | None = None
    memory_gb: float | None = None
    psu_rating_w: float | None = None
    # CPU ------------------------------------------------------------------
    cpu_name: str | None = None
    cpu_vendor: str | None = None
    cpu_family: str | None = None
    cpu_class: str | None = None  # "server", "desktop", "non_x86", "unknown"
    cpu_frequency_mhz: float | None = None
    # Software ---------------------------------------------------------------
    os_name: str | None = None
    os_family: str | None = None  # "Windows", "Linux", "Other"
    jvm: str | None = None
    # Results ------------------------------------------------------------------
    overall_ssj_ops_per_watt: float | None = None
    power_idle: float | None = None
    accepted: bool = True
    # Per-level quantities are stored in this mapping and flattened by to_dict.
    per_level: dict[str, float] = field(default_factory=dict)

    def set_level(self, kind: str, level: int, value: float) -> None:
        self.per_level[level_field(kind, level)] = value

    def get_level(self, kind: str, level: int) -> float | None:
        return self.per_level.get(level_field(kind, level))

    def to_dict(self) -> dict[str, Any]:
        """Flatten into one row (per-level keys merged in)."""
        # All fields are scalars (and ``per_level`` is popped), so a shallow
        # instance-dict copy replaces ``dataclasses.asdict``'s recursive
        # deep-copy walk — same keys, same field order, ~10x cheaper on the
        # dataset assembly path.
        row = dict(self.__dict__)
        per_level = row.pop("per_level")
        # Guarantee every per-level column exists, even if a level was absent
        # from the report, so frames built from many records stay rectangular.
        for kind in ("ssj_ops", "power", "actual_load"):
            for level in LOAD_LEVELS:
                key = level_field(kind, level)
                row[key] = per_level.get(key)
        return row
