"""Parser for SPEC-style plain-text result reports.

The parser is deliberately forgiving: real-world result files contain
hand-edited fields, so every field is extracted independently and missing
or malformed values become ``None`` in the record — the decision whether a
run is usable is made later by :mod:`repro.parser.validation`, mirroring
the paper's two-stage "parse then check consistency" approach.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from ..errors import ParseError
from ..units import parse_month_date, parse_number
from .cpuinfo import classify_cpu
from .fields import LOAD_LEVELS, RunRecord

__all__ = ["ParsedRun", "parse_result_text", "parse_result_file"]

_HEADER_MARKER = "SPECpower_ssj2008"

_KEY_VALUE_RE = re.compile(r"^\s{0,8}([A-Za-z][A-Za-z0-9 ()#/.\-]*?):\s*(.*)$")

_LEVEL_ROW_RE = re.compile(
    r"^\s*(\d{1,3})%\s*\|\s*([\d.,]*)%?\s*\|\s*([\d.,]+)\s*\|\s*([\d.,]+)\s*\|"
)
_IDLE_ROW_RE = re.compile(
    r"^\s*Active\s+Idle\s*\|\s*\|?\s*([\d.,]*)\s*\|\s*([\d.,]+)\s*\|"
)
_OVERALL_RE = re.compile(r"ssj_ops\s*/\s*[∑Σ]?\s*power\s*=\s*([\d.,]+)")
_ENABLED_RE = re.compile(
    r"([\d,]+)\s*cores?,\s*([\d,]+)\s*chips?,\s*([\d,]+)\s*cores?/chip", re.IGNORECASE
)
_THREADS_RE = re.compile(r"([\d,]+)\s*\(\s*([\d,]+)\s*/\s*core\s*\)")


@dataclass
class ParsedRun:
    """Raw parse output: the record plus anything noteworthy found on the way."""

    record: RunRecord
    warnings: list[str]
    raw_fields: dict[str, str]


def _classify_os(os_name: str | None) -> str | None:
    if not os_name:
        return None
    lowered = os_name.lower()
    if "windows" in lowered:
        return "Windows"
    if any(marker in lowered for marker in ("linux", "suse", "red hat", "ubuntu", "centos")):
        return "Linux"
    return "Other"


def _set_date(record: RunRecord, prefix: str, raw: str, warnings: list[str]) -> None:
    try:
        date = parse_month_date(raw)
    except ParseError as exc:
        warnings.append(f"{prefix}: {exc}")
        return
    setattr(record, f"{prefix}_year", date.year)
    setattr(record, f"{prefix}_month", date.month)
    if prefix == "hw_avail":
        record.hw_avail_decimal = date.decimal_year


def parse_result_text(text: str, file_name: str = "<memory>") -> ParsedRun:
    """Parse one report's text into a :class:`ParsedRun`.

    Raises :class:`ParseError` only when the text is not a SPEC Power report
    at all; field-level problems are downgraded to warnings / missing values.
    """
    if _HEADER_MARKER not in text.split("\n", 1)[0]:
        raise ParseError("not a SPECpower_ssj2008 report", path=file_name, line=1)

    record = RunRecord(file_name=file_name, run_id=os.path.splitext(os.path.basename(file_name))[0])
    warnings: list[str] = []
    raw_fields: dict[str, str] = {}

    for line_number, line in enumerate(text.splitlines(), start=1):
        # Results-table rows first: they also contain ':'-free pipes.
        level_match = _LEVEL_ROW_RE.match(line)
        if level_match:
            level = int(level_match.group(1))
            if level in LOAD_LEVELS:
                try:
                    if level_match.group(2):
                        record.set_level(
                            "actual_load", level, parse_number(level_match.group(2)) / 100.0
                        )
                    record.set_level("ssj_ops", level, parse_number(level_match.group(3)))
                    record.set_level("power", level, parse_number(level_match.group(4)))
                except ParseError as exc:
                    warnings.append(f"line {line_number}: {exc}")
            continue
        idle_match = _IDLE_ROW_RE.match(line)
        if idle_match:
            try:
                record.power_idle = parse_number(idle_match.group(2))
            except ParseError as exc:
                warnings.append(f"line {line_number}: {exc}")
            continue
        overall_match = _OVERALL_RE.search(line)
        if overall_match:
            try:
                record.overall_ssj_ops_per_watt = parse_number(overall_match.group(1))
            except ParseError as exc:
                warnings.append(f"line {line_number}: {exc}")
            continue
        if "NON-COMPLIANT" in line.upper():
            record.accepted = False
            continue

        key_value = _KEY_VALUE_RE.match(line)
        if not key_value:
            continue
        key = key_value.group(1).strip().lower()
        value = key_value.group(2).strip()
        if not value:
            continue
        raw_fields[key] = value

        if key == "hardware availability":
            _set_date(record, "hw_avail", value, warnings)
        elif key == "software availability":
            _set_date(record, "sw_avail", value, warnings)
        elif key == "test date":
            _set_date(record, "test", value, warnings)
        elif key == "publication date":
            _set_date(record, "publication", value, warnings)
        elif key == "hardware vendor":
            record.system_vendor = value
        elif key == "model":
            record.system_model = value
        elif key == "number of nodes":
            try:
                record.nodes = int(parse_number(value))
            except ParseError as exc:
                warnings.append(f"nodes: {exc}")
        elif key == "chips per node":
            try:
                record.sockets_per_node = int(parse_number(value))
            except ParseError as exc:
                warnings.append(f"chips per node: {exc}")
        elif key == "cpu name":
            record.cpu_name = value
        elif key == "cpu frequency (mhz)":
            try:
                record.cpu_frequency_mhz = parse_number(value)
            except ParseError as exc:
                warnings.append(f"cpu frequency: {exc}")
        elif key == "cpu(s) enabled":
            enabled = _ENABLED_RE.search(value)
            if enabled:
                record.cores_total = int(parse_number(enabled.group(1)))
                record.total_chips = int(parse_number(enabled.group(2)))
                record.cores_per_chip = int(parse_number(enabled.group(3)))
            else:
                warnings.append(f"unparseable 'CPU(s) Enabled': {value!r}")
        elif key == "hardware threads":
            threads = _THREADS_RE.search(value)
            if threads:
                record.threads_total = int(parse_number(threads.group(1)))
                record.threads_per_core = int(parse_number(threads.group(2)))
            else:
                warnings.append(f"unparseable 'Hardware Threads': {value!r}")
        elif key == "memory amount (gb)":
            try:
                record.memory_gb = parse_number(value)
            except ParseError as exc:
                warnings.append(f"memory: {exc}")
        elif key == "power supply rating (w)":
            try:
                record.psu_rating_w = parse_number(value)
            except ParseError as exc:
                warnings.append(f"psu: {exc}")
        elif key == "operating system (os)":
            record.os_name = value
            record.os_family = _classify_os(value)
        elif key == "jvm version":
            record.jvm = value
        elif key == "valid run":
            record.accepted = value.strip().lower().startswith("y")
        elif key == "cpu vendor":
            # Keep the report's own vendor statement; classification below may
            # refine it from the CPU name.
            record.cpu_vendor = value

    # CPU classification from the name (overrides a missing/odd vendor field).
    info = classify_cpu(record.cpu_name)
    if record.cpu_vendor is None or info.vendor != "Other":
        record.cpu_vendor = info.vendor
    record.cpu_family = info.family
    record.cpu_class = info.cpu_class

    return ParsedRun(record=record, warnings=warnings, raw_fields=raw_fields)


def parse_result_file(path: str | os.PathLike) -> ParsedRun:
    """Parse a report file from disk."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ParseError(f"cannot read report: {exc}", path=path) from exc
    return parse_result_text(text, file_name=os.path.basename(path))
