"""The Section IV correlation exploration.

The paper looks for explanations of the recent idle-fraction regression by
correlating run features of submissions since 2021, and reports that the
exploration is confounded by vendor lineups: AMD systems have far more cores
(mean 85.8 vs 39.5) while the nominal frequency means coincide (~2.3 GHz)
but differ in spread (0.3 vs 0.5 GHz).  The study here reproduces the same
exploration: per-vendor feature statistics plus a correlation matrix of the
candidate features against the idle fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..frame import Frame
from ..stats import CorrelationResult, correlation_matrix, summarize
from ..stats.descriptive import Summary

__all__ = ["CorrelationStudy", "run_correlation_study"]

#: Features the study correlates against the idle fraction.
_STUDY_FEATURES = (
    "cores_total",
    "cpu_frequency_mhz",
    "memory_gb",
    "total_sockets",
    "idle_fraction",
    "extrapolated_idle_quotient",
    "overall_efficiency",
)


@dataclass(frozen=True)
class VendorFeatureStats:
    """Per-vendor summary of one feature."""

    feature: str
    vendor: str
    summary: Summary


@dataclass(frozen=True)
class CorrelationStudy:
    """Outcome of the Section IV exploration."""

    since_year: int
    n_runs: int
    correlations: CorrelationResult
    vendor_stats: tuple[VendorFeatureStats, ...]

    def vendor_summary(self, feature: str, vendor: str) -> Summary:
        for entry in self.vendor_stats:
            if entry.feature == feature and entry.vendor == vendor:
                return entry.summary
        raise AnalysisError(f"no statistics for {feature!r} / {vendor!r}")

    def idle_fraction_correlations(self) -> dict[str, float]:
        """Correlation of every feature with the idle fraction."""
        out = {}
        for feature in self.correlations.features:
            if feature == "idle_fraction":
                continue
            out[feature] = self.correlations.value(feature, "idle_fraction")
        return out

    def is_conclusive(self, threshold: float = 0.8) -> bool:
        """Whether any single *hardware* feature strongly explains the idle fraction.

        Only configuration features (core count, frequency, memory, sockets)
        are considered: quantities derived from the idle measurement itself
        (the extrapolated idle quotient) correlate with it by construction
        and say nothing about the cause.  The paper's conclusion is that the
        exploration *remains inconclusive*; with the default threshold this
        returns False on the reproduced data as well (vendor lineups confound
        the candidate features).
        """
        hardware = ("cores_total", "cpu_frequency_mhz", "memory_gb", "total_sockets")
        values = [
            abs(value)
            for feature, value in self.idle_fraction_correlations().items()
            if feature in hardware and value == value
        ]
        return bool(values) and max(values) >= threshold

    def describe(self) -> str:
        lines = [
            f"correlation study over {self.n_runs} runs with hardware since {self.since_year}",
            "feature correlations with idle fraction:",
        ]
        for feature, value in sorted(
            self.idle_fraction_correlations().items(), key=lambda kv: -abs(kv[1])
        ):
            lines.append(f"  {feature}: {value:+.2f}")
        for feature in ("cores_total", "cpu_frequency_mhz"):
            for vendor in ("AMD", "Intel"):
                summary = self.vendor_summary(feature, vendor)
                lines.append(
                    f"  {vendor} {feature}: mean {summary.mean:.1f}, std {summary.std:.1f}"
                )
        return "\n".join(lines)


def run_correlation_study(
    frame: Frame, since_year: int = 2021, method: str = "pearson"
) -> CorrelationStudy:
    """Reproduce the Section IV exploration on the filtered run frame."""
    required = set(_STUDY_FEATURES) | {"hw_avail_year", "cpu_vendor"}
    missing = [name for name in required if name not in frame]
    if missing:
        raise AnalysisError(f"frame is missing columns for the study: {missing}")
    recent = frame.filter(frame["hw_avail_year"] >= since_year)
    if len(recent) < 5:
        raise AnalysisError(
            f"not enough runs since {since_year} for a correlation study ({len(recent)})"
        )
    correlations = correlation_matrix(recent, list(_STUDY_FEATURES), method=method)

    vendor_stats: list[VendorFeatureStats] = []
    for vendor in ("AMD", "Intel"):
        sub = recent.filter(recent["cpu_vendor"] == vendor)
        for feature in _STUDY_FEATURES:
            vendor_stats.append(
                VendorFeatureStats(
                    feature=feature,
                    vendor=vendor,
                    summary=summarize(sub[feature].to_list()) if len(sub) else summarize([]),
                )
            )
    return CorrelationStudy(
        since_year=since_year,
        n_runs=len(recent),
        correlations=correlations,
        vendor_stats=tuple(vendor_stats),
    )
