"""Dataset assembly: parse a corpus and attach the derived analysis columns."""

from __future__ import annotations

import os

from ..errors import AnalysisError
from ..frame import Frame
from ..parallel import ParallelConfig
from ..parser import parse_directory
from . import metrics

__all__ = ["DERIVED_COLUMNS", "derive_columns", "load_runs"]

#: Names of the derived columns added by :func:`derive_columns`, in order.
DERIVED_COLUMNS: tuple[str, ...] = (
    "total_sockets",
    "overall_efficiency",
    "power_per_socket_100",
    "power_per_socket_070",
    "power_per_socket_020",
    "efficiency_100",
    "relative_efficiency_090",
    "relative_efficiency_080",
    "relative_efficiency_070",
    "relative_efficiency_060",
    "idle_fraction",
    "extrapolated_idle",
    "extrapolated_idle_quotient",
    "is_amd",
    "is_linux",
)


def derive_columns(frame: Frame) -> Frame:
    """Attach every derived metric column used by the figures and trends.

    The input is the flat parsed-run frame (see
    :func:`repro.parser.corpus.records_to_frame`); the result contains the
    original columns plus :data:`DERIVED_COLUMNS`.
    """
    if len(frame) == 0:
        raise AnalysisError("cannot derive columns of an empty run frame")
    out = frame
    out = out.with_column("total_sockets", metrics.total_sockets(out))
    out = out.with_column("overall_efficiency", metrics.overall_efficiency(out))
    for level in (100, 70, 20):
        out = out.with_column(
            f"power_per_socket_{level:03d}", metrics.power_per_socket(out, level)
        )
    out = out.with_column("efficiency_100", metrics.level_efficiency(out, 100))
    for level in (90, 80, 70, 60):
        out = out.with_column(
            f"relative_efficiency_{level:03d}", metrics.relative_efficiency(out, level)
        )
    out = out.with_column("idle_fraction", metrics.idle_fraction(out))
    out = out.with_column("extrapolated_idle", metrics.extrapolated_idle(out))
    out = out.with_column(
        "extrapolated_idle_quotient", metrics.extrapolated_idle_quotient(out)
    )
    out = out.with_column("is_amd", out["cpu_vendor"] == "AMD")
    out = out.with_column("is_linux", out["os_family"] == "Linux")
    return out


def load_runs(
    directory: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    derive: bool = True,
) -> Frame:
    """Parse every report in ``directory`` into the analysis frame.

    This is the "960 successfully parsed runs" stage: files failing the
    consistency checks are dropped here (their counts are available through
    :func:`repro.parser.parse_directory` when needed).
    """
    report = parse_directory(directory, parallel=parallel)
    frame = report.to_frame()
    if derive and len(frame) > 0:
        frame = derive_columns(frame)
    return frame
