"""Reproduction of Table I: SPEC Power vs SPEC CPU for two Lenovo systems.

The paper compares a Lenovo ThinkSystem SR650 V3 (2x Intel Xeon Platinum
8490H) against a ThinkSystem SR645 V3 (2x AMD EPYC 9754) under three
benchmarks and reports the relative AMD/Intel factor for each:

==================  ======  ======  ======
benchmark           Intel    AMD    factor
==================  ======  ======  ======
power_ssj 2008      15112   31634   2.09
CPU 2017 FP rate      926    1420   1.53
CPU 2017 Int rate     902    1830   2.03
==================  ======  ======  ======

The reproduction builds both systems from the market catalog, measures the
SPEC Power overall score with the benchmark simulator (measurement noise
disabled so the table is deterministic) and the CPU rate scores with the
throughput model of :mod:`repro.speccpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..frame import Frame
from ..market.catalog import Catalog, default_catalog
from ..market.fleet import SystemPlan
from ..simulator.director import RunDirector, SimulationOptions
from ..speccpu import SpecCpuRateModel
from ..units import MonthDate

__all__ = ["Table1Row", "table1", "table1_frame", "PAPER_TABLE1"]

#: The paper's reported values: benchmark -> (intel result, amd result, factor).
PAPER_TABLE1 = {
    "power_ssj2008": (15112.0, 31634.0, 2.09),
    "cpu2017_fp_rate": (926.0, 1420.0, 1.53),
    "cpu2017_int_rate": (902.0, 1830.0, 2.03),
}


@dataclass(frozen=True)
class Table1Row:
    """One benchmark row of the comparison."""

    benchmark: str
    system: str
    cpu_model: str
    tdp_w: float
    hw_avail: str
    os_name: str
    memory_gb: float
    result: float
    factor: float
    paper_result: float | None
    paper_factor: float | None


def _intel_plan() -> SystemPlan:
    return SystemPlan(
        run_id="table1-intel-sr650v3",
        hw_avail=MonthDate(2023, 2),
        sw_avail=MonthDate(2022, 11),
        test_date=MonthDate(2023, 2),
        publication_date=MonthDate(2023, 4),
        cpu_model="Xeon Platinum 8490H",
        sockets=2,
        nodes=1,
        memory_gb=256.0,
        os_name="Microsoft Windows Server 2019 Datacenter",
        jvm_name="Oracle Java HotSpot 64-Bit Server VM 11",
        system_vendor="Lenovo Global Technology",
        system_model="ThinkSystem SR650 V3",
        psu_rating_w=1100.0,
    )


def _amd_plan() -> SystemPlan:
    return SystemPlan(
        run_id="table1-amd-sr645v3",
        hw_avail=MonthDate(2023, 8),
        sw_avail=MonthDate(2023, 5),
        test_date=MonthDate(2023, 8),
        publication_date=MonthDate(2023, 10),
        cpu_model="EPYC 9754",
        sockets=2,
        nodes=1,
        memory_gb=384.0,
        os_name="Microsoft Windows Server 2022 Datacenter",
        jvm_name="Oracle Java HotSpot 64-Bit Server VM 17",
        system_vendor="Lenovo Global Technology",
        system_model="ThinkSystem SR645 V3",
        psu_rating_w=1100.0,
    )


def table1(catalog: Catalog | None = None) -> list[Table1Row]:
    """Compute the Table I comparison on the reproduced models."""
    catalog = catalog or default_catalog()
    director = RunDirector(
        catalog=catalog,
        options=SimulationOptions(measurement_noise=False),
    )
    plans = {"intel": _intel_plan(), "amd": _amd_plan()}
    power_scores = {}
    cpu_rate_scores: dict[str, dict[str, float]] = {}
    for key, plan in plans.items():
        result = director.run(plan)
        power_scores[key] = result.overall_efficiency
        entry = catalog.get(plan.cpu_model)
        model = SpecCpuRateModel(entry.cpu, sockets=plan.sockets)
        cpu_rate_scores[key] = {
            "cpu2017_fp_rate": model.fp_rate().score,
            "cpu2017_int_rate": model.int_rate().score,
        }

    rows: list[Table1Row] = []
    benchmark_results = {
        "power_ssj2008": (power_scores["intel"], power_scores["amd"]),
        "cpu2017_fp_rate": (
            cpu_rate_scores["intel"]["cpu2017_fp_rate"],
            cpu_rate_scores["amd"]["cpu2017_fp_rate"],
        ),
        "cpu2017_int_rate": (
            cpu_rate_scores["intel"]["cpu2017_int_rate"],
            cpu_rate_scores["amd"]["cpu2017_int_rate"],
        ),
    }
    for benchmark, (intel_score, amd_score) in benchmark_results.items():
        if intel_score <= 0:
            raise AnalysisError(f"non-positive Intel score for {benchmark}")
        paper_intel, paper_amd, paper_factor = PAPER_TABLE1[benchmark]
        for key, score, paper_result, factor, paper_f in (
            ("intel", intel_score, paper_intel, 1.0, 1.0),
            ("amd", amd_score, paper_amd, amd_score / intel_score, paper_factor),
        ):
            plan = plans[key]
            entry = catalog.get(plan.cpu_model)
            rows.append(
                Table1Row(
                    benchmark=benchmark,
                    system=plan.system_model,
                    cpu_model=f"{entry.cpu.vendor.value} {entry.cpu.model}",
                    tdp_w=entry.cpu.tdp_w,
                    hw_avail=str(plan.hw_avail),
                    os_name=plan.os_name,
                    memory_gb=plan.memory_gb,
                    result=round(score, 1),
                    factor=round(factor, 2),
                    paper_result=paper_result,
                    paper_factor=paper_f,
                )
            )
    return rows


def table1_frame(catalog: Catalog | None = None) -> Frame:
    """Table I as a frame (used by the benchmark harness and CSV export)."""
    rows = table1(catalog)
    return Frame.from_records(
        [
            {
                "benchmark": row.benchmark,
                "system": row.system,
                "cpu": row.cpu_model,
                "tdp_w": row.tdp_w,
                "hw_avail": row.hw_avail,
                "memory_gb": row.memory_gb,
                "result": row.result,
                "factor": row.factor,
                "paper_result": row.paper_result,
                "paper_factor": row.paper_factor,
            }
            for row in rows
        ]
    )
