"""Headline trend statistics quoted in the paper's text.

Every finding is expressed as a :class:`TrendFinding` carrying the paper's
reported value next to the value measured on the (synthetic) dataset, so the
report generator and EXPERIMENTS.md can show them side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..frame import Frame
from ..stats import compare_eras
from .metrics import top_n_vendor_share

__all__ = [
    "TrendFinding",
    "submissions_per_year",
    "share_shift",
    "idle_fraction_milestones",
    "power_era_comparisons",
    "headline_findings",
]


@dataclass(frozen=True)
class TrendFinding:
    """One scalar finding: paper value vs measured value."""

    name: str
    description: str
    paper_value: float | None
    measured_value: float
    unit: str = ""

    @property
    def relative_error(self) -> float | None:
        if self.paper_value in (None, 0):
            return None
        return (self.measured_value - self.paper_value) / abs(self.paper_value)

    def describe(self) -> str:
        paper = "n/a" if self.paper_value is None else f"{self.paper_value:g}{self.unit}"
        return (
            f"{self.name}: paper {paper}, measured {self.measured_value:g}{self.unit}"
        )


def _year_column(frame: Frame, date_column: str = "hw_avail_year") -> Frame:
    if date_column not in frame:
        raise AnalysisError(f"frame has no {date_column!r} column")
    return frame


def submissions_per_year(frame: Frame, date_column: str = "hw_avail_year") -> list[TrendFinding]:
    """Average submissions per hardware year, overall and in the 2013–2017 dip."""
    _year_column(frame, date_column)
    years = [y for y in frame[date_column].to_list() if y is not None]
    if not years:
        raise AnalysisError("no hardware availability years in frame")
    counts: dict[int, int] = {}
    for year in years:
        counts[int(year)] = counts.get(int(year), 0) + 1
    span_years = [y for y in counts if 2005 <= y <= 2023]
    overall = float(np.mean([counts.get(y, 0) for y in range(2005, 2024)])) if span_years else 0.0
    dip = float(np.mean([counts.get(y, 0) for y in range(2013, 2018)]))
    return [
        TrendFinding(
            "submissions_per_year",
            "average parsed submissions per hardware availability year, 2005-2023",
            44.2,
            round(overall, 1),
        ),
        TrendFinding(
            "submissions_per_year_2013_2017",
            "average parsed submissions per year between 2013 and 2017",
            15.2,
            round(dip, 1),
        ),
    ]


def share_shift(
    frame: Frame,
    flag_column: str,
    split_year: int = 2018,
    date_column: str = "hw_avail_year",
) -> tuple[float, float]:
    """Share of rows with ``flag_column`` true before / from ``split_year`` on."""
    _year_column(frame, date_column)
    if flag_column not in frame:
        raise AnalysisError(f"frame has no {flag_column!r} column")
    years = frame[date_column]
    before = frame.filter(years < split_year)
    after = frame.filter(years >= split_year)

    def share(sub: Frame) -> float:
        flags = [bool(v) for v in sub[flag_column].to_list() if v is not None]
        return float(np.mean(flags)) if flags else float("nan")

    return share(before), share(after)


def idle_fraction_milestones(frame: Frame) -> list[TrendFinding]:
    """Yearly-mean idle fraction milestones: 2006, the 2017 minimum, 2024."""
    if "idle_fraction" not in frame:
        raise AnalysisError("frame has no idle_fraction column (run derive_columns)")
    yearly: dict[int, list[float]] = {}
    for year, value in zip(frame["hw_avail_year"].to_list(), frame["idle_fraction"].to_list()):
        if year is None or value is None:
            continue
        yearly.setdefault(int(year), []).append(float(value))
    means = {year: float(np.mean(values)) for year, values in yearly.items() if values}
    if not means:
        raise AnalysisError("no idle fraction data")
    minimum_year = min(means, key=means.get)
    findings = [
        TrendFinding("idle_fraction_2006", "mean idle fraction of 2006 hardware",
                     0.701, round(means.get(2006, float("nan")), 3)),
        TrendFinding("idle_fraction_minimum", "lowest yearly mean idle fraction",
                     0.157, round(means[minimum_year], 3)),
        TrendFinding("idle_fraction_minimum_year", "year of the lowest mean idle fraction",
                     2017, float(minimum_year)),
        TrendFinding("idle_fraction_2024", "mean idle fraction of 2024 hardware",
                     0.257, round(means.get(2024, float("nan")), 3)),
    ]
    return findings


def power_era_comparisons(frame: Frame) -> list[TrendFinding]:
    """Full/partial-load power-per-socket growth between the paper's eras."""
    findings = []
    for column, level, paper_ratio in (
        ("power_per_socket_100", "100 %", 2.5),
        ("power_per_socket_070", "70 %", 2.2),
        ("power_per_socket_020", "20 %", 1.8),
    ):
        if column not in frame:
            raise AnalysisError(f"frame has no {column!r} column")
        comparison = compare_eras(frame, column, early=(None, 2010), late=(2022, None))
        findings.append(
            TrendFinding(
                f"power_growth_{column}",
                f"mean power per socket at {level} load, runs since 2022 vs runs up to 2010",
                paper_ratio,
                round(comparison.ratio, 2),
                unit="x",
            )
        )
    full = compare_eras(frame, "power_per_socket_100", early=(None, 2010), late=(2022, None))
    findings.append(
        TrendFinding(
            "power_per_socket_full_load_early",
            "mean full-load power per socket of runs up to 2010 (W)",
            119.0,
            round(full.early.mean, 1),
            unit=" W",
        )
    )
    findings.append(
        TrendFinding(
            "power_per_socket_full_load_late",
            "mean full-load power per socket of runs since 2022 (W)",
            303.3,
            round(full.late.mean, 1),
            unit=" W",
        )
    )
    return findings


def headline_findings(unfiltered: Frame, filtered: Frame) -> list[TrendFinding]:
    """All scalar findings quoted in the paper's running text.

    ``unfiltered`` is the parsed dataset (960 runs), ``filtered`` the
    676-run analysis subset with derived columns.
    """
    findings: list[TrendFinding] = []
    findings.extend(submissions_per_year(unfiltered))

    linux_before, linux_after = share_shift(unfiltered, "is_linux")
    amd_before, amd_after = share_shift(unfiltered, "is_amd")
    findings.extend(
        [
            TrendFinding("linux_share_before_2018", "share of Linux runs before 2018",
                         0.022, round(linux_before, 3)),
            TrendFinding("linux_share_from_2018", "share of Linux runs from 2018 on",
                         0.363, round(linux_after, 3)),
            TrendFinding("amd_share_before_2018", "share of AMD runs before 2018",
                         0.130, round(amd_before, 3)),
            TrendFinding("amd_share_from_2018", "share of AMD runs from 2018 on",
                         0.313, round(amd_after, 3)),
        ]
    )

    findings.extend(power_era_comparisons(filtered))
    findings.extend(idle_fraction_milestones(filtered))
    findings.append(
        TrendFinding(
            "amd_share_of_top100_efficiency",
            "share of AMD among the 100 most efficient runs",
            0.98,
            round(top_n_vendor_share(filtered, "AMD", n=min(100, len(filtered))), 3),
        )
    )
    return findings
