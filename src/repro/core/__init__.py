"""The paper's analysis pipeline.

Everything in this package operates on the flat run table produced by
:mod:`repro.parser` (one row per accepted result file):

* :mod:`repro.core.dataset` — derived columns (per-socket power, idle
  fraction, per-level and relative efficiencies, extrapolated idle quotient),
* :mod:`repro.core.filters` — the Section II filter pipeline with per-step
  counts,
* :mod:`repro.core.metrics` — the individual metric definitions,
* :mod:`repro.core.trends` — era comparisons and yearly statistics
  (the headline numbers quoted in the text),
* :mod:`repro.core.proportionality` — energy-proportionality scores,
* :mod:`repro.core.correlationstudy` — the Section IV correlation
  exploration,
* :mod:`repro.core.figures` — Figures 1–6,
* :mod:`repro.core.tables` — Table I,
* :mod:`repro.core.report` — the paper-vs-measured summary.
"""

from .dataset import derive_columns, load_runs, DERIVED_COLUMNS
from .filters import FilterReport, FilterStep, apply_paper_filters
from .metrics import (
    idle_fraction,
    overall_efficiency,
    power_per_socket,
    relative_efficiency,
    extrapolated_idle,
    extrapolated_idle_quotient,
    top_n_vendor_share,
)
from .trends import TrendFinding, headline_findings, submissions_per_year, share_shift
from .proportionality import ProportionalityScore, proportionality_scores
from .correlationstudy import CorrelationStudy, run_correlation_study
from .figures import (
    FigureArtifact,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    all_figures,
)
from .tables import Table1Row, table1
from .report import PaperComparison, build_report

__all__ = [
    "derive_columns",
    "load_runs",
    "DERIVED_COLUMNS",
    "FilterReport",
    "FilterStep",
    "apply_paper_filters",
    "idle_fraction",
    "overall_efficiency",
    "power_per_socket",
    "relative_efficiency",
    "extrapolated_idle",
    "extrapolated_idle_quotient",
    "top_n_vendor_share",
    "TrendFinding",
    "headline_findings",
    "submissions_per_year",
    "share_shift",
    "ProportionalityScore",
    "proportionality_scores",
    "CorrelationStudy",
    "run_correlation_study",
    "FigureArtifact",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "all_figures",
    "Table1Row",
    "table1",
    "PaperComparison",
    "build_report",
]
