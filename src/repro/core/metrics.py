"""Metric definitions used throughout the analysis.

Each function takes the flat run frame (or columns of it) and returns a
:class:`repro.frame.Column`, so the metrics can be attached as derived
columns by :mod:`repro.core.dataset` or used stand-alone in tests.

Definitions (following the paper and the SPEC result-file documentation):

* **overall efficiency** — ``sum(ssj_ops over all levels) / sum(power over
  all levels including active idle)``,
* **power per socket** — measured wall power divided by the total number of
  chips in the SUT,
* **relative efficiency at level L** — per-level efficiency divided by the
  100 % efficiency; 1.0 at every level would be perfect energy
  proportionality,
* **idle fraction** — active-idle power divided by 100 % power,
* **extrapolated idle** — the power at 0 % load linearly extrapolated from
  the 10 % and 20 % measurements,
* **extrapolated idle quotient** — extrapolated idle divided by measured
  active idle (>1 means idle-specific optimisations are effective).
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from ..frame import Column, Frame
from ..frame.ops import ratio
from ..parser.fields import LOAD_LEVELS, level_field

__all__ = [
    "total_sockets",
    "overall_efficiency",
    "power_per_socket",
    "level_efficiency",
    "relative_efficiency",
    "idle_fraction",
    "extrapolated_idle",
    "extrapolated_idle_quotient",
    "top_n_vendor_share",
]


def _require(frame: Frame, *names: str) -> None:
    missing = [name for name in names if name not in frame]
    if missing:
        raise AnalysisError(f"frame is missing required columns: {missing}")


def _level_values(frame: Frame, kind: str, level: int) -> np.ndarray:
    column = frame[level_field(kind, level)]
    values = column.values.astype(np.float64, copy=True)
    values[column.mask] = np.nan
    return values


def total_sockets(frame: Frame) -> Column:
    """Total number of chips in the SUT (all nodes).

    Prefers the parsed ``total_chips`` field and falls back to
    ``nodes * sockets_per_node``.
    """
    _require(frame, "total_chips", "nodes", "sockets_per_node")
    chips = frame["total_chips"].to_numpy(missing=np.nan).astype(np.float64)
    nodes = frame["nodes"].to_numpy(missing=np.nan).astype(np.float64)
    per_node = frame["sockets_per_node"].to_numpy(missing=np.nan).astype(np.float64)
    fallback = nodes * per_node
    combined = np.where(np.isnan(chips), fallback, chips)
    return Column.from_numpy(combined)


def overall_efficiency(frame: Frame) -> Column:
    """Overall ssj_ops/W recomputed from the per-level measurements.

    The sum runs over the levels a run actually measured: campaign runs with
    a reduced load ladder (see ``SimulationOptions.load_levels``) skip some
    graduated levels entirely.  A run is invalid when the 100 % level or the
    active-idle measurement is absent, or when a level reports only one of
    ops/power.
    """
    _require(frame, "power_idle")
    total_ops = np.zeros(len(frame), dtype=np.float64)
    total_power = np.zeros(len(frame), dtype=np.float64)
    valid = np.ones(len(frame), dtype=bool)
    for level in LOAD_LEVELS:
        ops = _level_values(frame, "ssj_ops", level)
        power = _level_values(frame, "power", level)
        measured = ~np.isnan(ops) & ~np.isnan(power)
        valid &= measured | (np.isnan(ops) & np.isnan(power))
        if level == 100:
            valid &= measured
        total_ops += np.where(measured, ops, 0.0)
        total_power += np.where(measured, power, 0.0)
    idle = frame["power_idle"].values.astype(np.float64, copy=True)
    idle[frame["power_idle"].mask] = np.nan
    valid &= ~np.isnan(idle)
    total_power += np.nan_to_num(idle)
    with np.errstate(divide="ignore", invalid="ignore"):
        efficiency = total_ops / total_power
    efficiency[~valid | (total_power <= 0)] = np.nan
    return Column.from_numpy(efficiency)


def power_per_socket(frame: Frame, level: int = 100) -> Column:
    """Wall power at a load level divided by the total socket count."""
    sockets = total_sockets(frame)
    power = Column.from_numpy(_level_values(frame, "power", level))
    return ratio(power, sockets)


def level_efficiency(frame: Frame, level: int) -> Column:
    """ssj_ops per watt at one load level."""
    ops = Column.from_numpy(_level_values(frame, "ssj_ops", level))
    power = Column.from_numpy(_level_values(frame, "power", level))
    return ratio(ops, power)


def relative_efficiency(frame: Frame, level: int) -> Column:
    """Efficiency at ``level`` relative to the efficiency at full load."""
    if level == 100:
        raise AnalysisError("relative efficiency is defined against the 100 % level")
    return ratio(level_efficiency(frame, level), level_efficiency(frame, 100))


def idle_fraction(frame: Frame) -> Column:
    """Active-idle power divided by full-load power (Figure 5 metric)."""
    _require(frame, "power_idle")
    idle = frame["power_idle"]
    full = Column.from_numpy(_level_values(frame, "power", 100))
    return ratio(idle, full)


def extrapolated_idle(frame: Frame) -> Column:
    """Idle power linearly extrapolated from the 10 % and 20 % load points.

    With exactly two points the least-squares line passes through both, so
    the extrapolation reduces to ``2 * P(10 %) - P(20 %)``; clamped at zero.
    """
    p10 = _level_values(frame, "power", 10)
    p20 = _level_values(frame, "power", 20)
    extrapolated = 2.0 * p10 - p20
    extrapolated = np.where(extrapolated < 0, 0.0, extrapolated)
    return Column.from_numpy(extrapolated)


def extrapolated_idle_quotient(frame: Frame) -> Column:
    """Extrapolated idle power divided by measured active-idle power."""
    _require(frame, "power_idle")
    return ratio(extrapolated_idle(frame), frame["power_idle"])


def top_n_vendor_share(frame: Frame, vendor: str = "AMD", n: int = 100,
                       metric: str = "overall_efficiency") -> float:
    """Share of ``vendor`` among the ``n`` most efficient runs.

    Reproduces the paper's "out of the 100 most efficient runs 98 use AMD
    processors" statistic.
    """
    _require(frame, metric, "cpu_vendor")
    ordered = frame.dropna([metric]).sort_by(metric, descending=True).head(n)
    if len(ordered) == 0:
        raise AnalysisError("no runs with the requested metric")
    vendors = ordered["cpu_vendor"].to_list()
    return sum(1 for v in vendors if v == vendor) / len(vendors)
