"""Reproduction of the paper's Figures 1–6.

Each ``figureN`` function takes the appropriate run frame and returns a
:class:`FigureArtifact`: the underlying data (a frame, suitable for CSV
export and for the benchmark harness to print) plus one or more rendered
charts.  ``FigureArtifact.save`` writes the SVGs and the data CSV.

Figure overview (all x axes are the hardware availability date):

1. dataset demographics — submissions per year and shares of OS, CPU vendor,
   sockets per node and total nodes (unfiltered dataset),
2. power per socket at 100 % load,
3. overall efficiency (ssj_ops/W),
4. distribution of relative efficiency at 60–90 % load, binned by year and
   CPU vendor,
5. idle power as a fraction of full-load power,
6. extrapolated idle quotient.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import AnalysisError
from ..frame import Frame
from ..plotting import (
    BarChart,
    BoxChart,
    BoxSeries,
    ScatterChart,
    Series,
    StackedAreaChart,
)
from ..plotting.charts import _BaseChart
from ..stats import box_stats
from ..stats.distribution import BoxStats

__all__ = [
    "FigureArtifact",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "all_figures",
]

_VENDOR_COLORS = {"Intel": "#1f77b4", "AMD": "#d62728"}


@dataclass
class FigureArtifact:
    """Data and rendered charts of one figure."""

    name: str
    title: str
    data: Frame
    charts: dict[str, _BaseChart] = field(default_factory=dict)

    def save(self, directory: str | os.PathLike) -> list[Path]:
        """Write ``<name>_<panel>.svg`` for every chart plus ``<name>.csv``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        csv_path = directory / f"{self.name}.csv"
        self.data.to_csv(csv_path)
        written.append(csv_path)
        for panel, chart in self.charts.items():
            path = directory / f"{self.name}_{panel}.svg"
            chart.save(path)
            written.append(path)
        return written


def _require(frame: Frame, *names: str) -> None:
    missing = [name for name in names if name not in frame]
    if missing:
        raise AnalysisError(f"figure input frame is missing columns: {missing}")


def _vendor_scatter(frame: Frame, value_column: str, title: str, y_label: str,
                    scale: float = 1.0) -> tuple[Frame, ScatterChart]:
    """Scatter of a per-run metric over time, split by CPU vendor and sockets."""
    _require(frame, "hw_avail_decimal", "cpu_vendor", "sockets_per_node", value_column)
    usable = frame.dropna([value_column, "hw_avail_decimal"])
    series = []
    for vendor in ("Intel", "AMD"):
        for sockets, marker in ((1, "circle"), (2, "square")):
            mask = (usable["cpu_vendor"] == vendor) & (usable["sockets_per_node"] == sockets)
            sub = usable.filter(mask)
            if len(sub) == 0:
                continue
            series.append(
                Series(
                    name=f"{vendor}, {sockets} socket{'s' if sockets > 1 else ''}",
                    x=sub["hw_avail_decimal"].to_list(),
                    y=[v * scale for v in sub[value_column].to_list()],
                    color=_VENDOR_COLORS[vendor],
                    marker=marker,
                )
            )
    if not series:
        raise AnalysisError(f"no data for figure {title!r}")
    chart = ScatterChart(
        series,
        title=title,
        x_label="Hardware Availability Date",
        y_label=y_label,
    )
    data = usable.select(
        ["run_id", "hw_avail_decimal", "hw_avail_year", "cpu_vendor",
         "sockets_per_node", value_column]
    )
    return data, chart


# --------------------------------------------------------------------------- #
# Figure 1: dataset demographics
# --------------------------------------------------------------------------- #
def figure1(unfiltered: Frame) -> FigureArtifact:
    """Share of features on all successfully parsed (unfiltered) results."""
    _require(unfiltered, "hw_avail_year", "os_family", "cpu_vendor",
             "sockets_per_node", "nodes")
    usable = unfiltered.dropna(["hw_avail_year"])
    years = sorted({int(y) for y in usable["hw_avail_year"].to_list()})
    year_column = usable["hw_avail_year"]

    def yearly_counts(mask: np.ndarray) -> list[int]:
        sub = usable.filter(mask) if mask is not None else usable
        counts = sub["hw_avail_year"].value_counts()
        return [int(counts.get(year, 0)) for year in years]

    total_counts = yearly_counts(np.ones(len(usable), dtype=bool))

    def share_series(column: str, buckets: list[tuple[str, np.ndarray]]) -> list[Series]:
        return [
            Series(name=label, y=yearly_counts(mask), x=years) for label, mask in buckets
        ]

    os_family = usable["os_family"]
    vendor = usable["cpu_vendor"]
    sockets = usable["sockets_per_node"]
    nodes = usable["nodes"]
    panels: dict[str, _BaseChart] = {
        "counts": BarChart(
            years, total_counts, title="Parsed results per year",
            x_label="Hardware Availability Date (Binned by Year)", y_label="Count (#)",
        ),
        "os": StackedAreaChart(
            years,
            share_series("os_family", [
                ("Windows", os_family == "Windows"),
                ("Linux", os_family == "Linux"),
                ("Other", ~((os_family == "Windows") | (os_family == "Linux"))),
            ]),
            title="Operating system share", x_label="Hardware Availability Date",
            y_label="Fraction (%)",
        ),
        "cpu_vendor": StackedAreaChart(
            years,
            share_series("cpu_vendor", [
                ("Intel", vendor == "Intel"),
                ("AMD", vendor == "AMD"),
                ("Other", ~((vendor == "Intel") | (vendor == "AMD"))),
            ]),
            title="CPU vendor share", x_label="Hardware Availability Date",
            y_label="Fraction (%)",
        ),
        "sockets": StackedAreaChart(
            years,
            share_series("sockets_per_node", [
                ("1", sockets == 1),
                ("2", sockets == 2),
                (">2", sockets > 2),
            ]),
            title="Sockets per node share", x_label="Hardware Availability Date",
            y_label="Fraction (%)",
        ),
        "nodes": StackedAreaChart(
            years,
            share_series("nodes", [
                ("1", nodes == 1),
                ("2", nodes == 2),
                (">2", nodes > 2),
            ]),
            title="Total nodes share", x_label="Hardware Availability Date",
            y_label="Fraction (%)",
        ),
    }

    # Underlying per-year data table.
    rows = []
    for index, year in enumerate(years):
        year_mask = year_column == year
        sub = usable.filter(year_mask)
        count = len(sub)
        rows.append(
            {
                "year": year,
                "count": count,
                "windows": int(np.sum(sub["os_family"].to_numpy(missing="") == "Windows")),
                "linux": int(np.sum(sub["os_family"].to_numpy(missing="") == "Linux")),
                "intel": int(np.sum(sub["cpu_vendor"].to_numpy(missing="") == "Intel")),
                "amd": int(np.sum(sub["cpu_vendor"].to_numpy(missing="") == "AMD")),
                "single_socket": int(np.sum(sub["sockets_per_node"].values == 1)),
                "dual_socket": int(np.sum(sub["sockets_per_node"].values == 2)),
                "multi_node": int(np.sum(sub["nodes"].values > 1)),
            }
        )
    data = Frame.from_records(rows)
    return FigureArtifact("figure1", "Dataset demographics", data, panels)


# --------------------------------------------------------------------------- #
# Figures 2, 3, 5, 6: per-run scatter trends
# --------------------------------------------------------------------------- #
def figure2(filtered: Frame) -> FigureArtifact:
    """Power consumption (per socket) at full load over time."""
    data, chart = _vendor_scatter(
        filtered, "power_per_socket_100",
        title="Power per socket at full load",
        y_label="Power per Socket (W)",
    )
    return FigureArtifact("figure2", "Full-load power per socket trend", data,
                          {"scatter": chart})


def figure3(filtered: Frame) -> FigureArtifact:
    """Overall efficiency (ssj_ops/W) over time."""
    data, chart = _vendor_scatter(
        filtered, "overall_efficiency",
        title="Overall efficiency",
        y_label="Overall ssj_ops/W",
    )
    return FigureArtifact("figure3", "Overall efficiency trend", data, {"scatter": chart})


def figure5(filtered: Frame) -> FigureArtifact:
    """Idle power as a percentage of full-load power over time."""
    data, chart = _vendor_scatter(
        filtered, "idle_fraction",
        title="Active idle power relative to full load",
        y_label="Idle Power / Full Load Power (%)",
        scale=100.0,
    )
    return FigureArtifact("figure5", "Idle power consumption trend", data,
                          {"scatter": chart})


def figure6(filtered: Frame) -> FigureArtifact:
    """Extrapolated vs measured active idle power over time."""
    data, chart = _vendor_scatter(
        filtered, "extrapolated_idle_quotient",
        title="Extrapolated idle quotient",
        y_label="Extrapolated Idle Quotient",
    )
    return FigureArtifact("figure6", "Extrapolated idle quotient trend", data,
                          {"scatter": chart})


# --------------------------------------------------------------------------- #
# Figure 4: relative efficiency distributions
# --------------------------------------------------------------------------- #
def figure4(filtered: Frame, levels: tuple[int, ...] = (60, 70, 80, 90)) -> FigureArtifact:
    """Distribution of relative efficiency at 60–90 % load per year and vendor."""
    columns = [f"relative_efficiency_{level:03d}" for level in levels]
    _require(filtered, "hw_avail_year", "cpu_vendor", *columns)
    usable = filtered.dropna(["hw_avail_year"])

    charts: dict[str, _BaseChart] = {}
    rows = []
    for vendor in ("AMD", "Intel"):
        vendor_frame = usable.filter(usable["cpu_vendor"] == vendor)
        years = sorted({int(y) for y in vendor_frame["hw_avail_year"].to_list()})
        box_series = []
        for level, column in zip(levels, columns):
            boxes: list[BoxStats] = []
            for year in years:
                values = vendor_frame.filter(vendor_frame["hw_avail_year"] == year)[
                    column
                ].to_list()
                stats = box_stats(values)
                boxes.append(stats)
                rows.append(
                    {
                        "vendor": vendor,
                        "year": year,
                        "load_level": level,
                        "count": stats.count,
                        "median": stats.median,
                        "q25": stats.q25,
                        "q75": stats.q75,
                    }
                )
            box_series.append(
                BoxSeries(name=f"{level}%", x=years, boxes=boxes, width=0.2)
            )
        if years:
            charts[vendor.lower()] = BoxChart(
                box_series,
                reference_line=1.0,
                title=f"{vendor}: relative efficiency at 60-90 % load",
                x_label="Hardware Availability Date (Binned by Year)",
                y_label="Relative Efficiency (vs full load)",
            )
    data = Frame.from_records(rows)
    return FigureArtifact("figure4", "Relative efficiency distributions", data, charts)


def all_figures(unfiltered: Frame, filtered: Frame) -> list[FigureArtifact]:
    """Produce every figure of the paper in order."""
    return [
        figure1(unfiltered),
        figure2(filtered),
        figure3(filtered),
        figure4(filtered),
        figure5(filtered),
        figure6(filtered),
    ]
