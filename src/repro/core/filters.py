"""The Section II filter pipeline.

After parsing and consistency checking (1017 → 960), the paper keeps the
dataset comparable by excluding

* runs whose CPU was made by neither Intel nor AMD (9 runs),
* runs not on server or workstation CPUs, i.e. CPUs marketed neither as
  Xeon, Opteron nor EPYC (6 runs),
* runs with more than one node or more than two sockets (269 runs),

leaving 676 runs.  :func:`apply_paper_filters` reproduces that pipeline and
reports the per-step counts so they can be compared against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import FilterError
from ..frame import Frame
from ..frame.ops import and_masks, not_mask, or_masks

__all__ = ["FilterStep", "FilterReport", "paper_filter_steps", "apply_paper_filters"]


@dataclass(frozen=True)
class FilterStep:
    """One exclusion step: a name, a paper count and a predicate.

    The predicate returns a boolean mask of rows to *remove*.
    """

    name: str
    description: str
    paper_removed: int | None
    removes: Callable[[Frame], np.ndarray]


@dataclass(frozen=True)
class StepOutcome:
    """What one step removed."""

    step: FilterStep
    removed: int
    remaining: int


@dataclass(frozen=True)
class FilterReport:
    """Full pipeline outcome: per-step counts plus the initial/final sizes."""

    initial: int
    outcomes: tuple[StepOutcome, ...]

    @property
    def final(self) -> int:
        return self.outcomes[-1].remaining if self.outcomes else self.initial

    def removed_by(self, step_name: str) -> int:
        for outcome in self.outcomes:
            if outcome.step.name == step_name:
                return outcome.removed
        raise FilterError(f"no filter step named {step_name!r}")

    def to_rows(self) -> list[dict]:
        """Rows for a paper-vs-measured table."""
        rows = []
        for outcome in self.outcomes:
            rows.append(
                {
                    "step": outcome.step.name,
                    "description": outcome.step.description,
                    "paper_removed": outcome.step.paper_removed,
                    "removed": outcome.removed,
                    "remaining": outcome.remaining,
                }
            )
        return rows

    def describe(self) -> str:
        lines = [f"initial runs: {self.initial}"]
        for outcome in self.outcomes:
            paper = (
                f" (paper: {outcome.step.paper_removed})"
                if outcome.step.paper_removed is not None
                else ""
            )
            lines.append(
                f"- {outcome.step.name}: removed {outcome.removed}{paper}, "
                f"{outcome.remaining} remaining"
            )
        return "\n".join(lines)


def _non_intel_amd(frame: Frame) -> np.ndarray:
    return not_mask(frame["cpu_vendor"].isin(["Intel", "AMD"]))


def _non_server_cpu(frame: Frame) -> np.ndarray:
    intel_amd = frame["cpu_vendor"].isin(["Intel", "AMD"])
    server = frame["cpu_family"].isin(["Xeon", "Opteron", "EPYC"])
    return and_masks(intel_amd, not_mask(server))


def _multi_node_or_socket(frame: Frame) -> np.ndarray:
    nodes = frame["nodes"]
    sockets = frame["sockets_per_node"]
    multi_node = nodes > 1
    many_sockets = sockets > 2
    # Missing node/socket information also disqualifies a run from the
    # single-node comparison (conservative, mirrors the paper's treatment).
    missing = or_masks(nodes.isna(), sockets.isna())
    return or_masks(multi_node, many_sockets, missing)


def paper_filter_steps() -> list[FilterStep]:
    """The three content filters of Section II, in the paper's order."""
    return [
        FilterStep(
            name="non_intel_amd_cpu",
            description="CPU made by neither Intel nor AMD",
            paper_removed=9,
            removes=_non_intel_amd,
        ),
        FilterStep(
            name="non_server_cpu",
            description="CPU not marketed as Xeon, Opteron or EPYC",
            paper_removed=6,
            removes=_non_server_cpu,
        ),
        FilterStep(
            name="multi_node_or_gt2_sockets",
            description="more than one node or more than two sockets",
            paper_removed=269,
            removes=_multi_node_or_socket,
        ),
    ]


def apply_paper_filters(
    frame: Frame, steps: Sequence[FilterStep] | None = None
) -> tuple[Frame, FilterReport]:
    """Apply the filter pipeline, returning the kept runs and the report."""
    if steps is None:
        steps = paper_filter_steps()
    current = frame
    outcomes: list[StepOutcome] = []
    for step in steps:
        if len(current) == 0:
            outcomes.append(StepOutcome(step, 0, 0))
            continue
        removal_mask = np.asarray(step.removes(current), dtype=bool)
        if len(removal_mask) != len(current):
            raise FilterError(
                f"filter step {step.name!r} returned a mask of wrong length"
            )
        removed = int(removal_mask.sum())
        current = current.filter(~removal_mask)
        outcomes.append(StepOutcome(step, removed, len(current)))
    return current, FilterReport(initial=len(frame), outcomes=tuple(outcomes))
