"""Energy-proportionality scores.

The paper discusses energy proportionality qualitatively through the
relative-efficiency distributions of Figure 4.  This module adds the
quantitative scores commonly used in the literature the paper cites
(Hsu/Poole), computed per run from the ten graduated load levels:

* **EP score** — ``1 - (area between the normalised power curve and the
  ideal proportional line) / (area under the ideal line)``; 1.0 means
  perfectly proportional, 0.0 means completely flat power.
* **dynamic range** — idle power over full-load power subtracted from one
  (how much of the power budget actually scales).
* **linear deviation** — maximum absolute deviation of the normalised power
  curve from the proportional line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..frame import Column, Frame
from ..parser.fields import LOAD_LEVELS, level_field

__all__ = ["ProportionalityScore", "proportionality_scores", "attach_proportionality"]


@dataclass(frozen=True)
class ProportionalityScore:
    """Proportionality metrics of one run."""

    ep_score: float
    dynamic_range: float
    linear_deviation: float


def _run_scores(levels: np.ndarray, powers: np.ndarray, idle: float) -> ProportionalityScore:
    if np.any(np.isnan(powers)) or np.isnan(idle) or powers[0] <= 0:
        return ProportionalityScore(float("nan"), float("nan"), float("nan"))
    full = powers[0]  # levels are ordered 100 % first
    normalised = powers / full
    # Trapezoidal area between the measured curve and the proportional line,
    # evaluated over the measured load range [10 %, 100 %] plus the idle point.
    xs = np.concatenate(([0.0], levels[::-1] / 100.0))
    measured = np.concatenate(([idle / full], normalised[::-1]))
    ideal_curve = xs
    area_between = float(np.trapezoid(np.abs(measured - ideal_curve), xs))
    area_ideal = float(np.trapezoid(ideal_curve, xs))
    ep = 1.0 - area_between / area_ideal if area_ideal > 0 else float("nan")
    return ProportionalityScore(
        ep_score=ep,
        dynamic_range=1.0 - idle / full,
        linear_deviation=float(np.max(np.abs(measured - ideal_curve))),
    )


def proportionality_scores(frame: Frame) -> list[ProportionalityScore]:
    """Per-run proportionality scores (row order preserved)."""
    if "power_idle" not in frame:
        raise AnalysisError("frame has no power_idle column")
    levels = np.asarray(LOAD_LEVELS, dtype=np.float64)
    power_columns = [frame[level_field("power", level)] for level in LOAD_LEVELS]
    idle_column = frame["power_idle"]
    scores = []
    for i in range(len(frame)):
        powers = np.asarray(
            [np.nan if column[i] is None else float(column[i]) for column in power_columns]
        )
        idle = idle_column[i]
        idle_value = float("nan") if idle is None else float(idle)
        scores.append(_run_scores(levels, powers, idle_value))
    return scores


def attach_proportionality(frame: Frame) -> Frame:
    """Attach ``ep_score``, ``dynamic_range`` and ``linear_deviation`` columns."""
    scores = proportionality_scores(frame)
    return frame.with_columns(
        {
            "ep_score": Column.from_values([s.ep_score for s in scores], kind="float"),
            "dynamic_range": Column.from_values([s.dynamic_range for s in scores], kind="float"),
            "linear_deviation": Column.from_values(
                [s.linear_deviation for s in scores], kind="float"
            ),
        }
    )
