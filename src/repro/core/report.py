"""Paper-vs-measured report assembly.

``build_report`` runs every quantitative comparison of the reproduction —
the dataset funnel, the headline trend findings, Table I and the correlation
study — and renders them as a single text report plus machine-readable
frames.  EXPERIMENTS.md is generated from this output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..frame import Frame
from .correlationstudy import CorrelationStudy, run_correlation_study
from .filters import FilterReport, apply_paper_filters
from .tables import Table1Row, table1
from .trends import TrendFinding, headline_findings

__all__ = ["PaperComparison", "build_report"]


@dataclass(frozen=True)
class PaperComparison:
    """Everything the reproduction can compare against the paper."""

    filter_report: FilterReport
    findings: tuple[TrendFinding, ...]
    table1_rows: tuple[Table1Row, ...]
    correlation_study: CorrelationStudy | None
    unfiltered_runs: int
    filtered_runs: int

    # ------------------------------------------------------------------ #
    def findings_frame(self) -> Frame:
        return Frame.from_records(
            [
                {
                    "finding": finding.name,
                    "description": finding.description,
                    "paper": finding.paper_value,
                    "measured": finding.measured_value,
                    "relative_error": finding.relative_error,
                }
                for finding in self.findings
            ]
        )

    def filter_frame(self) -> Frame:
        return Frame.from_records(self.filter_report.to_rows())

    def table1_frame(self) -> Frame:
        return Frame.from_records(
            [
                {
                    "benchmark": row.benchmark,
                    "system": row.system,
                    "result": row.result,
                    "factor": row.factor,
                    "paper_result": row.paper_result,
                    "paper_factor": row.paper_factor,
                }
                for row in self.table1_rows
            ]
        )

    def to_text(self) -> str:
        lines = [
            "Reproduction report: 16 Years of SPEC Power (CLUSTER 2024)",
            "=" * 60,
            "",
            f"Parsed runs:   {self.unfiltered_runs}",
            f"Analysed runs: {self.filtered_runs}",
            "",
            "Filter pipeline (paper counts in parentheses):",
            self.filter_report.describe(),
            "",
            "Headline findings (paper vs measured):",
        ]
        for finding in self.findings:
            lines.append("  " + finding.describe())
        lines.append("")
        lines.append("Table I (paper vs measured):")
        for row in self.table1_rows:
            lines.append(
                f"  {row.benchmark:18s} {row.system:22s} "
                f"measured {row.result:>10.1f} (factor {row.factor:.2f}) "
                f"paper {row.paper_result or float('nan'):>8.0f} (factor {row.paper_factor:.2f})"
            )
        if self.correlation_study is not None:
            lines.append("")
            lines.append("Correlation study (Section IV):")
            lines.append(
                "  conclusive: "
                + ("yes" if self.correlation_study.is_conclusive() else
                   "no (matches the paper's 'remains inconclusive')")
            )
            for line in self.correlation_study.describe().splitlines():
                lines.append("  " + line)
        return "\n".join(lines) + "\n"


def build_report(unfiltered: Frame, include_table1: bool = True) -> PaperComparison:
    """Run the full comparison pipeline on a parsed, derived run frame."""
    if len(unfiltered) == 0:
        raise AnalysisError("cannot build a report from an empty dataset")
    filtered, filter_report = apply_paper_filters(unfiltered)
    findings = headline_findings(unfiltered, filtered)
    table_rows = tuple(table1()) if include_table1 else ()
    try:
        study = run_correlation_study(filtered)
    except AnalysisError:
        study = None
    return PaperComparison(
        filter_report=filter_report,
        findings=tuple(findings),
        table1_rows=table_rows,
        correlation_study=study,
        unfiltered_runs=len(unfiltered),
        filtered_runs=len(filtered),
    )
