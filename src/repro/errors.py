"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parsing problems, data-frame misuse and
model configuration issues.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FrameError",
    "ColumnError",
    "GroupByError",
    "JoinError",
    "CSVError",
    "StatsError",
    "ParseError",
    "FieldError",
    "ValidationError",
    "ModelError",
    "CatalogError",
    "SimulationError",
    "ArtifactError",
    "CampaignError",
    "InjectedFault",
    "SessionError",
    "ReportError",
    "PlotError",
    "AnalysisError",
    "FilterError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class FrameError(ReproError):
    """Invalid operation on a :class:`repro.frame.Frame`."""


class ColumnError(FrameError):
    """Invalid operation on a :class:`repro.frame.Column`."""


class GroupByError(FrameError):
    """Invalid group-by specification or aggregation."""


class JoinError(FrameError):
    """Invalid join specification."""


class CSVError(FrameError):
    """Malformed CSV input or unsupported CSV output request."""


class StatsError(ReproError):
    """Invalid statistical computation (e.g. regression on empty data)."""


class ParseError(ReproError):
    """A SPEC result file could not be parsed."""

    def __init__(self, message: str, path: str | None = None, line: int | None = None):
        self.path = path
        self.line = line
        location = ""
        if path is not None:
            location = f" [{path}" + (f":{line}" if line is not None else "") + "]"
        super().__init__(message + location)


class FieldError(ParseError):
    """A required field is missing or has an unusable value."""


class ValidationError(ReproError):
    """A parsed run failed a consistency check."""


class ModelError(ReproError):
    """Invalid power/performance model configuration."""


class CatalogError(ReproError):
    """Unknown CPU or platform requested from the market catalog."""


class SimulationError(ReproError):
    """The benchmark simulation could not be carried out."""


class ArtifactError(ReproError):
    """Malformed key or unreadable entry in a content-addressed store."""


class CampaignError(ReproError):
    """Invalid campaign specification or unusable campaign store."""


class InjectedFault(ReproError):
    """A deliberately injected fault (:mod:`repro.faults`) fired.

    Raised only when a fault plan is installed — production runs never see
    it.  Derives from :class:`ReproError` so every per-unit error-capture
    path treats an injected failure exactly like a real one, which is the
    point: the chaos suite proves the *same* recovery machinery handles
    both.
    """


class SessionError(ReproError):
    """Invalid session configuration or unusable workspace."""


class ReportError(ReproError):
    """A result report could not be rendered."""


class PlotError(ReproError):
    """A chart could not be rendered."""


class AnalysisError(ReproError):
    """The analysis pipeline received inconsistent inputs."""


class FilterError(AnalysisError):
    """The filter pipeline was configured incorrectly."""
