"""Unit parsing and formatting helpers.

SPEC result files report quantities as loosely formatted strings:
``"2,200"`` operations, ``"Dec-2012"`` availability dates, ``"2.25 GHz"``
frequencies, ``"350 W"`` TDP values.  This module centralises the parsing
and formatting of those representations so the parser, the report writer and
the analysis code agree on one canonical numeric form:

* power in watts (float),
* frequency in megahertz (float),
* dates as :class:`MonthDate` (year, month) — SPEC reports only publish a
  month-level "Hardware Availability" granularity,
* operation counts as plain floats (``ssj_ops`` can exceed 2**31).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from functools import total_ordering

from .errors import FieldError

__all__ = [
    "MonthDate",
    "parse_month_date",
    "format_month_date",
    "parse_number",
    "parse_int",
    "parse_power_watts",
    "parse_frequency_mhz",
    "parse_percent",
    "format_number",
    "year_fraction",
    "MONTH_NAMES",
]

#: Three-letter month abbreviations in SPEC report order (1-indexed).
MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)

_MONTH_INDEX = {name.lower(): i + 1 for i, name in enumerate(MONTH_NAMES)}
# Common long-form month names also appear in hand-edited reports.
_MONTH_INDEX.update(
    {
        "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
        "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
        "november": 11, "december": 12,
    }
)

_NUMBER_RE = re.compile(r"[-+]?\d[\d,]*(?:\.\d+)?(?:[eE][-+]?\d+)?")


@total_ordering
@dataclass(frozen=True)
class MonthDate:
    """A month-granularity date, as used for SPEC availability fields."""

    year: int
    month: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise FieldError(f"month out of range: {self.month}")
        if not 1900 <= self.year <= 2200:
            raise FieldError(f"year out of range: {self.year}")

    def __lt__(self, other: "MonthDate") -> bool:
        if not isinstance(other, MonthDate):
            return NotImplemented
        return (self.year, self.month) < (other.year, other.month)

    def __str__(self) -> str:
        return format_month_date(self)

    @property
    def decimal_year(self) -> float:
        """The date as a fractional year (mid-month convention)."""
        return self.year + (self.month - 0.5) / 12.0

    def months_since(self, other: "MonthDate") -> int:
        """Number of whole months between ``self`` and ``other``."""
        return (self.year - other.year) * 12 + (self.month - other.month)

    def shift(self, months: int) -> "MonthDate":
        """Return a new :class:`MonthDate` shifted by ``months`` months."""
        index = self.year * 12 + (self.month - 1) + months
        return MonthDate(index // 12, index % 12 + 1)


def parse_month_date(text: str) -> MonthDate:
    """Parse a SPEC-style month/year date.

    Accepted forms include ``"Dec-2012"``, ``"Dec 2012"``, ``"December 2012"``,
    ``"2012-12"`` and ``"12/2012"``.
    """
    raw = text.strip()
    if not raw:
        raise FieldError("empty date")
    cleaned = raw.replace(",", " ")

    match = re.fullmatch(r"([A-Za-z]+)[\s\-/]+(\d{4})", cleaned.strip())
    if match:
        name, year = match.group(1).lower(), int(match.group(2))
        if name not in _MONTH_INDEX:
            raise FieldError(f"unknown month name in date: {raw!r}")
        return MonthDate(year, _MONTH_INDEX[name])

    match = re.fullmatch(r"(\d{4})[\s\-/](\d{1,2})", cleaned.strip())
    if match:
        return MonthDate(int(match.group(1)), int(match.group(2)))

    match = re.fullmatch(r"(\d{1,2})[\s\-/](\d{4})", cleaned.strip())
    if match:
        return MonthDate(int(match.group(2)), int(match.group(1)))

    match = re.fullmatch(r"(\d{4})", cleaned.strip())
    if match:
        # Year-only dates are ambiguous; the validation layer flags them, but
        # we still return a canonical value (mid-year) for inspection.
        raise FieldError(f"ambiguous year-only date: {raw!r}")

    raise FieldError(f"unparseable date: {raw!r}")


def format_month_date(date: MonthDate) -> str:
    """Format a :class:`MonthDate` in SPEC report style, e.g. ``"Dec-2012"``."""
    return f"{MONTH_NAMES[date.month - 1]}-{date.year}"


def parse_number(text: str) -> float:
    """Parse a number that may contain thousands separators.

    ``"1,234,567.8"`` → ``1234567.8``.  Raises :class:`FieldError` when no
    numeric token is present.
    """
    raw = text.strip()
    match = _NUMBER_RE.search(raw)
    if match is None:
        raise FieldError(f"no number found in {text!r}")
    return float(match.group(0).replace(",", ""))


def parse_int(text: str) -> int:
    """Parse an integer, tolerating thousands separators and surrounding text."""
    value = parse_number(text)
    if not float(value).is_integer():
        raise FieldError(f"expected an integer, got {text!r}")
    return int(value)


def parse_power_watts(text: str) -> float:
    """Parse a power value and normalise to watts.

    Accepts ``"250"``, ``"250 W"``, ``"250W"``, ``"1.1 kW"``.
    """
    raw = text.strip()
    value = parse_number(raw)
    lowered = raw.lower().replace(" ", "")
    if lowered.endswith("kw"):
        value *= 1000.0
    elif lowered.endswith("mw") and not lowered.endswith("mw)"):
        # Milliwatts never appear for node power; treat "mW" literally.
        value /= 1000.0
    if value < 0:
        raise FieldError(f"negative power: {text!r}")
    return value


def parse_frequency_mhz(text: str) -> float:
    """Parse a CPU frequency and normalise to MHz.

    Accepts ``"2200"`` (already MHz), ``"2.2 GHz"``, ``"2200 MHz"``.
    Bare numbers below 10 are interpreted as GHz (SPEC reports list the
    nominal frequency either way).
    """
    raw = text.strip()
    value = parse_number(raw)
    lowered = raw.lower()
    if "ghz" in lowered:
        return value * 1000.0
    if "mhz" in lowered:
        return value
    if value < 10.0:
        return value * 1000.0
    return value


def parse_percent(text: str) -> float:
    """Parse a percentage such as ``"99.8%"`` into a fraction (0.998)."""
    value = parse_number(text)
    return value / 100.0


def format_number(value: float, decimals: int = 0) -> str:
    """Format a number with thousands separators, SPEC-report style."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "NC"
    if decimals <= 0:
        return f"{value:,.0f}"
    return f"{value:,.{decimals}f}"


def year_fraction(date: MonthDate) -> float:
    """Alias for :attr:`MonthDate.decimal_year` (kept for API symmetry)."""
    return date.decimal_year
