"""``spectrends`` command-line interface.

Every sub-command is a thin wrapper over one :class:`repro.session.Session`:
the global ``--workspace`` flag names a persistent session workspace, which
gives each invocation content-hash caching for free — ``spectrends analyze
--workspace ws/ --corpus corpus/`` parses the corpus once, and every later
``analyze``/``figures``/``parse`` over the unchanged corpus reloads the
derived dataset instead of re-parsing it.  Without ``--workspace`` an
ephemeral workspace is used and removed on exit.

Sub-commands mirror the stages of the paper's artifact:

* ``spectrends generate --output corpus/ --runs 960`` — write a synthetic
  corpus of result files,
* ``spectrends parse --corpus corpus/ --output runs.csv`` — parse and
  validate the corpus, writing the flat run table (with ``--runs``/``--seed``
  instead of ``--corpus``, a synthetic corpus is generated first),
* ``spectrends analyze --corpus corpus/`` — run the full analysis and print
  the paper-vs-measured report,
* ``spectrends figures --corpus corpus/ --output figures/`` — regenerate
  Figures 1–6 as SVG + CSV,
* ``spectrends table1`` — print the Table I comparison,
* ``spectrends campaign run|status|resume --store store/`` — execute a
  declarative scenario sweep with content-hash caching and resumption
  (``--shard-size N`` streams it shard by shard in bounded memory, with a
  status line per flushed shard; ``--workers N`` fans the shards out
  across lease-coordinated worker processes),
* ``spectrends campaign worker --store store/`` — attach one more worker
  to a store another invocation is executing (or left unfinished),
* ``spectrends campaign query --store store/ --where "watts > 250"`` —
  filter/project a finished streaming store out of core: the lazy plan
  engine pushes the predicate into each shard's columnar artifact and
  reads only the bytes the answer needs,
* ``spectrends campaign doctor --store store/ [--repair]`` — scan a store
  for torn logs, checksum mismatches, orphaned artifacts and stale
  leases; repairs are conservative and never invent data,
* ``spectrends serve --root svc/`` — long-running campaign service:
  submissions over a local socket, shared-cache dedup across clients,
  streaming progress events.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """Argparse type for flags that must be >= 1 (e.g. ``--shard-size``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _where_literal(raw: str):
    """A ``--where`` right-hand side as the value the column would hold."""
    text = raw.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in {"'", '"'}:
        return text[1:-1]
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_where(text: str):
    """One ``--where`` clause (``column OP value``) as a plan predicate.

    Supports the six comparison operators plus ``== null`` / ``!= null``
    for missingness; unquoted values parse as bool/int/float when they
    can, and as the literal string otherwise.
    """
    import re

    from ..errors import CampaignError
    from ..frame.plan import col

    match = re.match(
        r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(==|!=|<=|>=|<|>)\s*(.+?)\s*$", text
    )
    if not match:
        raise CampaignError(
            f"cannot parse --where {text!r}; expected 'column OP value' "
            "with OP one of == != < <= > >"
        )
    name, op, raw = match.group(1), match.group(2), match.group(3)
    column = col(name)
    if raw.strip().lower() in {"null", "none"} and op in {"==", "!="}:
        return column.isna() if op == "==" else column.notna()
    value = _where_literal(raw)
    import operator

    ops = {
        "==": operator.eq,
        "!=": operator.ne,
        "<": operator.lt,
        "<=": operator.le,
        ">": operator.gt,
        ">=": operator.ge,
    }
    return ops[op](column, value)


def _add_session_flags(parser: argparse.ArgumentParser) -> None:
    """Mirror the global session flags onto a subcommand.

    ``SUPPRESS`` defaults keep the subcommand from clobbering a value given
    before the command name, so both ``spectrends --workspace ws analyze``
    and ``spectrends analyze --workspace ws`` work.
    """
    parser.add_argument(
        "--workspace", default=argparse.SUPPRESS,
        help="session workspace directory (cached artifacts are reused "
             "across invocations)",
    )
    parser.add_argument(
        "--jobs", type=int, default=argparse.SUPPRESS,
        help="worker processes for corpus generation/parsing",
    )


def _add_corpus_source(parser: argparse.ArgumentParser) -> None:
    """Flags selecting the corpus a command reads.

    ``--corpus`` names an existing directory; without it, generation is
    implied — a synthetic corpus is produced through the session (cached in
    the workspace) from ``--runs``/``--seed``.
    """
    parser.add_argument(
        "--corpus",
        help="directory of .txt reports (omit to generate a synthetic corpus)",
    )
    parser.add_argument(
        "--runs", type=int, default=960,
        help="runs for the generated corpus when --corpus is omitted "
             "(default: 960, as in the paper)",
    )
    parser.add_argument(
        "--seed", type=int, default=2024,
        help="seed for the generated corpus when --corpus is omitted",
    )
    parser.add_argument(
        "--text-path", action="store_true",
        help="derive the dataset through the full render->parse text "
             "pipeline instead of the parse-bypass fast path (synthetic "
             "corpora only; materialises the report files in the workspace)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spectrends",
        description="Reproduction of '16 Years of SPEC Power' (CLUSTER 2024)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for corpus generation/parsing (default: 1)",
    )
    parser.add_argument(
        "--workspace", default=None,
        help="session workspace directory; artifacts (corpora, parsed "
             "datasets) are cached here by content hash and reused across "
             "invocations (default: ephemeral)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic result-file corpus")
    generate.add_argument("--output", required=True, help="output directory for .txt reports")
    generate.add_argument("--runs", type=int, default=960,
                          help="number of defect-free runs (default: 960, as in the paper)")
    generate.add_argument("--seed", type=int, default=2024)
    _add_session_flags(generate)

    parse = sub.add_parser("parse", help="parse a corpus into the flat run table (CSV)")
    _add_corpus_source(parse)
    parse.add_argument("--output", required=True, help="CSV file for the parsed run table")
    _add_session_flags(parse)

    analyze = sub.add_parser("analyze", help="run the full analysis and print the report")
    _add_corpus_source(analyze)
    analyze.add_argument("--no-table1", action="store_true", help="skip the Table I computation")
    _add_session_flags(analyze)

    figures = sub.add_parser("figures", help="regenerate Figures 1-6")
    _add_corpus_source(figures)
    figures.add_argument("--output", required=True, help="directory for SVG/CSV figure files")
    _add_session_flags(figures)

    sub.add_parser("table1", help="print the Table I comparison")

    campaign = sub.add_parser(
        "campaign", help="declarative scenario sweeps with caching and resumption"
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)
    crun = csub.add_parser("run", help="expand a spec and execute missing units")
    crun.add_argument("--spec", required=True, help="JSON campaign spec file")
    crun.add_argument("--store", default=None,
                      help="campaign store directory (default: placed in the "
                           "session workspace, keyed by spec content)")
    crun.add_argument("--csv", help="also write the campaign frame to this CSV file")
    crun.add_argument("--max-units", type=int, default=None,
                      help="bound on new simulations this invocation (smoke runs)")
    crun.add_argument("--no-batch", action="store_true",
                      help="force the scalar per-unit simulator instead of the "
                           "vectorized batch kernel")
    crun.add_argument("--shard-size", type=_positive_int, default=None,
                      help="execute the sweep in shards of N units, flushing "
                           "each shard to the store before the next starts "
                           "(bounded-memory streaming; default: unsharded)")
    crun.add_argument("--workers", type=_positive_int, default=None,
                      help="fan shards out across N lease-coordinated worker "
                           "processes (requires --shard-size; results are "
                           "bit-identical to the serial run)")
    crun.add_argument("--retries", type=_positive_int, default=None,
                      help="attempts per unit before it is quarantined as a "
                           "poison unit (requires --shard-size; default: one "
                           "attempt, failures stay pending)")
    _add_session_flags(crun)
    cresume = csub.add_parser(
        "resume", help="continue an interrupted campaign from its store"
    )
    cresume.add_argument("--store", required=True)
    cresume.add_argument("--csv", help="also write the campaign frame to this CSV file")
    cresume.add_argument("--max-units", type=int, default=None)
    cresume.add_argument("--no-batch", action="store_true",
                         help="force the scalar per-unit simulator instead of the "
                              "vectorized batch kernel")
    cresume.add_argument("--shard-size", type=_positive_int, default=None,
                         help="resume shard by shard with this layout "
                              "(default: the layout recorded in the store, "
                              "else unsharded)")
    cresume.add_argument("--workers", type=_positive_int, default=None,
                         help="resume with N lease-coordinated worker "
                              "processes (sharded stores only)")
    cresume.add_argument("--retries", type=_positive_int, default=None,
                         help="attempts per unit before it is quarantined as "
                              "a poison unit (sharded stores only)")
    _add_session_flags(cresume)
    cworker = csub.add_parser(
        "worker",
        help="attach one claim-and-execute worker to an initialised "
             "streaming store (coordination is entirely through the "
             "store's shard ledger; run several against one store)",
    )
    cworker.add_argument("--store", required=True,
                         help="campaign store directory (must already hold a "
                              "streaming run's spec + shard layout)")
    cworker.add_argument("--worker-id", default=None,
                         help="stable name for this worker's lease records "
                              "(default: pid<PID>)")
    cworker.add_argument("--lease-ttl", type=float, default=None,
                         help="seconds before an unrefreshed claim becomes "
                              "reclaimable (default: 120; dead workers are "
                              "reclaimed immediately regardless)")
    cworker.add_argument("--no-batch", action="store_true",
                         help="force the scalar per-unit simulator instead "
                              "of the vectorized batch kernel")
    cworker.add_argument("--retries", type=_positive_int, default=None,
                         help="attempts per unit before it is quarantined "
                              "as a poison unit (default: one attempt)")
    cstatus = csub.add_parser("status", help="report campaign progress")
    cstatus.add_argument("--store", required=True)
    cquery = csub.add_parser(
        "query", help="filter/project a streamed campaign store through the "
                      "lazy plan engine, out of core (reads only the shard "
                      "bytes the plan needs)"
    )
    cquery.add_argument("--store", required=True, help="campaign store directory")
    cquery.add_argument("--where", action="append", default=None, metavar="EXPR",
                        help='row predicate like "watts > 250" or '
                             '"campaign_workload == ssj"; repeatable '
                             "(predicates conjoin)")
    cquery.add_argument("--columns", default=None,
                        help="comma-separated output columns "
                             "(default: every column)")
    cquery.add_argument("--limit", type=_positive_int, default=None,
                        help="stop after the first N matching rows")
    cquery.add_argument("--csv", default=None,
                        help="write matching rows to this file instead of stdout")
    cquery.add_argument("--explain", action="store_true",
                        help="print the optimized plan instead of executing it")
    cwatch = csub.add_parser(
        "watch", help="live per-shard progress, throughput and streaming "
                      "quantiles of a campaign store"
    )
    cwatch.add_argument("--store", required=True, help="campaign store directory")
    cwatch.add_argument("--once", action="store_true",
                        help="render one snapshot and exit (CI/smoke mode)")
    cwatch.add_argument("--interval", type=float, default=2.0,
                        help="seconds between repaints (default: 2)")
    cwatch.add_argument("--metric", default=None,
                        help="frame column whose streaming quantiles to show "
                             "(default: the headline efficiency metric)")
    cwatch.add_argument("--width", type=_positive_int, default=72,
                        help="render width in characters (default: 72)")
    cdoctor = csub.add_parser(
        "doctor", help="scan a campaign store for corruption, orphaned "
                       "artifacts and stale leases; --repair fixes what it "
                       "finds without inventing data"
    )
    cdoctor.add_argument("--store", required=True, help="campaign store directory")
    cdoctor.add_argument("--repair", action="store_true",
                         help="apply conservative repairs (atomic log rewrites, "
                              "damaged-artifact deletion + re-execution markers, "
                              "stale-lease release)")
    csubmit = csub.add_parser(
        "submit", help="submit a spec to a running campaign service "
                       "(fair-share scheduled against every other live job)"
    )
    csubmit.add_argument("--root", required=True,
                         help="service root directory (reads service.json "
                              "for the address)")
    csubmit.add_argument("--spec", required=True, help="JSON campaign spec file")
    csubmit.add_argument("--shard-size", type=_positive_int, default=None,
                         help="shard layout for the job (default: the "
                              "service's; part of the job identity)")
    csubmit.add_argument("--workers", type=_positive_int, default=None,
                         help="cap on the job's concurrently in-flight "
                              "shards (default: the whole pool)")
    csubmit.add_argument("--priority", choices=("high", "normal", "low"),
                         default=None,
                         help="fair-share class: deficit-round-robin weight "
                              "4/2/1 (default: normal)")
    csubmit.add_argument("--ttl", type=float, default=None,
                         help="seconds to retain the finished job's store "
                              "before eviction (default: the service's)")
    csubmit.add_argument("--wait", action="store_true",
                         help="stream events until the job is terminal and "
                              "print its result summary")
    ccancel = csub.add_parser(
        "cancel", help="cancel a queued/running service job: in-flight "
                       "shards drain, leases release, the partial store "
                       "stays resumable"
    )
    ccancel.add_argument("--root", required=True, help="service root directory")
    ccancel.add_argument("--job", required=True, help="job id to cancel")
    cjobs = csub.add_parser(
        "jobs", help="list a running campaign service's jobs and states"
    )
    cjobs.add_argument("--root", required=True, help="service root directory")

    serve = sub.add_parser(
        "serve",
        help="long-running campaign service: accept spec submissions over a "
             "local socket, dedup identical units through one shared result "
             "cache, stream progress events to clients",
    )
    serve.add_argument("--root", required=True,
                       help="service root directory (per-job stores under "
                            "jobs/, shared unit cache under results/)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind (default: 0 = OS-assigned; the "
                            "bound address is printed on startup)")
    serve.add_argument("--workers", type=_positive_int, default=None,
                       help="default per-job cap on concurrently in-flight "
                            "shards (default: the whole pool)")
    serve.add_argument("--shard-size", type=_positive_int, default=None,
                       help="shard layout for submitted jobs (default: 256)")
    serve.add_argument("--pool", type=_positive_int, default=None,
                       help="shared campaign-worker processes all jobs are "
                            "fair-share scheduled over (default: cpu count, "
                            "clamped to [2, 8])")
    serve.add_argument("--job-ttl", type=float, default=None,
                       help="seconds to retain a finished job's store before "
                            "evicting it from the service root (default: "
                            "keep forever)")

    profile = sub.add_parser(
        "profile", help="inspect span telemetry captured with REPRO_PROFILE=1"
    )
    psub = profile.add_subparsers(dest="profile_command", required=True)
    preport = psub.add_parser(
        "report", help="per-span self-time table from an events.jsonl log"
    )
    source = preport.add_mutually_exclusive_group()
    source.add_argument("--events", help="path to an events.jsonl file")
    source.add_argument("--store", help="campaign store whose events.jsonl to read")
    preport.add_argument("--top", type=_positive_int, default=15,
                         help="span names to list (default: 15)")
    _add_session_flags(preport)  # --workspace ws reads ws/events.jsonl
    return parser


def _retry_from_args(args: argparse.Namespace):
    """The :class:`RetryPolicy` behind ``--retries N`` (None when unset)."""
    retries = getattr(args, "retries", None)
    if retries is None:
        return None
    from ..faults import RetryPolicy

    return RetryPolicy(max_attempts=retries)


def _open_session(args: argparse.Namespace):
    """The session behind this invocation (policy from --jobs/--no-batch)."""
    from ..session.policy import ExecutionPolicy
    from ..session.session import Session

    policy = ExecutionPolicy.from_jobs(
        args.jobs,
        batch=not getattr(args, "no_batch", False),
        shard_size=getattr(args, "shard_size", None),
        retry=_retry_from_args(args),
    )
    return Session(workspace=args.workspace, policy=policy)


def _shard_progress(outcome, total_shards: int) -> None:
    """Streaming status line: one flushed (or reloaded) shard per line."""
    if outcome.reloaded:
        detail = "reloaded from store"
    else:
        detail = f"{outcome.cache_hits} cached, {outcome.simulated} simulated"
    print(
        f"  shard {outcome.index + 1}/{total_shards}: "
        f"{outcome.n_rows}/{outcome.n_units} rows ({detail})",
        flush=True,
    )


def _dataset(session, args: argparse.Namespace):
    """The dataset handle a corpus-reading command operates on."""
    text_path = getattr(args, "text_path", False)
    if args.corpus is not None:
        return session.dataset(corpus=args.corpus, text_path=text_path)
    return session.dataset(runs=args.runs, seed=args.seed, text_path=text_path)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    with _open_session(args) as session:
        return _dispatch(session, args)


def _dispatch(session, args: argparse.Namespace) -> int:
    if args.command == "generate":
        report = session.corpus(
            runs=args.runs, seed=args.seed, directory=args.output
        ).result()
        print(report.describe())
        return 0

    if args.command == "parse":
        dataset = _dataset(session, args)
        frame = dataset.result()
        print(dataset.summary().describe())
        frame.to_csv(args.output)
        print(f"wrote {len(frame)} runs x {len(frame.columns)} columns to {args.output}")
        return 0

    if args.command == "analyze":
        result = session.analysis(
            _dataset(session, args), table1=not args.no_table1
        ).result()
        print(result.summary())
        return 0

    if args.command == "figures":
        result = session.analysis(
            _dataset(session, args), table1=False, figures=True
        ).result()
        written = result.save_figures(args.output)
        for path in written:
            print(f"wrote {path}")
        return 0

    if args.command == "campaign":
        from ..errors import CampaignError

        # A missing or corrupt store is an operator mistake, not a crash:
        # report it as one line on stderr instead of a traceback.
        try:
            if args.campaign_command in ("submit", "cancel", "jobs"):
                from ..service import ServiceClient

                client = ServiceClient.for_root(args.root)
                if args.campaign_command == "submit":
                    import json
                    from pathlib import Path

                    payload = json.loads(
                        Path(args.spec).read_text(encoding="utf-8")
                    )
                    job = client.submit(
                        payload,
                        shard_size=args.shard_size,
                        workers=args.workers,
                        priority=args.priority,
                        ttl=args.ttl,
                    )
                    print(
                        f"job {job['job']}: state={job['state']} "
                        f"n_units={job['n_units']} "
                        f"priority={job['priority']} "
                        f"deduped={str(job['deduped']).lower()}"
                    )
                    if args.wait:
                        result = client.wait(job["job"])
                        print(
                            f"completed {result['completed']}"
                            f"/{result['total_units']} units in "
                            f"{result['total_shards']} shard(s) "
                            f"(cache hits {result['cache_hits']}, "
                            f"simulated {result['simulated']}, "
                            f"reloaded {result.get('reloaded', 0)})"
                        )
                    return 0
                if args.campaign_command == "cancel":
                    response = client.cancel(args.job)
                    print(f"job {response['job']}: {response['state']}")
                    return 0
                for job in client.jobs():
                    line = (
                        f"{job['job']}  {job['state']:<11} "
                        f"units={job['n_units']} priority={job['priority']}"
                    )
                    if job.get("evicted"):
                        line += " evicted"
                    print(line)
                return 0
            if args.campaign_command == "status":
                from ..campaign import CampaignStore

                print(CampaignStore(args.store).status().describe())
                return 0
            if args.campaign_command == "watch":
                from ..obs.watch import watch

                watch(
                    args.store,
                    once=args.once,
                    interval=args.interval,
                    metric=args.metric,
                    width=args.width,
                )
                return 0
            if args.campaign_command == "worker":
                import os

                from ..campaign import run_worker
                from ..campaign.leases import DEFAULT_LEASE_TTL

                worker_id = args.worker_id or f"pid{os.getpid()}"
                ttl = DEFAULT_LEASE_TTL if args.lease_ttl is None else args.lease_ttl
                shards = run_worker(
                    args.store,
                    worker_id,
                    batch=not args.no_batch,
                    lease_ttl=ttl,
                    handle_sigterm=True,
                    retry=_retry_from_args(args),
                )
                print(f"worker {worker_id}: flushed {shards} shard(s)")
                return 0
            if args.campaign_command == "doctor":
                from ..campaign import doctor_store

                report = doctor_store(args.store, repair=args.repair)
                print(report.describe())
                return 0 if not report.unresolved else 1
            if args.campaign_command == "query":
                from ..campaign import scan_shards
                from ..frame.csvio import frame_to_csv_text

                plan = scan_shards(args.store)
                if args.where:
                    for clause in args.where:
                        plan = plan.filter(_parse_where(clause))
                if args.columns:
                    names = [c.strip() for c in args.columns.split(",") if c.strip()]
                    plan = plan.select(names)
                if args.limit is not None:
                    plan = plan.head(args.limit)
                if args.explain:
                    print(plan.explain())
                    return 0
                frame = plan.collect()
                if args.csv:
                    frame.to_csv(args.csv)
                    print(f"wrote {len(frame)} rows to {args.csv}")
                else:
                    sys.stdout.write(frame_to_csv_text(frame))
                return 0
            if args.campaign_command == "run":
                if args.store is None and args.workspace is None:
                    print(
                        "error: campaign run needs --store or --workspace "
                        "(an ephemeral workspace would discard the store on exit)",
                        file=sys.stderr,
                    )
                    return 2
                if args.workers is not None and args.shard_size is None:
                    print(
                        "error: --workers needs --shard-size (shards are "
                        "the unit of distribution)",
                        file=sys.stderr,
                    )
                    return 2
                if args.retries is not None and args.shard_size is None:
                    print(
                        "error: --retries needs --shard-size (retry rounds "
                        "and quarantine are per-shard mechanics)",
                        file=sys.stderr,
                    )
                    return 2
                handle = session.campaign(
                    args.spec,
                    store=args.store,
                    max_units=args.max_units,
                    progress=_shard_progress,
                    workers=args.workers,
                )
                result = handle.result()
            else:  # resume
                from ..campaign import (
                    CampaignStore,
                    resume_campaign,
                    resume_streaming,
                )

                # A store that recorded a shard layout resumes at shard
                # granularity; --shard-size overrides (or enables) it.
                shard_size = args.shard_size
                if shard_size is None:
                    shard_size = CampaignStore(args.store).stored_shard_size()
                if shard_size is not None:
                    result = resume_streaming(
                        args.store,
                        shard_size=shard_size,
                        max_units=args.max_units,
                        policy=session.policy,
                        progress=_shard_progress,
                        workers=args.workers,
                    )
                else:
                    result = resume_campaign(
                        args.store,
                        max_units=args.max_units,
                        policy=session.policy,
                    )
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.describe())
        if args.csv:
            from ..campaign import StreamingCampaignResult

            # Streaming CSV export re-reads the shard artifacts, so it can
            # hit the same store corruption the run/resume block guards —
            # keep it one clean line too.
            try:
                if isinstance(result, StreamingCampaignResult):
                    if result.completed:
                        rows = result.write_csv(args.csv)
                        print(f"wrote {rows} rows to {args.csv}")
                    else:
                        print(f"no completed units; {args.csv} not written")
                elif len(result.frame):
                    result.frame.to_csv(args.csv)
                    print(f"wrote {len(result.frame)} rows to {args.csv}")
                else:
                    print(f"no completed units; {args.csv} not written")
            except CampaignError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        return 0 if not result.failures else 2

    if args.command == "serve":
        from ..service import serve_forever

        return serve_forever(
            root=args.root,
            host=args.host,
            port=args.port,
            workers=args.workers,
            shard_size=args.shard_size,
            pool=args.pool,
            job_ttl=args.job_ttl,
        )

    if args.command == "profile":
        from ..errors import CampaignError
        from ..obs.profile import (
            aggregate_spans,
            load_events,
            render_profile,
            resolve_events_path,
        )

        try:
            path = resolve_events_path(
                events=args.events, workspace=args.workspace, store=args.store
            )
            stats = aggregate_spans(load_events(path))
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_profile(stats, top=args.top))
        return 0

    if args.command == "table1":
        for row in session.table1():
            print(
                f"{row.benchmark:18s} {row.system:24s} {row.cpu_model:28s} "
                f"result {row.result:>10.1f} factor {row.factor:.2f} "
                f"(paper {row.paper_result:.0f} / {row.paper_factor:.2f})"
            )
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
