"""``spectrends`` command-line interface.

Sub-commands mirror the stages of the paper's artifact:

* ``spectrends generate --output corpus/ --runs 960`` — write a synthetic
  corpus of result files,
* ``spectrends parse --corpus corpus/ --output runs.csv`` — parse and
  validate the corpus, writing the flat run table,
* ``spectrends analyze --corpus corpus/`` — run the full analysis and print
  the paper-vs-measured report,
* ``spectrends figures --corpus corpus/ --output figures/`` — regenerate
  Figures 1–6 as SVG + CSV,
* ``spectrends table1`` — print the Table I comparison,
* ``spectrends campaign run|status|resume --store store/`` — execute a
  declarative scenario sweep with content-hash caching and resumption.
"""

from __future__ import annotations

import argparse
import sys

from ..parallel import ParallelConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spectrends",
        description="Reproduction of '16 Years of SPEC Power' (CLUSTER 2024)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for corpus generation/parsing (default: 1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic result-file corpus")
    generate.add_argument("--output", required=True, help="output directory for .txt reports")
    generate.add_argument("--runs", type=int, default=960,
                          help="number of defect-free runs (default: 960, as in the paper)")
    generate.add_argument("--seed", type=int, default=2024)

    parse = sub.add_parser("parse", help="parse a corpus into the flat run table (CSV)")
    parse.add_argument("--corpus", required=True, help="directory of .txt reports")
    parse.add_argument("--output", required=True, help="CSV file for the parsed run table")

    analyze = sub.add_parser("analyze", help="run the full analysis and print the report")
    analyze.add_argument("--corpus", required=True)
    analyze.add_argument("--no-table1", action="store_true", help="skip the Table I computation")

    figures = sub.add_parser("figures", help="regenerate Figures 1-6")
    figures.add_argument("--corpus", required=True)
    figures.add_argument("--output", required=True, help="directory for SVG/CSV figure files")

    sub.add_parser("table1", help="print the Table I comparison")

    campaign = sub.add_parser(
        "campaign", help="declarative scenario sweeps with caching and resumption"
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)
    crun = csub.add_parser("run", help="expand a spec and execute missing units")
    crun.add_argument("--spec", required=True, help="JSON campaign spec file")
    crun.add_argument("--store", required=True, help="campaign store directory")
    crun.add_argument("--csv", help="also write the campaign frame to this CSV file")
    crun.add_argument("--max-units", type=int, default=None,
                      help="bound on new simulations this invocation (smoke runs)")
    crun.add_argument("--no-batch", action="store_true",
                      help="force the scalar per-unit simulator instead of the "
                           "vectorized batch kernel")
    cresume = csub.add_parser(
        "resume", help="continue an interrupted campaign from its store"
    )
    cresume.add_argument("--store", required=True)
    cresume.add_argument("--csv", help="also write the campaign frame to this CSV file")
    cresume.add_argument("--max-units", type=int, default=None)
    cresume.add_argument("--no-batch", action="store_true",
                         help="force the scalar per-unit simulator instead of the "
                              "vectorized batch kernel")
    cstatus = csub.add_parser("status", help="report campaign progress")
    cstatus.add_argument("--store", required=True)
    return parser


def _parallel(args: argparse.Namespace) -> ParallelConfig:
    if args.jobs and args.jobs > 1:
        return ParallelConfig(max_workers=args.jobs, backend="process")
    return ParallelConfig(backend="serial")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "generate":
        from ..reportgen import generate_corpus_files

        report = generate_corpus_files(
            args.output, total_parsed_runs=args.runs, seed=args.seed,
            parallel=_parallel(args),
        )
        print(report.describe())
        return 0

    if args.command == "parse":
        from ..core.dataset import load_runs
        from ..parser import parse_directory

        report = parse_directory(args.corpus, parallel=_parallel(args))
        print(report.describe())
        frame = load_runs(args.corpus, parallel=_parallel(args))
        frame.to_csv(args.output)
        print(f"wrote {len(frame)} runs x {len(frame.columns)} columns to {args.output}")
        return 0

    if args.command == "analyze":
        from ..api import analyze, load_dataset

        runs = load_dataset(args.corpus, parallel=_parallel(args))
        result = analyze(runs, include_table1=not args.no_table1)
        print(result.summary())
        return 0

    if args.command == "figures":
        from ..api import analyze, load_dataset

        runs = load_dataset(args.corpus, parallel=_parallel(args))
        result = analyze(runs, include_table1=False, include_figures=True)
        written = result.save_figures(args.output)
        for path in written:
            print(f"wrote {path}")
        return 0

    if args.command == "campaign":
        from ..campaign import CampaignSpec, CampaignStore, resume_campaign, run_campaign
        from ..errors import CampaignError

        # A missing or corrupt store is an operator mistake, not a crash:
        # report it as one line on stderr instead of a traceback.
        try:
            if args.campaign_command == "status":
                print(CampaignStore(args.store).status().describe())
                return 0
            if args.campaign_command == "run":
                spec = CampaignSpec.from_json_file(args.spec)
                result = run_campaign(
                    spec, args.store, parallel=_parallel(args),
                    max_units=args.max_units, batch=not args.no_batch,
                )
            else:  # resume
                result = resume_campaign(
                    args.store, parallel=_parallel(args),
                    max_units=args.max_units, batch=not args.no_batch,
                )
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.describe())
        if args.csv:
            if len(result.frame):
                result.frame.to_csv(args.csv)
                print(f"wrote {len(result.frame)} rows to {args.csv}")
            else:
                print(f"no completed units; {args.csv} not written")
        return 0 if not result.failures else 2

    if args.command == "table1":
        from ..core.tables import table1

        for row in table1():
            print(
                f"{row.benchmark:18s} {row.system:24s} {row.cpu_model:28s} "
                f"result {row.result:>10.1f} factor {row.factor:.2f} "
                f"(paper {row.paper_result:.0f} / {row.paper_factor:.2f})"
            )
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
