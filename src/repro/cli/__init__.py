"""Command-line interface (``spectrends``)."""

from .main import main

__all__ = ["main"]
