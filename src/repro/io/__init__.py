"""Filesystem helpers: dataset caching, workspace paths, atomic JSONL logs."""

from .cache import FrameCache, cached_frame
from .jsonl import append_jsonl, dumps_line, read_jsonl
from .paths import Workspace, ensure_dir

__all__ = [
    "FrameCache",
    "cached_frame",
    "Workspace",
    "ensure_dir",
    "append_jsonl",
    "dumps_line",
    "read_jsonl",
]
