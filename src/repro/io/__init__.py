"""Filesystem helpers: dataset caching and workspace paths."""

from .cache import FrameCache, cached_frame
from .paths import Workspace, ensure_dir

__all__ = ["FrameCache", "cached_frame", "Workspace", "ensure_dir"]
