"""CSV-backed caching of expensive frames.

Corpus generation plus parsing takes noticeable time for the full
thousand-run dataset; examples and benchmarks reuse a cached parsed frame
when the generating parameters match.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Mapping

from ..frame import Frame, read_csv

__all__ = ["FrameCache", "cached_frame"]


def _key_digest(key: Mapping[str, Any]) -> str:
    canonical = json.dumps(key, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


class FrameCache:
    """A directory of cached frames keyed by a parameter dictionary."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _paths(self, name: str, key: Mapping[str, Any]) -> tuple[Path, Path]:
        digest = _key_digest(key)
        base = self.directory / f"{name}-{digest}"
        return base.with_suffix(".csv"), base.with_suffix(".json")

    def get(self, name: str, key: Mapping[str, Any]) -> Frame | None:
        """Return the cached frame for ``(name, key)`` or ``None``."""
        csv_path, meta_path = self._paths(name, key)
        if not csv_path.exists() or not meta_path.exists():
            return None
        try:
            stored_key = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if stored_key != json.loads(json.dumps(key, sort_keys=True, default=str)):
            return None
        return read_csv(csv_path)

    def put(self, name: str, key: Mapping[str, Any], frame: Frame) -> Path:
        """Store ``frame`` under ``(name, key)`` and return the CSV path."""
        csv_path, meta_path = self._paths(name, key)
        frame.to_csv(csv_path)
        meta_path.write_text(
            json.dumps(key, sort_keys=True, default=str), encoding="utf-8"
        )
        return csv_path

    def clear(self) -> int:
        """Delete all cache entries; returns the number of files removed."""
        removed = 0
        for path in self.directory.glob("*"):
            if path.suffix in (".csv", ".json"):
                path.unlink()
                removed += 1
        return removed


def cached_frame(
    cache: FrameCache | None,
    name: str,
    key: Mapping[str, Any],
    builder: Callable[[], Frame],
) -> Frame:
    """Return a cached frame or build (and cache) it."""
    if cache is None:
        return builder()
    hit = cache.get(name, key)
    if hit is not None:
        return hit
    frame = builder()
    cache.put(name, key, frame)
    return frame
