"""Atomic append-only JSON-lines files shared by concurrent writers.

Every append-only log in the system — the campaign ledger, the shard/lease
manifest, the telemetry event stream, the tracer's sink — is a JSONL file
that multiple *processes* may append to at once (cooperating campaign
workers, a watcher-attached run, the service front end).  Concurrent
``open("a").write(...)`` through buffered text handles is only safe within
one process: a line can be split across multiple ``write(2)`` calls, and two
processes' fragments then interleave into torn, unparseable lines.

:func:`append_jsonl` gives every writer the one safe shape: each record is
serialised to a complete ``...\\n`` line and the whole batch is handed to
the kernel as a **single** ``write(2)`` on an ``O_APPEND`` descriptor.
POSIX applies the append offset atomically per write, so concurrent lines
land whole, in *some* order — which is exactly the contract the readers
(:func:`read_jsonl`, ``CampaignStore``'s torn-tail-tolerant parsers) rely
on.  Readers still skip unparseable lines defensively: a crash can truncate
the final line of a log even though writers never interleave.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["append_jsonl", "dumps_line", "read_jsonl"]


def dumps_line(record: Mapping[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, ``str`` fallback, trailing LF)."""
    return json.dumps(dict(record), sort_keys=True, default=str) + "\n"


def append_jsonl(
    path: str | os.PathLike, records: Iterable[Mapping[str, Any]]
) -> int:
    """Append ``records`` to ``path`` as one atomic ``O_APPEND`` write.

    Returns the number of records written.  The batch is encoded first and
    written with a single ``os.write`` — no buffering layer that could split
    a line — so appends from concurrent processes never interleave within a
    line.  (A multi-record batch is likewise contiguous: the shard runner's
    per-shard ledger flush stays one write.)
    """
    lines = [dumps_line(record) for record in records]
    if not lines:
        return 0
    data = "".join(lines).encode("utf-8")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    return len(lines)


def read_jsonl(path: str | os.PathLike) -> list[dict[str, Any]]:
    """All parseable records of a JSONL file, in append order.

    Unparseable lines (the torn tail a crashed writer can leave) and blank
    lines are skipped, matching the tolerance every campaign-store reader
    has always had.  A missing file is an empty log.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a killed writer
        if isinstance(record, dict):
            records.append(record)
    return records
