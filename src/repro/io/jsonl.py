"""Atomic append-only JSON-lines files shared by concurrent writers.

Every append-only log in the system — the campaign ledger, the shard/lease
manifest, the telemetry event stream, the tracer's sink — is a JSONL file
that multiple *processes* may append to at once (cooperating campaign
workers, a watcher-attached run, the service front end).  Concurrent
``open("a").write(...)`` through buffered text handles is only safe within
one process: a line can be split across multiple ``write(2)`` calls, and two
processes' fragments then interleave into torn, unparseable lines.

:func:`append_jsonl` gives every writer the one safe shape: each record is
serialised to a complete ``...\\n`` line and the whole batch is handed to
the kernel as a **single** ``write(2)`` on an ``O_APPEND`` descriptor.
POSIX applies the append offset atomically per write, so concurrent lines
land whole, in *some* order — which is exactly the contract the readers
(:func:`read_jsonl`, ``CampaignStore``'s torn-tail-tolerant parsers) rely
on.  Readers still skip unparseable lines defensively: a crash can truncate
the final line of a log even though writers never interleave.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..faults.plan import fault_point

__all__ = [
    "append_jsonl",
    "dumps_line",
    "read_jsonl",
    "read_jsonl_report",
    "JsonlReport",
    "JsonlFollower",
]


def dumps_line(record: Mapping[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, ``str`` fallback, trailing LF)."""
    return json.dumps(dict(record), sort_keys=True, default=str) + "\n"


def append_jsonl(
    path: str | os.PathLike, records: Iterable[Mapping[str, Any]]
) -> int:
    """Append ``records`` to ``path`` as one atomic ``O_APPEND`` write.

    Returns the number of records written.  The batch is encoded first and
    written with a single ``os.write`` — no buffering layer that could split
    a line — so appends from concurrent processes never interleave within a
    line.  (A multi-record batch is likewise contiguous: the shard runner's
    per-shard ledger flush stays one write.)
    """
    lines = [dumps_line(record) for record in records]
    if not lines:
        return 0
    data = "".join(lines).encode("utf-8")
    path = Path(path)
    rule = fault_point("jsonl.append", ctx=path.name)
    if rule is not None and rule.kind == "partial_write":
        # Simulate a writer dying mid-write(2): only a prefix of the batch
        # lands, leaving a torn line for the readers/doctor to cope with.
        data = data[: max(1, int(len(data) * rule.fraction))]
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    return len(lines)


@dataclass
class JsonlReport:
    """What :func:`read_jsonl_report` found: records plus corruption counts.

    ``corrupt`` counts unparseable *mid-file* lines — real corruption that a
    crash cannot explain; ``torn_tail`` flags an unparseable *final* line,
    the benign signature of a killed writer.  Non-dict JSON values count as
    corrupt too: every log in the system is a stream of objects.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    corrupt: int = 0
    torn_tail: bool = False

    @property
    def skipped(self) -> int:
        """Total lines dropped (mid-file corruption plus any torn tail)."""
        return self.corrupt + (1 if self.torn_tail else 0)


def read_jsonl_report(path: str | os.PathLike) -> JsonlReport:
    """Parse a JSONL file, distinguishing mid-file corruption from a torn tail.

    A torn final line is the expected signature of a killed writer and is
    flagged but not warned about.  Unparseable lines *before* the last one
    mean the file was damaged some other way (disk fault, manual edit, an
    injected ``partial_write``); those are counted and a single warning event
    is emitted through the tracer so long-running campaigns surface the
    damage instead of silently shrinking.
    """
    path = Path(path)
    report = JsonlReport()
    if not path.exists():
        return report
    lines = path.read_text(encoding="utf-8").splitlines()
    bad_line_nos: list[int] = []
    for line_no, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            record = None
        if isinstance(record, dict):
            report.records.append(record)
        else:
            bad_line_nos.append(line_no)
    if bad_line_nos and bad_line_nos[-1] == len(lines):
        report.torn_tail = True
        bad_line_nos.pop()
    report.corrupt = len(bad_line_nos)
    if report.corrupt:
        # Lazy import: obs pulls in the campaign package, which imports us.
        from ..obs.trace import get_tracer

        get_tracer().event(
            "jsonl_corrupt_lines",
            path=str(path),
            corrupt=report.corrupt,
            lines=bad_line_nos[:16],
        )
    return report


class JsonlFollower:
    """Incremental reader for a growing JSONL file, safe against torn tails.

    The service's event streamer used to re-read and re-parse the whole
    ``events.jsonl`` on every poll tick — O(file) work per tick per follower.
    A follower instead remembers its byte offset and each :meth:`poll` parses
    only the bytes appended since the last call.

    Torn-tail safety: a writer killed mid-``write(2)`` can leave a final
    line without its ``\\n``.  The follower only consumes up to the last
    newline it has seen — an incomplete tail stays unread (and un-advanced)
    until the next append completes it, so a record is never emitted twice
    and never emitted half-parsed.  Unparseable *complete* lines are counted
    in :attr:`corrupt` and skipped, matching :func:`read_jsonl`'s tolerance.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.offset = 0
        self.corrupt = 0

    def poll(self) -> list[dict[str, Any]]:
        """Records appended since the last poll (empty if nothing new)."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self.offset)
                data = fh.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        # Consume only whole lines; an unterminated tail is a write in
        # flight (or a torn final line) — leave it for the next poll.
        end = data.rfind(b"\n")
        if end < 0:
            return []
        chunk = data[: end + 1]
        self.offset += len(chunk)
        records: list[dict[str, Any]] = []
        for raw in chunk.splitlines():
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                record = None
            if isinstance(record, dict):
                records.append(record)
            else:
                self.corrupt += 1
        return records


def read_jsonl(path: str | os.PathLike) -> list[dict[str, Any]]:
    """All parseable records of a JSONL file, in append order.

    Unparseable lines — the torn tail a crashed writer can leave, or
    corrupt lines mid-file — and blank lines are skipped, matching the
    tolerance every campaign-store reader has always had.  A missing file
    is an empty log.  Use :func:`read_jsonl_report` to observe how many
    lines were dropped and why.
    """
    return read_jsonl_report(path).records
