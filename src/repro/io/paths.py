"""Workspace layout used by the CLI and the examples.

A :class:`Workspace` is a directory with the conventional sub-directories of
the paper's artifact: raw result files, the parsed CSV dataset, generated
figures and text reports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Workspace", "ensure_dir"]


def ensure_dir(path: str | os.PathLike) -> Path:
    """Create ``path`` (and parents) if needed and return it as a Path."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


@dataclass(frozen=True)
class Workspace:
    """Conventional directory layout for one analysis run."""

    root: Path

    @classmethod
    def create(cls, root: str | os.PathLike) -> "Workspace":
        workspace = cls(Path(root))
        for directory in (
            workspace.raw_results,
            workspace.processed,
            workspace.figures,
            workspace.reports,
        ):
            ensure_dir(directory)
        return workspace

    @property
    def raw_results(self) -> Path:
        """Directory of SPEC-style ``.txt`` result files."""
        return self.root / "raw_results"

    @property
    def processed(self) -> Path:
        """Directory of parsed/derived CSV tables."""
        return self.root / "processed"

    @property
    def figures(self) -> Path:
        """Directory of rendered figures (SVG)."""
        return self.root / "figures"

    @property
    def reports(self) -> Path:
        """Directory of text reports (paper-vs-measured summaries)."""
        return self.root / "reports"

    @property
    def dataset_csv(self) -> Path:
        return self.processed / "runs.csv"

    @property
    def filtered_csv(self) -> Path:
        return self.processed / "runs_filtered.csv"
