"""Top-level convenience API (deprecated shims over :mod:`repro.session`).

These functions predate the session layer; each now delegates to a
:class:`repro.session.Session` and emits a :class:`DeprecationWarning`.
Results are bit-identical to the historical implementations — the session
stages run the exact same pipeline code — but new code should use the
session directly, which adds workspace caching, composable handles and the
extension registries::

    from repro.session import Session

    with Session(workspace="ws/") as session:
        runs = session.dataset(runs=150, seed=2024).result()
        print(session.analysis().result().summary())

Migration table:

==========================================  ===================================================
deprecated call                             session equivalent
==========================================  ===================================================
``generate_corpus(d, n, seed)``             ``session.corpus(runs=n, seed=seed, directory=d).result()``
``parse_corpus(d)``                         ``session.dataset(corpus=d).parse_report()``
``load_dataset(d)``                         ``session.dataset(corpus=d).result()``
``quick_dataset(n, seed)``                  ``session.dataset(runs=n, seed=seed).result()``
``analyze(runs)``                           ``session.analysis().result()`` (or ``analyze_frame``)
``run_campaign(spec, store)``               ``session.campaign(spec, store=store).result()``
==========================================  ===================================================
"""

from __future__ import annotations

import os
import warnings

from .frame import Frame
from .parallel import ParallelConfig
from .session.handles import AnalysisResult

__all__ = [
    "AnalysisResult",
    "generate_corpus",
    "parse_corpus",
    "load_dataset",
    "quick_dataset",
    "analyze",
    "run_campaign",
]


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.api.{name}() is deprecated; use repro.session.Session"
        f".{replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _session(parallel: ParallelConfig | None = None, batch: bool = True):
    from .session.policy import ExecutionPolicy
    from .session.session import Session

    return Session(policy=ExecutionPolicy.from_parallel(parallel, batch=batch))


def generate_corpus(
    directory: str | os.PathLike,
    total_parsed_runs: int = 960,
    seed: int = 2024,
    parallel: ParallelConfig | None = None,
):
    """Generate a synthetic corpus of SPEC-style result files.

    .. deprecated:: 1.2
       Use ``Session.corpus(runs=..., seed=..., directory=...)``.
    """
    _warn_deprecated("generate_corpus", "corpus(...)")
    with _session(parallel) as session:
        return session.corpus(
            runs=total_parsed_runs, seed=seed, directory=directory
        ).result()


def parse_corpus(directory: str | os.PathLike, parallel: ParallelConfig | None = None):
    """Parse a corpus directory; returns the raw :class:`CorpusParseReport`.

    .. deprecated:: 1.2
       Use ``Session.dataset(corpus=...).parse_report()``.
    """
    _warn_deprecated("parse_corpus", "dataset(corpus=...).parse_report()")
    with _session(parallel) as session:
        return session.dataset(corpus=directory).parse_report()


def load_dataset(
    directory: str | os.PathLike,
    parallel: ParallelConfig | None = None,
) -> Frame:
    """Parse a corpus directory into the derived analysis frame.

    .. deprecated:: 1.2
       Use ``Session.dataset(corpus=...).result()``.
    """
    _warn_deprecated("load_dataset", "dataset(corpus=...).result()")
    with _session(parallel) as session:
        return session.dataset(corpus=directory).result()


def quick_dataset(
    n_runs: int = 150,
    seed: int = 2024,
    directory: str | os.PathLike | None = None,
    parallel: ParallelConfig | None = None,
) -> Frame:
    """Generate and parse a small synthetic corpus in one call.

    When ``directory`` is ``None`` a temporary directory is used and removed
    afterwards; pass a path to keep the generated files.

    .. deprecated:: 1.2
       Use ``Session.dataset(runs=..., seed=...).result()``.
    """
    _warn_deprecated("quick_dataset", "dataset(runs=..., seed=...).result()")
    with _session(parallel) as session:
        corpus = session.corpus(runs=n_runs, seed=seed, directory=directory)
        return session.dataset(corpus=corpus).result()


def run_campaign(
    spec,
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    max_units: int | None = None,
    batch: bool = True,
):
    """Run a declarative scenario sweep; returns a ``CampaignResult``.

    ``spec`` may be a :class:`repro.campaign.CampaignSpec`, a plain mapping
    in the same shape, or a path to a JSON spec file.  Completed units are
    cached by content hash in ``store_dir``; re-running the same spec over
    the same store performs no new simulations, and an interrupted campaign
    resumes from whatever the store already holds.

    .. deprecated:: 1.2
       Use ``Session.campaign(spec, store=...).result()``.
    """
    _warn_deprecated("run_campaign", "campaign(spec, store=...).result()")
    with _session(parallel, batch=batch) as session:
        return session.campaign(spec, store=store_dir, max_units=max_units).result()


def analyze(
    runs: Frame,
    include_table1: bool = True,
    include_figures: bool = False,
) -> AnalysisResult:
    """Run the paper's analysis pipeline over a derived run frame.

    .. deprecated:: 1.2
       Use ``Session.analysis(...)`` (cached) or
       :func:`repro.session.session.analyze_frame` (workspace-free).
    """
    _warn_deprecated("analyze", "analysis(...).result()")
    from .session.session import analyze_frame

    return analyze_frame(runs, table1=include_table1, figures=include_figures)
