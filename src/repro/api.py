"""Top-level convenience API.

These functions wire the layers together for the most common workflows:

* :func:`generate_corpus` — write a synthetic corpus of result files,
* :func:`parse_corpus` / :func:`load_dataset` — parse a corpus directory
  into the derived analysis frame,
* :func:`quick_dataset` — generate + parse a small corpus in a temporary
  directory (the quickest way to get a realistic frame in examples/tests),
* :func:`analyze` — run the full paper pipeline (filters, headline findings,
  Table I, correlation study, optionally figures) over a run frame,
* :func:`run_campaign` — execute a declarative scenario sweep with
  content-hash caching and a resumable on-disk store.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .frame import Frame
from .parallel import ParallelConfig

__all__ = [
    "AnalysisResult",
    "generate_corpus",
    "parse_corpus",
    "load_dataset",
    "quick_dataset",
    "analyze",
    "run_campaign",
]


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of :func:`analyze`."""

    unfiltered: Frame
    filtered: Frame
    comparison: "object"          # repro.core.report.PaperComparison
    figures: tuple = ()

    def summary(self) -> str:
        """Human-readable paper-vs-measured summary."""
        return self.comparison.to_text()

    @property
    def era_comparisons(self) -> list[str]:
        """Names of the scalar findings available in the comparison."""
        return [finding.name for finding in self.comparison.findings]

    def save_figures(self, directory: str | os.PathLike) -> list[Path]:
        written: list[Path] = []
        for artifact in self.figures:
            written.extend(artifact.save(directory))
        return written


def generate_corpus(
    directory: str | os.PathLike,
    total_parsed_runs: int = 960,
    seed: int = 2024,
    parallel: ParallelConfig | None = None,
):
    """Generate a synthetic corpus of SPEC-style result files."""
    from .reportgen import generate_corpus_files

    return generate_corpus_files(
        directory, total_parsed_runs=total_parsed_runs, seed=seed, parallel=parallel
    )


def parse_corpus(directory: str | os.PathLike, parallel: ParallelConfig | None = None):
    """Parse a corpus directory; returns the raw :class:`CorpusParseReport`."""
    from .parser import parse_directory

    return parse_directory(directory, parallel=parallel)


def load_dataset(
    directory: str | os.PathLike,
    parallel: ParallelConfig | None = None,
) -> Frame:
    """Parse a corpus directory into the derived analysis frame."""
    from .core.dataset import load_runs

    return load_runs(directory, parallel=parallel)


def quick_dataset(
    n_runs: int = 150,
    seed: int = 2024,
    directory: str | os.PathLike | None = None,
) -> Frame:
    """Generate and parse a small synthetic corpus in one call.

    When ``directory`` is ``None`` a temporary directory is used and removed
    afterwards; pass a path to keep the generated files.
    """
    if directory is not None:
        generate_corpus(directory, total_parsed_runs=n_runs, seed=seed)
        return load_dataset(directory)
    with tempfile.TemporaryDirectory(prefix="specpower-corpus-") as tmp:
        generate_corpus(tmp, total_parsed_runs=n_runs, seed=seed)
        return load_dataset(tmp)


def run_campaign(
    spec,
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    max_units: int | None = None,
    batch: bool = True,
):
    """Run a declarative scenario sweep; returns a ``CampaignResult``.

    ``spec`` may be a :class:`repro.campaign.CampaignSpec`, a plain mapping
    in the same shape, or a path to a JSON spec file.  Completed units are
    cached by content hash in ``store_dir``; re-running the same spec over
    the same store performs no new simulations, and an interrupted campaign
    resumes from whatever the store already holds.  Units are simulated
    through the vectorized batch kernel by default (bit-for-bit the scalar
    results); ``batch=False`` forces the scalar per-unit path.
    """
    from .campaign import CampaignSpec
    from .campaign import run_campaign as _run_campaign

    if isinstance(spec, (str, os.PathLike)):
        spec = CampaignSpec.from_json_file(spec)
    elif isinstance(spec, dict):
        spec = CampaignSpec.from_dict(spec)
    return _run_campaign(
        spec, store_dir, parallel=parallel, max_units=max_units, batch=batch
    )


def analyze(
    runs: Frame,
    include_table1: bool = True,
    include_figures: bool = False,
) -> AnalysisResult:
    """Run the paper's analysis pipeline over a derived run frame."""
    from .core.dataset import derive_columns
    from .core.figures import all_figures
    from .core.filters import apply_paper_filters
    from .core.report import build_report

    if "overall_efficiency" not in runs:
        runs = derive_columns(runs)
    comparison = build_report(runs, include_table1=include_table1)
    filtered, _ = apply_paper_filters(runs)
    figures = tuple(all_figures(runs, filtered)) if include_figures else ()
    return AnalysisResult(
        unfiltered=runs, filtered=filtered, comparison=comparison, figures=figures
    )
