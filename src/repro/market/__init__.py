"""The x86 server market model, 2005–2024.

The paper's dataset is the population of SPECpower_ssj2008 submissions.
This package models that population:

* :mod:`repro.market.catalog` — Intel and AMD server CPU generations (plus
  the handful of non-x86 and desktop parts that appear in real submissions
  and are filtered out by the paper),
* :mod:`repro.market.trends` — submission rates, OS shares and vendor
  shares over time (Figure 1 demographics),
* :mod:`repro.market.fleet` — sampling of complete system configurations
  and the composition of a full corpus,
* :mod:`repro.market.anomalies` — the malformed / rejected submissions the
  paper's consistency checks remove (Section II counts).
"""

from .catalog import (
    Catalog,
    CatalogEntry,
    default_catalog,
    profile_for,
)
from .trends import MarketTrends, default_trends
from .fleet import FleetSampler, FleetPlan, SystemPlan
from .anomalies import AnomalyKind, AnomalyPlan, default_anomaly_plan

__all__ = [
    "Catalog",
    "CatalogEntry",
    "default_catalog",
    "profile_for",
    "MarketTrends",
    "default_trends",
    "FleetSampler",
    "FleetPlan",
    "SystemPlan",
    "AnomalyKind",
    "AnomalyPlan",
    "default_anomaly_plan",
]
