"""Malformed and rejected submissions.

The paper downloads 1017 result files and removes 57 of them before any
analysis (Section II):

========================================  =====
reason                                    count
========================================  =====
run not accepted by SPEC                     40
ambiguous dates                               3
implausible dates                             4
ambiguous CPU names                           3
missing node count                            1
inconsistent core/thread counts               5
implausible core/thread counts                1
========================================  =====

The corpus generator injects exactly these defects so that the parser and
validation pipeline have something realistic to reject and the dataset
funnel (1017 → 960) can be reproduced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import CatalogError

__all__ = ["AnomalyKind", "AnomalyPlan", "default_anomaly_plan"]


class AnomalyKind(str, enum.Enum):
    """Defect classes injected into generated result files."""

    NOT_ACCEPTED = "not_accepted"
    AMBIGUOUS_DATE = "ambiguous_date"
    IMPLAUSIBLE_DATE = "implausible_date"
    AMBIGUOUS_CPU = "ambiguous_cpu"
    MISSING_NODE_COUNT = "missing_node_count"
    INCONSISTENT_CORE_THREAD = "inconsistent_core_thread"
    IMPLAUSIBLE_CORE_COUNT = "implausible_core_count"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The paper's Section II rejection counts.
PAPER_ANOMALY_COUNTS: dict[AnomalyKind, int] = {
    AnomalyKind.NOT_ACCEPTED: 40,
    AnomalyKind.AMBIGUOUS_DATE: 3,
    AnomalyKind.IMPLAUSIBLE_DATE: 4,
    AnomalyKind.AMBIGUOUS_CPU: 3,
    AnomalyKind.MISSING_NODE_COUNT: 1,
    AnomalyKind.INCONSISTENT_CORE_THREAD: 5,
    AnomalyKind.IMPLAUSIBLE_CORE_COUNT: 1,
}


@dataclass(frozen=True)
class AnomalyPlan:
    """How many submissions of each defect class to inject into a corpus."""

    counts: Mapping[AnomalyKind, int] = field(
        default_factory=lambda: dict(PAPER_ANOMALY_COUNTS)
    )

    def __post_init__(self) -> None:
        for kind, count in self.counts.items():
            if count < 0:
                raise CatalogError(f"negative anomaly count for {kind}: {count}")

    @property
    def total(self) -> int:
        return int(sum(self.counts.values()))

    def scaled(self, fraction: float) -> "AnomalyPlan":
        """Scale all counts (used for small corpora in tests and examples).

        Rounds down but keeps at least one occurrence of any class that had a
        non-zero count when ``fraction`` > 0, so small corpora still exercise
        every rejection path.
        """
        if fraction < 0:
            raise CatalogError("fraction must be >= 0")
        if fraction == 0:
            return AnomalyPlan({kind: 0 for kind in self.counts})
        scaled = {}
        for kind, count in self.counts.items():
            scaled[kind] = max(int(count * fraction), 1) if count > 0 else 0
        return AnomalyPlan(scaled)

    def expand(self) -> list[AnomalyKind]:
        """A flat list with each anomaly kind repeated ``count`` times."""
        flat: list[AnomalyKind] = []
        for kind in AnomalyKind:
            flat.extend([kind] * int(self.counts.get(kind, 0)))
        return flat


def default_anomaly_plan() -> AnomalyPlan:
    """The paper-exact anomaly counts (57 rejected submissions)."""
    return AnomalyPlan()
