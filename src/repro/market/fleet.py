"""Sampling of complete submissions: the synthetic SPEC Power fleet.

A :class:`FleetSampler` turns the market trajectories
(:mod:`repro.market.trends`), the CPU catalog
(:mod:`repro.market.catalog`) and the anomaly plan
(:mod:`repro.market.anomalies`) into a :class:`FleetPlan`: one
:class:`SystemPlan` per submission, ready to be simulated by
:mod:`repro.simulator` and written by :mod:`repro.reportgen`.

The plan reproduces the paper's dataset funnel by construction: for the
default parameters it contains 1017 submissions, of which 57 carry a defect
(rejected before analysis), 9 use non-x86 CPUs, 6 use desktop CPUs and 269
use more than one node or more than two sockets, leaving 676 analysable runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..errors import CatalogError
from ..powermodel.cpu import Vendor
from ..units import MonthDate
from .anomalies import AnomalyKind, AnomalyPlan, default_anomaly_plan
from .catalog import Catalog, CatalogEntry, default_catalog
from .trends import MarketTrends, default_trends

__all__ = ["SystemPlan", "FleetPlan", "FleetSampler", "sample_fleet"]

_PSU_SIZES = (350.0, 460.0, 550.0, 750.0, 800.0, 1100.0, 1300.0, 1600.0, 2000.0, 2400.0)

_MODEL_TEMPLATES: dict[str, tuple[str, ...]] = {
    "Hewlett Packard Enterprise": ("ProLiant DL360", "ProLiant DL380", "ProLiant ML350"),
    "Dell Inc.": ("PowerEdge R640", "PowerEdge R740", "PowerEdge R6525"),
    "Fujitsu": ("PRIMERGY RX2530", "PRIMERGY RX300", "PRIMERGY TX300"),
    "Lenovo Global Technology": ("ThinkSystem SR630", "ThinkSystem SR650", "ThinkSystem SR645"),
    "IBM Corporation": ("System x3650", "System x3550", "Flex System x240"),
    "Supermicro": ("SuperServer 1029U", "SuperServer 2029U", "A+ Server 2024US"),
    "Inspur Corporation": ("NF5180M5", "NF5280M6", "NF8260M5"),
    "Huawei Technologies": ("FusionServer RH2288", "FusionServer 2288H", "TaiShan 2280"),
    "ASUSTeK Computer": ("RS720-E9", "RS700-E10", "RS720A-E11"),
    "Acer Incorporated": ("Altos R380", "Altos R360", "Altos R520"),
    "Quanta Computer": ("QuantaGrid D52B", "QuantaGrid D43K", "QuantaPlex T42S"),
}


@dataclass(frozen=True)
class SystemPlan:
    """Everything needed to simulate and report one submission."""

    run_id: str
    hw_avail: MonthDate
    sw_avail: MonthDate
    test_date: MonthDate
    publication_date: MonthDate
    cpu_model: str
    sockets: int
    nodes: int
    memory_gb: float
    os_name: str
    jvm_name: str
    system_vendor: str
    system_model: str
    psu_rating_w: float
    category: str = "server"  # "server", "other_vendor" or "desktop"
    anomaly: AnomalyKind | None = None
    accepted: bool = True

    @property
    def is_rejectable(self) -> bool:
        """True when the submission carries an injected defect."""
        return self.anomaly is not None

    @property
    def file_name(self) -> str:
        return f"{self.run_id}.txt"


@dataclass(frozen=True)
class FleetPlan:
    """An ordered collection of system plans plus generation metadata."""

    systems: tuple[SystemPlan, ...]
    seed: int
    parsed_target: int

    def __len__(self) -> int:
        return len(self.systems)

    @property
    def clean(self) -> list[SystemPlan]:
        """Plans without injected defects (the paper's 960 parsed runs)."""
        return [plan for plan in self.systems if plan.anomaly is None]

    @property
    def defective(self) -> list[SystemPlan]:
        return [plan for plan in self.systems if plan.anomaly is not None]

    def count_category(self, category: str) -> int:
        return sum(1 for plan in self.clean if plan.category == category)

    def count_multi(self) -> int:
        """Clean server-class plans with >1 node or >2 sockets."""
        return sum(
            1
            for plan in self.clean
            if plan.category == "server" and (plan.nodes > 1 or plan.sockets > 2)
        )

    def analysable(self) -> list[SystemPlan]:
        """Plans expected to survive the paper's full filter pipeline."""
        return [
            plan
            for plan in self.clean
            if plan.category == "server" and plan.nodes == 1 and plan.sockets <= 2
        ]


class FleetSampler:
    """Deterministic sampler of submission plans.

    Parameters
    ----------
    total_parsed_runs:
        Number of defect-free submissions (the paper's 960).  The numbers of
        non-x86, desktop and multi-node/socket submissions scale with it.
    catalog, trends, anomalies:
        Market model components; defaults reproduce the paper's dataset.
    """

    def __init__(
        self,
        total_parsed_runs: int = 960,
        catalog: Catalog | None = None,
        trends: MarketTrends | None = None,
        anomalies: AnomalyPlan | None = None,
        other_vendor_runs: int | None = None,
        desktop_runs: int | None = None,
        multi_node_or_socket_runs: int | None = None,
    ):
        if total_parsed_runs < 30:
            raise CatalogError("total_parsed_runs must be >= 30")
        self.total_parsed_runs = total_parsed_runs
        self.catalog = catalog or default_catalog()
        self.trends = trends or default_trends()
        scale = total_parsed_runs / 960.0
        self.anomalies = anomalies or default_anomaly_plan().scaled(scale)
        self.other_vendor_runs = (
            other_vendor_runs if other_vendor_runs is not None else max(round(9 * scale), 1)
        )
        self.desktop_runs = (
            desktop_runs if desktop_runs is not None else max(round(6 * scale), 1)
        )
        self.multi_runs = (
            multi_node_or_socket_runs
            if multi_node_or_socket_runs is not None
            else round(269 * scale)
        )
        if self.other_vendor_runs + self.desktop_runs + self.multi_runs > total_parsed_runs:
            raise CatalogError("special-category runs exceed total_parsed_runs")

    # ------------------------------------------------------------------ #
    def sample(self, seed: int = 2024) -> FleetPlan:
        """Produce a fleet plan; identical seeds yield identical plans."""
        rng = np.random.default_rng(seed)
        year_counts = self.trends.runs_per_year(self.total_parsed_runs)

        plans: list[SystemPlan] = []
        index = 0
        for year in sorted(year_counts):
            for _ in range(year_counts[year]):
                plans.append(self._sample_system(rng, year, index, category="server"))
                index += 1

        # Re-assign a deterministic subset of plans to the special categories
        # the paper filters out (non-x86 CPUs, desktop CPUs, multi-node/socket).
        plans = self._assign_special_categories(rng, plans)

        # Defective submissions on top of the parsed population.
        for kind in self.anomalies.expand():
            year = int(rng.choice(sorted(year_counts), p=self._year_probabilities(year_counts)))
            plan = self._sample_system(rng, year, index, category="server")
            plans.append(replace(plan, anomaly=kind, accepted=kind != AnomalyKind.NOT_ACCEPTED))
            index += 1

        # Stable ordering by run id keeps files and downstream frames aligned.
        plans.sort(key=lambda plan: plan.run_id)
        return FleetPlan(tuple(plans), seed=seed, parsed_target=self.total_parsed_runs)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _year_probabilities(year_counts: dict[int, int]) -> np.ndarray:
        years = sorted(year_counts)
        weights = np.asarray([year_counts[y] for y in years], dtype=np.float64)
        return weights / weights.sum()

    def _assign_special_categories(
        self, rng: np.random.Generator, plans: list[SystemPlan]
    ) -> list[SystemPlan]:
        plans = list(plans)
        n = len(plans)
        order = rng.permutation(n)
        cursor = 0

        other_entries = [
            e for e in self.catalog.filtered_entries() if e.cpu.vendor == Vendor.OTHER
        ]
        desktop_entries = [
            e for e in self.catalog.filtered_entries() if e.cpu.vendor != Vendor.OTHER
        ]

        def reassign(count: int, entries: Sequence[CatalogEntry], category: str) -> None:
            nonlocal cursor
            if not entries and count > 0:
                raise CatalogError(f"no catalog entries available for category {category!r}")
            assigned = 0
            while assigned < count and cursor < n:
                position = int(order[cursor])
                cursor += 1
                plan = plans[position]
                entry = entries[int(rng.integers(len(entries)))]
                plans[position] = replace(
                    plan,
                    category=category,
                    cpu_model=entry.cpu.model,
                    sockets=int(rng.choice(entry.typical_sockets)),
                    nodes=1,
                    memory_gb=self._memory_for(rng, entry, 1),
                )
                assigned += 1

        reassign(self.other_vendor_runs, other_entries, "other_vendor")
        reassign(self.desktop_runs, desktop_entries, "desktop")

        # Multi-node or >2-socket submissions among the remaining server plans.
        assigned_multi = 0
        while assigned_multi < self.multi_runs and cursor < n:
            position = int(order[cursor])
            cursor += 1
            plan = plans[position]
            if plan.category != "server":
                continue
            if rng.random() < 0.55:
                nodes = int(rng.choice([2, 4, 8, 16], p=[0.25, 0.40, 0.25, 0.10]))
                sockets = int(rng.choice([1, 2], p=[0.3, 0.7]))
            else:
                nodes = 1
                sockets = int(rng.choice([4, 8], p=[0.8, 0.2]))
            plans[position] = replace(plan, nodes=nodes, sockets=sockets)
            assigned_multi += 1
        return plans

    def _memory_for(
        self, rng: np.random.Generator, entry: CatalogEntry, sockets: int
    ) -> float:
        multiplier = float(rng.choice([0.5, 1.0, 1.0, 2.0]))
        memory = entry.typical_memory_gb_per_socket * sockets * multiplier
        return float(max(4.0, memory))

    def _psu_rating(self, entry: CatalogEntry, sockets: int, memory_gb: float) -> float:
        estimate = sockets * entry.cpu.tdp_w * 1.35 + memory_gb * 0.4 + 120.0
        for size in _PSU_SIZES:
            if size >= estimate:
                return size
        return _PSU_SIZES[-1]

    def _system_model(self, rng: np.random.Generator, vendor: str, year: int) -> str:
        templates = _MODEL_TEMPLATES.get(vendor, ("Server X100",))
        base = str(rng.choice(templates))
        generation = max(1, (year - 2004) // 2)
        suffix = rng.choice(
            [f" Gen{generation}", f" M{generation}", f" V{max(generation - 7, 1)}", ""]
        )
        return base + str(suffix)

    def _sample_system(
        self, rng: np.random.Generator, year: int, index: int, category: str
    ) -> SystemPlan:
        vendor = Vendor.AMD if rng.random() < self.trends.amd_probability(year) else Vendor.INTEL
        candidates = self.catalog.available_in(year, vendor=vendor, server_only=True)
        if not candidates:
            candidates = self.catalog.available_in(year, vendor=None, server_only=True)
        if not candidates:
            raise CatalogError(f"no catalog entries available for year {year}")
        weights = np.asarray([entry.popularity for entry in candidates], dtype=np.float64)
        entry = candidates[int(rng.choice(len(candidates), p=weights / weights.sum()))]

        # Base plans stay at one node and at most two sockets; the dedicated
        # multi-node / multi-socket reassignment in _assign_special_categories
        # is the only source of larger configurations, which keeps the funnel
        # counts exact.
        allowed_sockets = tuple(s for s in entry.typical_sockets if s <= 2) or (2,)
        sockets = self.trends.sample_sockets(rng, allowed=allowed_sockets)
        nodes = 1
        memory = self._memory_for(rng, entry, sockets)

        hw_month = int(rng.integers(1, 13))
        hw_avail = MonthDate(year, hw_month)
        # SPEC Power was first published in late 2007; earlier hardware was
        # tested retroactively.
        earliest_test = MonthDate(2007, 11)
        test_date = hw_avail.shift(int(rng.integers(0, 7)))
        if test_date < earliest_test:
            test_date = earliest_test.shift(int(rng.integers(0, 4)))
        publication = test_date.shift(int(rng.integers(1, 4)))
        sw_avail = test_date.shift(-int(rng.integers(0, 13)))

        os_name = self.trends.operating_system(year, rng)
        system_vendor = self.trends.sample_system_vendor(rng)

        return SystemPlan(
            run_id=f"power_ssj2008-{publication.year:04d}{publication.month:02d}-{index:05d}",
            hw_avail=hw_avail,
            sw_avail=sw_avail,
            test_date=test_date,
            publication_date=publication,
            cpu_model=entry.cpu.model,
            sockets=sockets,
            nodes=nodes,
            memory_gb=memory,
            os_name=os_name,
            jvm_name=self.trends.jvm_name(year, os_name),
            system_vendor=system_vendor,
            system_model=self._system_model(rng, system_vendor, year),
            psu_rating_w=self._psu_rating(entry, sockets, memory),
            category=category,
        )


# --------------------------------------------------------------------------- #
#: Process-wide memo of default-configuration fleet samples, keyed by
#: ``(total_parsed_runs, seed)``.  ``FleetPlan``/``SystemPlan`` are frozen, so
#: one sampled plan is safely shared by every consumer (corpus writer,
#: parse-bypass derivation, campaigns); bounded because each entry holds the
#: full plan tuple (~1k dataclasses at the default fleet size).
_FLEET_MEMO: dict[tuple[int, int], FleetPlan] = {}
_FLEET_MEMO_MAX = 8


def sample_fleet(
    total_parsed_runs: int = 960, seed: int = 2024, catalog: Catalog | None = None
) -> FleetPlan:
    """Sample a fleet, memoizing the default-market configuration.

    Equivalent to ``FleetSampler(total_parsed_runs, catalog).sample(seed)``.
    With ``catalog=None`` (the memoized process-wide default catalog) the
    sample is a pure function of ``(total_parsed_runs, seed)`` and is cached
    across callers — resampling the fleet used to be ~30% of a cold dataset
    derivation.  A custom catalog always samples fresh: its entries are
    caller-owned and carry no cheap identity to key on.
    """
    if catalog is not None:
        return FleetSampler(total_parsed_runs=total_parsed_runs, catalog=catalog).sample(seed)
    key = (total_parsed_runs, seed)
    plan = _FLEET_MEMO.get(key)
    if plan is None:
        plan = FleetSampler(total_parsed_runs=total_parsed_runs).sample(seed)
        if len(_FLEET_MEMO) >= _FLEET_MEMO_MAX:
            _FLEET_MEMO.pop(next(iter(_FLEET_MEMO)))
        _FLEET_MEMO[key] = plan
    return plan
