"""Submission-rate, vendor-share and OS-share trajectories.

These trajectories reproduce the demographic findings of the paper's
Section II / Figure 1:

* an average of ~44 runs per hardware-availability year from 2005 to 2023,
  with a pronounced dip (~15 runs/year) between 2013 and 2017,
* AMD's share rising from ~13 % before 2018 to ~31 % afterwards (EPYC),
* Linux rising from ~2 % before 2018 to ~36 % afterwards,
* mostly dual-socket single-node systems, with a sizeable minority of
  multi-node or >2-socket submissions (the 269 runs the paper filters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import CatalogError

__all__ = ["MarketTrends", "default_trends"]

#: Relative number of parsed submissions per hardware availability year.
_YEAR_WEIGHTS: dict[int, float] = {
    2005: 3, 2006: 16, 2007: 62, 2008: 84, 2009: 72, 2010: 88,
    2011: 70, 2012: 64, 2013: 22, 2014: 16, 2015: 13, 2016: 16,
    2017: 15, 2018: 48, 2019: 66, 2020: 52, 2021: 64, 2022: 58,
    2023: 70, 2024: 36,
}

#: AMD share of parsed submissions per year (remainder is Intel, except for
#: the handful of explicitly planned non-x86 submissions).
_AMD_SHARE: dict[int, float] = {
    2005: 0.22, 2006: 0.24, 2007: 0.17, 2008: 0.15, 2009: 0.13, 2010: 0.15,
    2011: 0.12, 2012: 0.08, 2013: 0.04, 2014: 0.04, 2015: 0.04, 2016: 0.04,
    2017: 0.14, 2018: 0.25, 2019: 0.30, 2020: 0.30, 2021: 0.33, 2022: 0.36,
    2023: 0.40, 2024: 0.42,
}

#: Linux share of parsed submissions per year (macOS never appears; the rest
#: is Windows plus a tiny share of Solaris in the early years).
_LINUX_SHARE: dict[int, float] = {
    2005: 0.0, 2006: 0.0, 2007: 0.01, 2008: 0.02, 2009: 0.02, 2010: 0.02,
    2011: 0.02, 2012: 0.03, 2013: 0.03, 2014: 0.04, 2015: 0.05, 2016: 0.05,
    2017: 0.10, 2018: 0.25, 2019: 0.32, 2020: 0.35, 2021: 0.38, 2022: 0.40,
    2023: 0.42, 2024: 0.45,
}

_SOLARIS_SHARE_EARLY = 0.01  # before 2012 a few submissions used Solaris

#: Socket count distribution for server-class submissions (per node).
_SOCKET_WEIGHTS: dict[int, float] = {1: 0.20, 2: 0.645, 4: 0.125, 8: 0.03}

#: Node count distribution (multi-node submissions were mostly blade chassis).
_NODE_WEIGHTS: dict[int, float] = {1: 0.80, 2: 0.04, 4: 0.08, 8: 0.05, 16: 0.03}

#: System vendors and their rough prevalence among submitters.
_SYSTEM_VENDORS: dict[str, float] = {
    "Hewlett Packard Enterprise": 0.22,
    "Dell Inc.": 0.18,
    "Fujitsu": 0.17,
    "Lenovo Global Technology": 0.13,
    "IBM Corporation": 0.08,
    "Supermicro": 0.07,
    "Inspur Corporation": 0.05,
    "Huawei Technologies": 0.04,
    "ASUSTeK Computer": 0.03,
    "Acer Incorporated": 0.02,
    "Quanta Computer": 0.01,
}

_WINDOWS_BY_ERA: tuple[tuple[int, str], ...] = (
    (2007, "Microsoft Windows Server 2003 Enterprise Edition"),
    (2009, "Microsoft Windows Server 2008 Enterprise x64 Edition"),
    (2012, "Microsoft Windows Server 2008 R2 Enterprise"),
    (2014, "Microsoft Windows Server 2012 R2 Standard"),
    (2017, "Microsoft Windows Server 2016 Standard"),
    (2020, "Microsoft Windows Server 2019 Datacenter"),
    (2023, "Microsoft Windows Server 2022 Datacenter"),
    (2100, "Microsoft Windows Server 2025 Datacenter"),
)

_LINUX_BY_ERA: tuple[tuple[int, str], ...] = (
    (2012, "SUSE Linux Enterprise Server 11"),
    (2016, "Red Hat Enterprise Linux Server 7.2"),
    (2019, "SUSE Linux Enterprise Server 12 SP3"),
    (2021, "SUSE Linux Enterprise Server 15 SP2"),
    (2023, "SUSE Linux Enterprise Server 15 SP4"),
    (2100, "SUSE Linux Enterprise Server 15 SP5"),
)


@dataclass(frozen=True)
class MarketTrends:
    """Year-indexed demographic trajectories of the submission population."""

    year_weights: Mapping[int, float] = field(default_factory=lambda: dict(_YEAR_WEIGHTS))
    amd_share: Mapping[int, float] = field(default_factory=lambda: dict(_AMD_SHARE))
    linux_share: Mapping[int, float] = field(default_factory=lambda: dict(_LINUX_SHARE))
    socket_weights: Mapping[int, float] = field(default_factory=lambda: dict(_SOCKET_WEIGHTS))
    node_weights: Mapping[int, float] = field(default_factory=lambda: dict(_NODE_WEIGHTS))
    system_vendors: Mapping[str, float] = field(default_factory=lambda: dict(_SYSTEM_VENDORS))

    @property
    def years(self) -> list[int]:
        return sorted(self.year_weights)

    def runs_per_year(self, total_runs: int) -> dict[int, int]:
        """Distribute ``total_runs`` parsed submissions across years.

        Largest-remainder rounding keeps the total exact.
        """
        if total_runs < len(self.years):
            raise CatalogError(
                f"total_runs={total_runs} is smaller than the number of years"
            )
        weights = np.asarray([self.year_weights[y] for y in self.years], dtype=np.float64)
        shares = weights / weights.sum() * total_runs
        counts = np.floor(shares).astype(int)
        remainder = total_runs - int(counts.sum())
        fractional_order = np.argsort(-(shares - counts))
        for index in fractional_order[:remainder]:
            counts[index] += 1
        return {year: int(count) for year, count in zip(self.years, counts)}

    def amd_probability(self, year: int) -> float:
        return float(self.amd_share.get(year, list(self.amd_share.values())[-1]))

    def linux_probability(self, year: int) -> float:
        return float(self.linux_share.get(year, list(self.linux_share.values())[-1]))

    def operating_system(self, year: int, rng: np.random.Generator) -> str:
        """Sample an operating-system string for a submission of ``year``."""
        if rng.random() < self.linux_probability(year):
            table = _LINUX_BY_ERA
        else:
            if year <= 2011 and rng.random() < _SOLARIS_SHARE_EARLY:
                return "Sun Solaris 10"
            table = _WINDOWS_BY_ERA
        for last_year, name in table:
            if year <= last_year:
                return name
        return table[-1][1]  # pragma: no cover - unreachable with sentinel year

    def jvm_name(self, year: int, os_name: str) -> str:
        """JVM string roughly matching the era and operating system."""
        if year <= 2010:
            return "Oracle JRockit P28.0.0"
        if year <= 2014:
            return "Oracle Java HotSpot 64-Bit Server VM 1.7"
        if year <= 2019:
            return "Oracle Java HotSpot 64-Bit Server VM 1.8"
        if "Linux" in os_name or "SUSE" in os_name or "Red Hat" in os_name:
            return "Oracle Java HotSpot 64-Bit Server VM 17"
        return "Oracle Java HotSpot 64-Bit Server VM 11"

    def sample_system_vendor(self, rng: np.random.Generator) -> str:
        names = list(self.system_vendors)
        weights = np.asarray([self.system_vendors[n] for n in names], dtype=np.float64)
        weights = weights / weights.sum()
        return str(rng.choice(names, p=weights))

    def sample_sockets(self, rng: np.random.Generator, allowed: Sequence[int] | None = None) -> int:
        counts = list(self.socket_weights)
        weights = np.asarray([self.socket_weights[c] for c in counts], dtype=np.float64)
        if allowed is not None:
            mask = np.asarray([c in allowed for c in counts], dtype=bool)
            if not mask.any():
                return int(min(allowed))
            weights = np.where(mask, weights, 0.0)
        weights = weights / weights.sum()
        return int(rng.choice(counts, p=weights))

    def sample_nodes(self, rng: np.random.Generator) -> int:
        counts = list(self.node_weights)
        weights = np.asarray([self.node_weights[c] for c in counts], dtype=np.float64)
        weights = weights / weights.sum()
        return int(rng.choice(counts, p=weights))


def default_trends() -> MarketTrends:
    """The built-in trajectories calibrated against the paper's Section II."""
    return MarketTrends()
