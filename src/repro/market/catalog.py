"""Catalog of server processors appearing in the synthetic fleet.

Entries approximate real Intel Xeon, AMD Opteron and AMD EPYC server parts
released between 2005 and 2024.  The two calibrated per-entry quantities are

* ``ssj_ops_per_socket`` — full-load SSJ throughput per socket, loosely
  following the published SPECpower_ssj2008 results of the corresponding
  real parts, and
* the :class:`~repro.powermodel.cpu.GenerationProfile`, produced by
  :func:`profile_for` from smooth per-vendor trajectories over the release
  year.  The trajectories encode the paper's observed trends (DESIGN.md §5):
  energy proportionality improving over time, Intel's turbo-heavy middle
  years, the post-2017 idle regression growing with logical CPU count.

The catalog also contains a handful of desktop and non-x86 parts because the
real dataset contains such submissions; the paper filters them out, and the
filter pipeline needs something to filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from ..errors import CatalogError
from ..powermodel.cpu import CPUFamily, CPUSpec, GenerationProfile, Vendor
from ..units import MonthDate

__all__ = ["CatalogEntry", "Catalog", "default_catalog", "profile_for"]


# --------------------------------------------------------------------------- #
# Generation profile trajectories
# --------------------------------------------------------------------------- #
def _interpolate(year: float, knots: Sequence[tuple[float, float]]) -> float:
    """Piecewise-linear interpolation over (year, value) knots."""
    xs = np.asarray([k[0] for k in knots], dtype=np.float64)
    ys = np.asarray([k[1] for k in knots], dtype=np.float64)
    return float(np.interp(year, xs, ys))


# Knot tables, one per parameter and vendor.  Values are the result of the
# calibration described in DESIGN.md §5 and EXPERIMENTS.md.
_STATIC_KNOTS = {
    Vendor.INTEL: [(2005, 0.66), (2007, 0.58), (2009, 0.44), (2011, 0.34),
                   (2013, 0.27), (2015, 0.22), (2017, 0.19), (2020, 0.22),
                   (2022, 0.25), (2024, 0.27)],
    Vendor.AMD: [(2005, 0.66), (2007, 0.58), (2009, 0.46), (2011, 0.40),
                 (2013, 0.36), (2015, 0.33), (2017, 0.30), (2019, 0.25),
                 (2021, 0.20), (2023, 0.17), (2024, 0.17)],
}
_QUAD_SHARE_KNOTS = {
    Vendor.INTEL: [(2005, 0.08), (2009, 0.18), (2012, 0.32), (2016, 0.38),
                   (2017, 0.12), (2020, 0.10), (2024, 0.10)],
    Vendor.AMD: [(2005, 0.08), (2010, 0.15), (2016, 0.15), (2019, 0.18),
                 (2021, 0.15), (2024, 0.15)],
}
_TURBO_KNOTS = {
    Vendor.INTEL: [(2005, 0.0), (2008, 0.0), (2009, 0.04), (2012, 0.09),
                   (2014, 0.12), (2016, 0.13), (2017, 0.07), (2019, 0.05),
                   (2021, 0.04), (2024, 0.04)],
    Vendor.AMD: [(2005, 0.0), (2009, 0.0), (2010, 0.02), (2014, 0.03),
                 (2017, 0.03), (2019, 0.04), (2021, 0.04), (2024, 0.04)],
}
_IDLE_QUOTIENT_KNOTS = {
    Vendor.INTEL: [(2005, 1.02), (2007, 1.10), (2009, 1.35), (2011, 1.60),
                   (2013, 1.80), (2015, 1.90), (2017, 1.95), (2019, 2.00),
                   (2021, 2.05), (2024, 2.10)],
    Vendor.AMD: [(2005, 1.02), (2007, 1.08), (2009, 1.30), (2011, 1.50),
                 (2013, 1.65), (2017, 1.80), (2019, 1.90), (2021, 2.00),
                 (2024, 2.10)],
}
_IDLE_SIGMA_KNOTS = {
    Vendor.INTEL: [(2005, 0.05), (2010, 0.10), (2015, 0.14), (2018, 0.22), (2024, 0.30)],
    Vendor.AMD: [(2005, 0.05), (2010, 0.10), (2015, 0.14), (2018, 0.20), (2024, 0.26)],
}
_IDLE_NOISE_KNOTS = {
    Vendor.INTEL: [(2005, 0.0), (2016, 0.0), (2018, 0.004), (2021, 0.010), (2024, 0.013)],
    Vendor.AMD: [(2005, 0.0), (2016, 0.0), (2018, 0.001), (2021, 0.002), (2024, 0.0025)],
}
_FREQ_FLOOR_KNOTS = {
    Vendor.INTEL: [(2005, 0.75), (2009, 0.60), (2013, 0.50), (2017, 0.40), (2024, 0.35)],
    Vendor.AMD: [(2005, 0.75), (2009, 0.62), (2013, 0.55), (2017, 0.50), (2021, 0.40),
                 (2024, 0.38)],
}


def profile_for(vendor: Vendor, year: float) -> GenerationProfile:
    """Generation profile for a given vendor and (fractional) release year.

    Non-x86 and desktop parts reuse the Intel trajectory: they are filtered
    out by the analysis, so only plausibility matters.
    """
    key = vendor if vendor in (Vendor.INTEL, Vendor.AMD) else Vendor.INTEL
    static = _interpolate(year, _STATIC_KNOTS[key])
    turbo = _interpolate(year, _TURBO_KNOTS[key])
    quad_share = _interpolate(year, _QUAD_SHARE_KNOTS[key])
    dynamic = max(1.0 - static - turbo, 0.05)
    quad = dynamic * quad_share
    linear = dynamic - quad
    profile = GenerationProfile(
        static_fraction=static,
        linear_fraction=linear,
        quadratic_fraction=quad,
        turbo_fraction=turbo,
        idle_quotient_mean=_interpolate(year, _IDLE_QUOTIENT_KNOTS[key]),
        idle_quotient_sigma=_interpolate(year, _IDLE_SIGMA_KNOTS[key]),
        idle_noise_per_logical_cpu=_interpolate(year, _IDLE_NOISE_KNOTS[key]),
        frequency_scaling_floor=_interpolate(year, _FREQ_FLOOR_KNOTS[key]),
    )
    return profile.normalized()


# --------------------------------------------------------------------------- #
# Catalog entries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CatalogEntry:
    """A CPU available on the market plus typical configuration hints."""

    cpu: CPUSpec
    typical_memory_gb_per_socket: float
    typical_sockets: tuple[int, ...]
    popularity: float = 1.0

    @property
    def release(self) -> MonthDate:
        return self.cpu.release


# (model, vendor, family, codename, cores, threads/core, base MHz, turbo MHz,
#  TDP W, release (y, m), ssj_ops/socket, avx bits, process nm,
#  typical mem GB/socket, typical sockets, popularity)
_SERVER_PARTS: tuple[tuple, ...] = (
    # --- Intel: 2005-2008 (Netburst / Core era) --------------------------------
    ("Xeon 7041", "Intel", "Xeon", "Paxville", 2, 2, 3000, 3000, 165, (2005, 10),
     40_000, 128, 90, 4, (2, 4), 0.5),
    ("Opteron 280", "AMD", "Opteron", "Italy", 2, 1, 2400, 2400, 95, (2005, 8),
     48_000, 128, 90, 4, (2,), 0.5),
    ("Xeon 5060", "Intel", "Xeon", "Dempsey", 2, 2, 3200, 3200, 130, (2006, 5),
     55_000, 128, 65, 4, (1, 2), 0.5),
    ("Xeon 5160", "Intel", "Xeon", "Woodcrest", 2, 1, 3000, 3000, 80, (2006, 6),
     90_000, 128, 65, 4, (1, 2), 0.8),
    ("Xeon E5345", "Intel", "Xeon", "Clovertown", 4, 1, 2333, 2333, 80, (2007, 1),
     140_000, 128, 65, 8, (1, 2), 1.0),
    ("Xeon L5420", "Intel", "Xeon", "Harpertown", 4, 1, 2500, 2500, 50, (2008, 1),
     180_000, 128, 45, 8, (1, 2), 1.2),
    ("Xeon X5470", "Intel", "Xeon", "Harpertown", 4, 1, 3333, 3333, 120, (2008, 8),
     210_000, 128, 45, 8, (2,), 0.9),
    # --- Intel: Nehalem / Westmere ---------------------------------------------
    ("Xeon X5570", "Intel", "Xeon", "Nehalem-EP", 4, 2, 2933, 3333, 95, (2009, 3),
     300_000, 128, 45, 12, (2,), 1.2),
    ("Xeon L5530", "Intel", "Xeon", "Nehalem-EP", 4, 2, 2400, 2667, 60, (2009, 8),
     260_000, 128, 45, 12, (1, 2), 0.8),
    ("Xeon X5670", "Intel", "Xeon", "Westmere-EP", 6, 2, 2933, 3333, 95, (2010, 3),
     430_000, 128, 32, 12, (2,), 1.3),
    ("Xeon L5640", "Intel", "Xeon", "Westmere-EP", 6, 2, 2266, 2800, 60, (2010, 3),
     380_000, 128, 32, 12, (1, 2), 1.0),
    # --- Intel: Sandy Bridge / Ivy Bridge ---------------------------------------
    ("Xeon E3-1260L", "Intel", "Xeon", "Sandy Bridge", 4, 2, 2400, 3300, 45, (2011, 4),
     330_000, 256, 32, 8, (1,), 0.7),
    ("Xeon E5-2660", "Intel", "Xeon", "Sandy Bridge-EP", 8, 2, 2200, 3000, 95, (2012, 3),
     620_000, 256, 32, 24, (2,), 1.3),
    ("Xeon E5-2670", "Intel", "Xeon", "Sandy Bridge-EP", 8, 2, 2600, 3300, 115, (2012, 3),
     660_000, 256, 32, 24, (2,), 1.0),
    ("Xeon E5-2470 v2", "Intel", "Xeon", "Ivy Bridge-EN", 10, 2, 2400, 3200, 95, (2014, 1),
     800_000, 256, 22, 24, (2,), 0.8),
    ("Xeon E5-2695 v2", "Intel", "Xeon", "Ivy Bridge-EP", 12, 2, 2400, 3200, 115, (2013, 9),
     900_000, 256, 22, 32, (2,), 1.0),
    # --- Intel: Haswell / Broadwell ---------------------------------------------
    ("Xeon E5-2699 v3", "Intel", "Xeon", "Haswell-EP", 18, 2, 2300, 3600, 145, (2014, 9),
     1_250_000, 256, 22, 32, (2,), 1.2),
    ("Xeon E5-2660 v3", "Intel", "Xeon", "Haswell-EP", 10, 2, 2600, 3300, 105, (2014, 9),
     850_000, 256, 22, 32, (2,), 0.9),
    ("Xeon E5-2699 v4", "Intel", "Xeon", "Broadwell-EP", 22, 2, 2200, 3600, 145, (2016, 3),
     1_500_000, 256, 14, 32, (2,), 1.2),
    ("Xeon D-1541", "Intel", "Xeon", "Broadwell-DE", 8, 2, 2100, 2700, 45, (2015, 11),
     480_000, 256, 14, 16, (1,), 0.6),
    # --- Intel: Skylake-SP and later ---------------------------------------------
    ("Xeon Platinum 8180", "Intel", "Xeon", "Skylake-SP", 28, 2, 2500, 3800, 205, (2017, 7),
     1_900_000, 512, 14, 48, (2,), 1.2),
    ("Xeon Silver 4116", "Intel", "Xeon", "Skylake-SP", 12, 2, 2100, 3000, 85, (2017, 7),
     900_000, 512, 14, 32, (1, 2), 0.9),
    ("Xeon Platinum 8280", "Intel", "Xeon", "Cascade Lake-SP", 28, 2, 2700, 4000, 205, (2019, 4),
     2_100_000, 512, 14, 48, (2,), 1.1),
    ("Xeon Gold 6252", "Intel", "Xeon", "Cascade Lake-SP", 24, 2, 2100, 3700, 150, (2019, 4),
     1_700_000, 512, 14, 48, (2,), 0.9),
    ("Xeon Gold 5317", "Intel", "Xeon", "Ice Lake-SP", 12, 2, 3000, 3600, 150, (2021, 4),
     1_200_000, 512, 10, 32, (1, 2), 1.1),
    ("Xeon Gold 6326", "Intel", "Xeon", "Ice Lake-SP", 16, 2, 2900, 3500, 185, (2021, 4),
     1_500_000, 512, 10, 32, (1, 2), 1.0),
    ("Xeon Silver 4410Y", "Intel", "Xeon", "Sapphire Rapids", 12, 2, 2000, 3900, 150, (2023, 1),
     1_250_000, 512, 10, 32, (1, 2), 1.1),
    ("Xeon Gold 6538Y+", "Intel", "Xeon", "Emerald Rapids", 32, 2, 2200, 4000, 225, (2023, 12),
     3_300_000, 512, 7, 64, (1, 2), 0.9),
    ("Xeon Platinum 8380", "Intel", "Xeon", "Ice Lake-SP", 40, 2, 2300, 3400, 270, (2021, 4),
     3_000_000, 512, 10, 64, (2,), 0.8),
    ("Xeon Gold 6338", "Intel", "Xeon", "Ice Lake-SP", 32, 2, 2000, 3200, 205, (2021, 4),
     2_400_000, 512, 10, 64, (1, 2), 1.2),
    ("Xeon Platinum 8490H", "Intel", "Xeon", "Sapphire Rapids", 60, 2, 1900, 3500, 350, (2023, 1),
     5_600_000, 512, 10, 128, (2,), 0.7),
    ("Xeon Platinum 8480+", "Intel", "Xeon", "Sapphire Rapids", 56, 2, 2000, 3800, 350, (2023, 1),
     5_300_000, 512, 10, 128, (2,), 0.6),
    ("Xeon Platinum 8592+", "Intel", "Xeon", "Emerald Rapids", 64, 2, 1900, 3900, 350, (2023, 12),
     6_300_000, 512, 7, 128, (1, 2), 0.6),
    ("Xeon Gold 6430", "Intel", "Xeon", "Sapphire Rapids", 32, 2, 2100, 3400, 270, (2023, 1),
     2_900_000, 512, 10, 64, (1, 2), 1.4),
    ("Xeon Gold 5420+", "Intel", "Xeon", "Sapphire Rapids", 28, 2, 2000, 4100, 205, (2023, 1),
     2_500_000, 512, 10, 64, (1, 2), 1.3),
    ("Xeon 6780E", "Intel", "Xeon", "Sierra Forest", 144, 1, 2200, 3000, 330, (2024, 6),
     8_200_000, 256, 7, 128, (1, 2), 0.25),
    # --- AMD: Opteron era ----------------------------------------------------------
    ("Opteron 2218", "AMD", "Opteron", "Santa Rosa", 2, 1, 2600, 2600, 95, (2006, 8),
     70_000, 128, 90, 4, (2,), 0.6),
    ("Opteron 2356", "AMD", "Opteron", "Barcelona", 4, 1, 2300, 2300, 75, (2008, 4),
     150_000, 128, 65, 8, (2,), 0.7),
    ("Opteron 2384", "AMD", "Opteron", "Shanghai", 4, 1, 2700, 2700, 75, (2009, 1),
     190_000, 128, 45, 8, (2,), 0.7),
    ("Opteron 2435", "AMD", "Opteron", "Istanbul", 6, 1, 2600, 2600, 75, (2009, 6),
     270_000, 128, 45, 12, (2,), 0.7),
    ("Opteron 6174", "AMD", "Opteron", "Magny-Cours", 12, 1, 2200, 2200, 80, (2010, 3),
     430_000, 128, 45, 16, (2,), 0.8),
    ("Opteron 6276", "AMD", "Opteron", "Interlagos", 16, 1, 2300, 3200, 115, (2011, 11),
     520_000, 256, 32, 32, (2,), 0.7),
    ("Opteron 6380", "AMD", "Opteron", "Abu Dhabi", 16, 1, 2500, 3400, 115, (2012, 11),
     560_000, 256, 32, 32, (2,), 0.5),
    # --- AMD: EPYC -----------------------------------------------------------------
    ("EPYC 7601", "AMD", "EPYC", "Naples", 32, 2, 2200, 3200, 180, (2017, 6),
     2_200_000, 256, 14, 64, (1, 2), 1.0),
    ("EPYC 7551", "AMD", "EPYC", "Naples", 32, 2, 2000, 3000, 180, (2017, 6),
     2_000_000, 256, 14, 64, (2,), 0.7),
    ("EPYC 7742", "AMD", "EPYC", "Rome", 64, 2, 2250, 3400, 225, (2019, 8),
     5_100_000, 256, 7, 128, (1, 2), 1.2),
    ("EPYC 7502", "AMD", "EPYC", "Rome", 32, 2, 2500, 3350, 180, (2019, 8),
     2_900_000, 256, 7, 64, (1, 2), 0.9),
    ("EPYC 7763", "AMD", "EPYC", "Milan", 64, 2, 2450, 3500, 280, (2021, 3),
     5_900_000, 256, 7, 128, (1, 2), 1.2),
    ("EPYC 7443", "AMD", "EPYC", "Milan", 24, 2, 2850, 4000, 200, (2021, 3),
     3_000_000, 256, 7, 64, (1, 2), 0.8),
    ("EPYC 9654", "AMD", "EPYC", "Genoa", 96, 2, 2400, 3700, 360, (2022, 11),
     9_300_000, 256, 5, 192, (1, 2), 1.2),
    ("EPYC 9454", "AMD", "EPYC", "Genoa", 48, 2, 2750, 3800, 290, (2022, 11),
     5_300_000, 256, 5, 96, (1, 2), 0.9),
    ("EPYC 9354", "AMD", "EPYC", "Genoa", 32, 2, 3250, 3800, 280, (2022, 11),
     4_500_000, 256, 5, 96, (1, 2), 0.9),
    ("EPYC 9224", "AMD", "EPYC", "Genoa", 24, 2, 2500, 3700, 200, (2022, 11),
     2_950_000, 256, 5, 64, (1, 2), 0.8),
    ("EPYC 9754", "AMD", "EPYC", "Bergamo", 128, 2, 2250, 3100, 360, (2023, 8),
     11_800_000, 256, 5, 192, (1, 2), 1.1),
    ("EPYC 8324P", "AMD", "EPYC", "Siena", 32, 2, 2650, 3000, 180, (2023, 9),
     3_650_000, 256, 5, 96, (1,), 0.7),
    ("EPYC 9965", "AMD", "EPYC", "Turin Dense", 192, 2, 2250, 3700, 500, (2024, 10),
     17_500_000, 256, 4, 192, (1, 2), 0.6),
)

# Parts that the paper's filters remove: desktop/workstation-class x86 CPUs
# and non-x86 processors.  Throughput/power values are only plausible.
_FILTERED_PARTS: tuple[tuple, ...] = (
    ("Pentium D 930", "Intel", "Desktop", "Presler", 2, 1, 3000, 3000, 95, (2006, 1),
     40_000, 128, 65, 2, (1,), 1.0),
    ("Core 2 Duo E6700", "Intel", "Desktop", "Conroe", 2, 1, 2667, 2667, 65, (2006, 7),
     65_000, 128, 65, 4, (1,), 1.0),
    ("Core i7-2600", "Intel", "Desktop", "Sandy Bridge", 4, 2, 3400, 3800, 95, (2011, 1),
     380_000, 256, 32, 8, (1,), 1.0),
    ("Athlon 64 X2 5200+", "AMD", "Desktop", "Windsor", 2, 1, 2600, 2600, 89, (2006, 9),
     45_000, 128, 90, 2, (1,), 1.0),
    ("Core i9-9900K", "Intel", "Desktop", "Coffee Lake", 8, 2, 3600, 5000, 95, (2018, 10),
     700_000, 256, 14, 16, (1,), 1.0),
    ("Ryzen 7 3700X", "AMD", "Desktop", "Matisse", 8, 2, 3600, 4400, 65, (2019, 7),
     750_000, 256, 7, 16, (1,), 1.0),
    ("POWER7 8-core", "Other", "NonX86", "POWER7", 8, 4, 3550, 3550, 200, (2010, 2),
     500_000, 128, 45, 32, (2,), 1.0),
    ("SPARC T4", "Other", "NonX86", "SPARC T4", 8, 8, 2850, 2850, 240, (2011, 9),
     450_000, 128, 40, 32, (2,), 1.0),
    ("ThunderX2 CN9975", "Other", "NonX86", "ThunderX2", 28, 4, 2000, 2500, 180, (2018, 5),
     1_200_000, 128, 16, 64, (2,), 1.0),
    ("Ampere Altra Q80-30", "Other", "NonX86", "Altra", 80, 1, 3000, 3000, 210, (2021, 3),
     3_000_000, 128, 7, 128, (1,), 1.0),
)


def _build_entry(row: tuple) -> CatalogEntry:
    (model, vendor, family, codename, cores, tpc, base_mhz, turbo_mhz, tdp,
     (year, month), ops, avx, nm, mem_per_socket, sockets, popularity) = row
    vendor_enum = Vendor(vendor)
    release = MonthDate(year, month)
    cpu = CPUSpec(
        model=model,
        vendor=vendor_enum,
        family=CPUFamily(family),
        codename=codename,
        cores=cores,
        threads_per_core=tpc,
        base_frequency_mhz=float(base_mhz),
        max_turbo_mhz=float(turbo_mhz),
        tdp_w=float(tdp),
        release=release,
        ssj_ops_per_socket=float(ops),
        profile=profile_for(vendor_enum, release.decimal_year),
        avx_width_bits=avx,
        process_nm=float(nm),
    )
    return CatalogEntry(
        cpu=cpu,
        typical_memory_gb_per_socket=float(mem_per_socket),
        typical_sockets=tuple(sockets),
        popularity=float(popularity),
    )


class Catalog:
    """Queryable collection of catalog entries."""

    def __init__(self, entries: Iterable[CatalogEntry]):
        self._entries = list(entries)
        if not self._entries:
            raise CatalogError("catalog must contain at least one entry")
        self._by_model = {entry.cpu.model: entry for entry in self._entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> list[CatalogEntry]:
        return list(self._entries)

    def get(self, model: str) -> CatalogEntry:
        """Look up an entry by exact CPU model name."""
        try:
            return self._by_model[model]
        except KeyError:
            raise CatalogError(f"unknown CPU model {model!r}") from None

    def server_entries(self) -> list[CatalogEntry]:
        """Entries the paper keeps (Xeon, Opteron, EPYC)."""
        return [e for e in self._entries if e.cpu.family.is_server_x86]

    def filtered_entries(self) -> list[CatalogEntry]:
        """Entries the paper's filters remove (desktop and non-x86 parts)."""
        return [e for e in self._entries if not e.cpu.family.is_server_x86]

    def by_vendor(self, vendor: Vendor) -> list[CatalogEntry]:
        return [e for e in self._entries if e.cpu.vendor == vendor]

    def available_in(
        self,
        year: int,
        vendor: Vendor | None = None,
        server_only: bool = True,
        window_years: float = 2.5,
    ) -> list[CatalogEntry]:
        """Entries whose release falls within ``window_years`` before the end
        of ``year`` — the parts a vendor would plausibly submit that year."""
        candidates = self.server_entries() if server_only else self.entries
        if vendor is not None:
            candidates = [e for e in candidates if e.cpu.vendor == vendor]
        end = year + 1.0
        start = end - window_years
        selected = [
            e for e in candidates if start <= e.cpu.release.decimal_year <= end
        ]
        if selected:
            return selected
        # Fall back to the newest parts released before the window (keeps the
        # sampler total even for gap years in a vendor's lineup).
        earlier = [e for e in candidates if e.cpu.release.decimal_year <= end]
        if not earlier:
            return []
        newest = max(e.cpu.release.decimal_year for e in earlier)
        return [e for e in earlier if newest - e.cpu.release.decimal_year <= 1.0]


@lru_cache(maxsize=None)
def default_catalog(include_filtered: bool = True) -> Catalog:
    """The built-in 2005–2024 catalog used by the fleet sampler.

    Built once per process and shared: entries are frozen and the catalog
    is never mutated (extension goes through a *new* ``Catalog``, see
    :meth:`repro.session.Session.register_platform`), so callers that
    construct a director or worker per plan don't pay the entry-profile
    interpolation repeatedly.
    """
    rows = _SERVER_PARTS + (_FILTERED_PARTS if include_filtered else ())
    return Catalog(_build_entry(row) for row in rows)
