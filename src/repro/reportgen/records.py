"""Parse-bypass record derivation: :class:`RunRecord` straight from a result.

The conventional pipeline for a synthetic corpus is *render → parse*: every
:class:`~repro.simulator.result.RunResult` becomes a ~60-line plain-text
report (:func:`~repro.reportgen.textreport.render_report`) which the parser
immediately re-extracts with regexes.  When the corpus is synthetic and the
results are already in memory, that round trip is pure overhead —
:func:`derive_record` produces the identical :class:`RunRecord` directly.

**Bit-identity is the contract**, pinned by ``tests/test_record_derive.py``:
every field goes through exactly the formatting round trip the text path
applies (``float(f"{x:.1f}")`` where the report prints one decimal, the
anomaly-mangled core counts, the same CPU classification), so
``derive_record(result)`` equals ``parse_result_text(render_report(result))``
field for field, for clean and defective plans alike.  The text path stays
the only route for external corpora and remains covered by the parser tests.
"""

from __future__ import annotations

from ..errors import ParseError
from ..market.anomalies import AnomalyKind
from ..market.catalog import Catalog, default_catalog
from ..market.fleet import SystemPlan, sample_fleet
from ..parallel import ParallelConfig, parallel_map
from ..parser.corpus import CorpusParseReport, RejectedFile
from ..parser.cpuinfo import classify_cpu
from ..parser.fields import LOAD_LEVELS, RunRecord
from ..parser.resultfile import _classify_os
from ..parser.validation import validate_run
from ..simulator.director import RunDirector, SimulationOptions
from ..simulator.result import RunResult
from ..units import parse_month_date
from .textreport import (
    _cpu_display_name,
    _cpu_vendor_name,
    _hardware_availability,
)

__all__ = ["derive_record", "derive_corpus_report"]


def _round_trip(value: float, decimals: int) -> float:
    """The value a rendered-then-parsed number comes back as."""
    return float(f"{value:.{decimals}f}")


def derive_record(result: RunResult) -> RunRecord:
    """The :class:`RunRecord` the text round trip would produce, directly.

    Mirrors :func:`render_report` + ``parse_result_text`` exactly, including
    injected anomalies and the per-field precision the report format prints.
    """
    plan = result.plan
    cpu = result.cpu
    record = RunRecord(file_name=plan.file_name, run_id=plan.run_id)

    # Dates ----------------------------------------------------------------
    record.test_year, record.test_month = plan.test_date.year, plan.test_date.month
    record.publication_year = plan.publication_date.year
    record.publication_month = plan.publication_date.month
    record.sw_avail_year, record.sw_avail_month = plan.sw_avail.year, plan.sw_avail.month
    try:
        hw = parse_month_date(_hardware_availability(result))
    except ParseError:
        hw = None  # year-only (ambiguous) availability
    if hw is not None:
        record.hw_avail_year, record.hw_avail_month = hw.year, hw.month
        record.hw_avail_decimal = hw.decimal_year

    # System ---------------------------------------------------------------
    record.system_vendor = plan.system_vendor
    record.system_model = plan.system_model
    if plan.anomaly != AnomalyKind.MISSING_NODE_COUNT:
        record.nodes = plan.nodes
    record.sockets_per_node = plan.sockets
    record.memory_gb = _round_trip(plan.memory_gb, 0)
    record.psu_rating_w = _round_trip(plan.psu_rating_w, 0)

    # The "CPU(s) Enabled" / "Hardware Threads" lines carry the plan's core
    # math after anomaly mangling; mirror the renderer's core arithmetic so
    # the derived counts equal the numbers it would print.
    cores_total = cpu.cores * plan.sockets * plan.nodes
    cores_per_chip = cpu.cores
    if plan.anomaly == AnomalyKind.INCONSISTENT_CORE_THREAD:
        cores_per_chip = max(cpu.cores - 2, 1)
    if plan.anomaly == AnomalyKind.IMPLAUSIBLE_CORE_COUNT:
        cores_total *= 10_000
    record.cores_total = cores_total
    record.total_chips = plan.sockets * plan.nodes
    record.cores_per_chip = cores_per_chip
    record.threads_total = cores_total * cpu.threads_per_core
    record.threads_per_core = cpu.threads_per_core

    # CPU ------------------------------------------------------------------
    record.cpu_name = _cpu_display_name(result)
    record.cpu_frequency_mhz = _round_trip(cpu.base_frequency_mhz, 0)
    record.cpu_vendor = _cpu_vendor_name(result)
    info = classify_cpu(record.cpu_name)
    if record.cpu_vendor is None or info.vendor != "Other":
        record.cpu_vendor = info.vendor
    record.cpu_family = info.family
    record.cpu_class = info.cpu_class

    # Software -------------------------------------------------------------
    record.os_name = plan.os_name
    record.os_family = _classify_os(plan.os_name)
    record.jvm = plan.jvm_name

    # Results --------------------------------------------------------------
    for level in result.load_levels:
        percent = int(f"{level.target_load * 100:.0f}")
        if percent not in LOAD_LEVELS:
            continue
        record.set_level(
            "actual_load", percent, _round_trip(level.actual_load * 100, 1) / 100.0
        )
        record.set_level("ssj_ops", percent, _round_trip(level.ssj_ops, 0))
        record.set_level("power", percent, _round_trip(level.average_power_w, 1))
    record.power_idle = _round_trip(result.active_idle.average_power_w, 1)
    record.overall_ssj_ops_per_watt = _round_trip(result.overall_efficiency, 0)
    record.accepted = not (
        plan.anomaly == AnomalyKind.NOT_ACCEPTED or not result.accepted
    )
    return record


def _derive_outcome(
    file_name: str, result: RunResult
) -> tuple[str, RunRecord | None, str | None]:
    """Derive + validate one simulated result; returns (file, record, rejection)."""
    record = derive_record(result)
    report = validate_run(record)
    if not report.is_valid:
        return file_name, None, str(report.primary_issue)
    return file_name, record, None


# Module-level worker so the process-pool backend can pickle it.
def _derive_plan(
    args: tuple[SystemPlan, int, SimulationOptions, Catalog | None],
) -> tuple[str, RunRecord | None, str | None]:
    """Simulate + derive + validate one plan; returns (file, record, rejection)."""
    plan, seed, options, catalog = args
    director = RunDirector(
        catalog=catalog or default_catalog(), options=options, corpus_seed=seed
    )
    return _derive_outcome(plan.file_name, director.run(plan))


def derive_corpus_report(
    directory,
    total_parsed_runs: int = 960,
    seed: int = 2024,
    options: SimulationOptions | None = None,
    catalog: Catalog | None = None,
    parallel: ParallelConfig | None = None,
    batch: bool = False,
) -> CorpusParseReport:
    """The parse funnel of a synthetic corpus, without materialising it.

    Samples the same fleet :func:`~repro.reportgen.writer.generate_corpus_files`
    would write, simulates every plan, and derives + validates records
    directly — no report text is rendered, no file is written or parsed.
    The returned report matches ``parse_directory`` over the rendered corpus
    record for record and rejection for rejection (plans are processed in
    file-name order, exactly the order a directory scan visits them).

    ``batch=True`` simulates the whole fleet through the vectorized
    :class:`~repro.simulator.batch.BatchDirector` in-process (bit-for-bit
    identical to the scalar director, pinned by the batch equivalence
    suite); otherwise plans run per-unit through ``parallel``.

    ``directory`` only labels the report (where the corpus *would* live);
    ``catalog=None`` uses the default catalog without shipping it to workers.
    """
    options = options or SimulationOptions()
    fleet = sample_fleet(total_parsed_runs, seed, catalog=catalog)
    plans = sorted(fleet.systems, key=lambda plan: plan.file_name)
    if batch:
        from ..simulator.batch import BatchDirector

        director = BatchDirector(
            catalog=catalog or default_catalog(), options=options, corpus_seed=seed
        )
        outcomes = [
            _derive_outcome(plan.file_name, result)
            for plan, result in zip(plans, director.run_batch(plans))
        ]
    else:
        work = [(plan, seed, options, catalog) for plan in plans]
        outcomes = parallel_map(
            _derive_plan, work, config=parallel or ParallelConfig(backend="serial")
        )
    records: list[RunRecord] = []
    rejected: list[RejectedFile] = []
    for name, record, reason in outcomes:
        if record is not None:
            records.append(record)
        else:
            rejected.append(RejectedFile(name, reason or "unknown"))
    return CorpusParseReport(
        records=tuple(records), rejected=tuple(rejected), directory=str(directory)
    )
