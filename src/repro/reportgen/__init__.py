"""Rendering of SPEC-style result report files.

:mod:`repro.reportgen.textreport` turns one simulated
:class:`repro.simulator.result.RunResult` into the plain-text report format
consumed by :mod:`repro.parser`; :mod:`repro.reportgen.writer` generates and
writes whole corpora (optionally in parallel).
"""

from .textreport import render_report, REPORT_HEADER
from .records import derive_record, derive_corpus_report
from .writer import CorpusWriter, CorpusGenerationReport, generate_corpus_files

__all__ = [
    "render_report",
    "REPORT_HEADER",
    "derive_record",
    "derive_corpus_report",
    "CorpusWriter",
    "CorpusGenerationReport",
    "generate_corpus_files",
]
