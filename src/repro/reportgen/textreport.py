"""Plain-text SPEC-style report rendering.

The format follows the structure of the published ``.txt`` result files on
the SPEC website (simplified to the fields the paper's analysis extracts):
a header block, the benchmark results summary table with one row per target
load plus active idle, and the system-under-test description.

The renderer is also where data defects are injected: a
:class:`repro.market.anomalies.AnomalyKind` attached to the plan alters the
rendered text exactly the way real-world defective submissions are malformed
(year-only dates, missing node counts, inconsistent core totals, ...), so the
parser and validation layer have realistic material to reject.
"""

from __future__ import annotations

from ..errors import ReportError
from ..market.anomalies import AnomalyKind
from ..simulator.result import RunResult
from ..units import format_month_date, format_number

__all__ = ["render_report", "REPORT_HEADER"]

REPORT_HEADER = "SPECpower_ssj2008 Result"

#: Display vendor for non-x86 parts (the CPU vendor column of real reports
#: names the silicon vendor, not "Other").
_OTHER_VENDOR_NAMES = {
    "POWER": "IBM",
    "SPARC": "Oracle",
    "ThunderX": "Cavium",
    "Altra": "Ampere",
}


def _cpu_vendor_name(result: RunResult) -> str:
    vendor = result.cpu.vendor.value
    if vendor != "Other":
        return vendor
    for marker, name in _OTHER_VENDOR_NAMES.items():
        if marker.lower() in result.cpu.model.lower():
            return name
    return "Other"


def _cpu_display_name(result: RunResult) -> str:
    anomaly = result.plan.anomaly
    vendor = _cpu_vendor_name(result)
    if anomaly == AnomalyKind.AMBIGUOUS_CPU:
        # Real-world defect: the CPU name field only contains the brand.
        return f"{vendor} Processor"
    return f"{vendor} {result.cpu.model}"


def _hardware_availability(result: RunResult) -> str:
    anomaly = result.plan.anomaly
    if anomaly == AnomalyKind.AMBIGUOUS_DATE:
        return str(result.plan.hw_avail.year)  # year only: ambiguous
    if anomaly == AnomalyKind.IMPLAUSIBLE_DATE:
        return "Jan-1901"  # obviously wrong
    return format_month_date(result.plan.hw_avail)


def _core_lines(result: RunResult) -> tuple[str, str]:
    """The "CPU(s) Enabled" and "Hardware Threads" lines (possibly defective)."""
    plan = result.plan
    cpu = result.cpu
    cores_total = cpu.cores * plan.sockets * plan.nodes
    chips_total = plan.sockets * plan.nodes
    cores_per_chip = cpu.cores
    threads_total = cores_total * cpu.threads_per_core
    anomaly = plan.anomaly
    if anomaly == AnomalyKind.INCONSISTENT_CORE_THREAD:
        cores_per_chip = max(cpu.cores - 2, 1)  # total no longer matches
    if anomaly == AnomalyKind.IMPLAUSIBLE_CORE_COUNT:
        # A corrupted total far beyond any shipping system, so the validation
        # layer classifies it as implausible rather than merely inconsistent.
        cores_total *= 10_000
        threads_total = cores_total * cpu.threads_per_core
    enabled = (
        f"    CPU(s) Enabled: {cores_total} cores, {chips_total} chips, "
        f"{cores_per_chip} cores/chip"
    )
    threads = (
        f"    Hardware Threads: {threads_total} ({cpu.threads_per_core} / core)"
    )
    return enabled, threads


def _results_table(result: RunResult) -> list[str]:
    lines = [
        "Benchmark Results Summary",
        "=========================",
        "",
        "Target Load | Actual Load |      ssj_ops | Average Active Power (W) | Performance to Power Ratio",
        "------------+-------------+--------------+--------------------------+---------------------------",
    ]
    for level in result.load_levels:
        ratio = level.performance_to_power_ratio
        lines.append(
            f"{level.target_load * 100:10.0f}% | {level.actual_load * 100:10.1f}% | "
            f"{format_number(level.ssj_ops):>12} | {level.average_power_w:24.1f} | "
            f"{format_number(ratio):>26}"
        )
    idle = result.active_idle
    lines.append(
        f"Active Idle |             | {format_number(0):>12} | "
        f"{idle.average_power_w:24.1f} | {format_number(0):>26}"
    )
    lines.append("")
    lines.append(
        f"∑ssj_ops / ∑power = {format_number(result.overall_efficiency)}"
    )
    return lines


def render_report(result: RunResult) -> str:
    """Render one run result as a SPEC-style plain-text report."""
    plan = result.plan
    cpu = result.cpu
    if plan.nodes < 1:
        raise ReportError("plan must have at least one node")

    compliance = "Yes"
    compliance_note = ""
    if plan.anomaly == AnomalyKind.NOT_ACCEPTED or not result.accepted:
        compliance = "No"
        compliance_note = (
            "    NON-COMPLIANT: This result was not accepted by the SPEC committee.\n"
        )

    header = [
        REPORT_HEADER,
        "Copyright (C) 2007-2024 Standard Performance Evaluation Corporation (synthetic reproduction corpus)",
        "",
        f"Test Sponsor: {plan.system_vendor}",
        f"Tested By: {plan.system_vendor}",
        "Test Method: SPECpower_ssj2008",
        f"SPEC License #: {1000 + abs(hash(plan.system_vendor)) % 900}",
        f"Test Date: {format_month_date(plan.test_date)}",
        f"Publication Date: {format_month_date(plan.publication_date)}",
        f"Hardware Availability: {_hardware_availability(result)}",
        f"Software Availability: {format_month_date(plan.sw_avail)}",
        "System Source: Single Supplier",
        "Power Provisioning: Line-powered",
        "",
    ]

    overall_line = [
        "Performance Summary:",
        f"    Overall ssj_ops/watt: {format_number(result.overall_efficiency)}",
        "",
    ]

    enabled_line, threads_line = _core_lines(result)
    node_count_line = (
        []
        if plan.anomaly == AnomalyKind.MISSING_NODE_COUNT
        else [f"    Number of Nodes: {plan.nodes}"]
    )
    sut = [
        "",
        "System Under Test",
        "=================",
        "Shared Hardware:",
        f"    Hardware Vendor: {plan.system_vendor}",
        f"    Model: {plan.system_model}",
        "    Form Factor: 2U rack-mountable",
        *node_count_line,
        "    Nodes Identical: Yes",
        "",
        "Hardware per Node:",
        f"    CPU Name: {_cpu_display_name(result)}",
        f"    CPU Characteristics: {cpu.nominal_ghz:.2f} GHz, {cpu.cores} cores per chip, "
        f"{cpu.tdp_w:.0f} W TDP",
        f"    CPU Frequency (MHz): {cpu.base_frequency_mhz:.0f}",
        f"    CPU Vendor: {_cpu_vendor_name(result)}",
        f"    Chips per Node: {plan.sockets}",
        enabled_line,
        threads_line,
        f"    Memory Amount (GB): {plan.memory_gb:.0f}",
        f"    Power Supply Rating (W): {plan.psu_rating_w:.0f}",
        "    Disk Drive: 1 x SSD",
        "",
        "Software per Node:",
        "    Power Management: Enabled",
        f"    Operating System (OS): {plan.os_name}",
        f"    JVM Vendor: {plan.jvm_name.split(' ')[0]}",
        f"    JVM Version: {plan.jvm_name}",
        f"    JVM Instances: {max(plan.sockets, 1)}",
        "",
        "Run Compliance",
        "==============",
        f"    Valid Run: {compliance}",
    ]

    lines = header + overall_line + _results_table(result) + sut
    text = "\n".join(lines) + "\n"
    if compliance_note:
        text += compliance_note
    return text
