"""Corpus generation: sample a fleet, simulate every run, write the reports.

``generate_corpus_files`` is the one-call entry point used by the CLI, the
examples and the benchmark harness.  Generation of individual runs is a pure
function of ``(plan, corpus seed)``, so the work can be distributed over a
process pool via :mod:`repro.parallel`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReportError
from ..market.anomalies import AnomalyPlan
from ..market.catalog import Catalog, default_catalog
from ..market.fleet import FleetPlan, FleetSampler, SystemPlan, sample_fleet
from ..market.trends import MarketTrends
from ..parallel import ParallelConfig, parallel_map
from ..simulator.director import RunDirector, SimulationOptions
from .textreport import render_report

__all__ = ["CorpusWriter", "CorpusGenerationReport", "generate_corpus_files"]


@dataclass(frozen=True)
class CorpusGenerationReport:
    """What a corpus generation produced."""

    directory: Path
    total_files: int
    clean_runs: int
    defective_runs: int
    seed: int

    def describe(self) -> str:
        return (
            f"{self.total_files} report files in {self.directory} "
            f"({self.clean_runs} clean, {self.defective_runs} defective, seed {self.seed})"
        )


# Module-level worker so the process-pool backend can pickle it.
def _render_plan(
    args: tuple[SystemPlan, int, SimulationOptions, Catalog | None],
) -> tuple[str, str]:
    """Simulate one plan and return ``(file_name, report_text)``.

    ``catalog`` travels inside the payload only for non-default catalogs;
    ``None`` keeps payloads small for the common case.
    """
    plan, seed, options, catalog = args
    director = RunDirector(
        catalog=catalog or default_catalog(), options=options, corpus_seed=seed
    )
    result = director.run(plan)
    return plan.file_name, render_report(result)


class CorpusWriter:
    """Generates a synthetic corpus of SPEC-style report files."""

    def __init__(
        self,
        output_dir: str | os.PathLike,
        total_parsed_runs: int = 960,
        seed: int = 2024,
        catalog: Catalog | None = None,
        trends: MarketTrends | None = None,
        anomalies: AnomalyPlan | None = None,
        options: SimulationOptions | None = None,
        parallel: ParallelConfig | None = None,
    ):
        self.output_dir = Path(output_dir)
        self.seed = seed
        # ``None`` when the default catalog is in use: the worker payloads
        # then ship no catalog and each worker rebuilds the default locally.
        self._custom_catalog = catalog
        self.catalog = catalog or default_catalog()
        self.options = options or SimulationOptions()
        self.parallel = parallel or ParallelConfig(backend="serial")
        self.sampler = FleetSampler(
            total_parsed_runs=total_parsed_runs,
            catalog=self.catalog,
            trends=trends,
            anomalies=anomalies,
        )
        self._default_market = catalog is None and trends is None and anomalies is None

    def plan(self) -> FleetPlan:
        """Sample the fleet plan (deterministic for a given seed).

        Default-market configurations go through the process-wide
        :func:`~repro.market.fleet.sample_fleet` memo, so writing a corpus
        and bypass-deriving its dataset share one sampled plan.
        """
        if self._default_market:
            return sample_fleet(self.sampler.total_parsed_runs, self.seed)
        return self.sampler.sample(self.seed)

    def write(self, fleet: FleetPlan | None = None) -> CorpusGenerationReport:
        """Simulate every plan and write one ``.txt`` report per submission."""
        fleet = fleet or self.plan()
        self.output_dir.mkdir(parents=True, exist_ok=True)
        work = [
            (plan, self.seed, self.options, self._custom_catalog)
            for plan in fleet.systems
        ]
        rendered = parallel_map(_render_plan, work, config=self.parallel)
        for file_name, text in rendered:
            path = self.output_dir / file_name
            path.write_text(text, encoding="utf-8")
        return CorpusGenerationReport(
            directory=self.output_dir,
            total_files=len(rendered),
            clean_runs=len(fleet.clean),
            defective_runs=len(fleet.defective),
            seed=self.seed,
        )


def generate_corpus_files(
    output_dir: str | os.PathLike,
    total_parsed_runs: int = 960,
    seed: int = 2024,
    parallel: ParallelConfig | None = None,
    options: SimulationOptions | None = None,
    catalog: Catalog | None = None,
) -> CorpusGenerationReport:
    """Generate a full synthetic corpus with default market settings."""
    if total_parsed_runs < 30:
        raise ReportError("total_parsed_runs must be >= 30")
    writer = CorpusWriter(
        output_dir,
        total_parsed_runs=total_parsed_runs,
        seed=seed,
        catalog=catalog,
        parallel=parallel,
        options=options,
    )
    return writer.write()
