"""A minimal SVG document builder.

Only the primitives the chart layer needs are implemented: rectangles,
lines, polylines, polygons, circles and text, plus grouping.  Output is a
standalone ``.svg`` file viewable in any browser.
"""

from __future__ import annotations

import os
from typing import Sequence
from xml.sax.saxutils import escape, quoteattr

from ..errors import PlotError

__all__ = ["SVGDocument"]


def _fmt(value: float) -> str:
    """Compact numeric formatting for SVG coordinates."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


class SVGDocument:
    """Accumulates SVG elements and serialises them to text."""

    def __init__(self, width: float, height: float, background: str | None = "#ffffff"):
        if width <= 0 or height <= 0:
            raise PlotError("SVG dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------ #
    def _attrs(self, **attributes) -> str:
        parts = []
        for key, value in attributes.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            parts.append(f"{name}={quoteattr(str(value))}")
        return " ".join(parts)

    def raw(self, element: str) -> None:
        """Append a raw SVG element string (escape hatch for tests)."""
        self._elements.append(element)

    def rect(self, x: float, y: float, width: float, height: float, **attrs) -> None:
        self._elements.append(
            f"<rect x={quoteattr(_fmt(x))} y={quoteattr(_fmt(y))} "
            f"width={quoteattr(_fmt(width))} height={quoteattr(_fmt(height))} "
            f"{self._attrs(**attrs)} />"
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, **attrs) -> None:
        self._elements.append(
            f"<line x1={quoteattr(_fmt(x1))} y1={quoteattr(_fmt(y1))} "
            f"x2={quoteattr(_fmt(x2))} y2={quoteattr(_fmt(y2))} {self._attrs(**attrs)} />"
        )

    def circle(self, cx: float, cy: float, r: float, **attrs) -> None:
        self._elements.append(
            f"<circle cx={quoteattr(_fmt(cx))} cy={quoteattr(_fmt(cy))} "
            f"r={quoteattr(_fmt(r))} {self._attrs(**attrs)} />"
        )

    def _points(self, points: Sequence[tuple[float, float]]) -> str:
        return " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)

    def polyline(self, points: Sequence[tuple[float, float]], **attrs) -> None:
        if len(points) < 2:
            raise PlotError("polyline requires at least two points")
        self._elements.append(
            f"<polyline points={quoteattr(self._points(points))} {self._attrs(fill='none', **attrs)} />"
        )

    def polygon(self, points: Sequence[tuple[float, float]], **attrs) -> None:
        if len(points) < 3:
            raise PlotError("polygon requires at least three points")
        self._elements.append(
            f"<polygon points={quoteattr(self._points(points))} {self._attrs(**attrs)} />"
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 12,
        anchor: str = "start",
        rotate: float | None = None,
        **attrs,
    ) -> None:
        transform = None
        if rotate is not None:
            transform = f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"
        self._elements.append(
            f"<text x={quoteattr(_fmt(x))} y={quoteattr(_fmt(y))} "
            f"font-size={quoteattr(_fmt(size))} text-anchor={quoteattr(anchor)} "
            f"font-family=\"Helvetica, Arial, sans-serif\" "
            f"{self._attrs(transform=transform, **attrs)}>{escape(content)}</text>"
        )

    def group_start(self, **attrs) -> None:
        self._elements.append(f"<g {self._attrs(**attrs)}>")

    def group_end(self) -> None:
        self._elements.append("</g>")

    # ------------------------------------------------------------------ #
    def to_string(self) -> str:
        header = (
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
            f"<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{_fmt(self.width)}\" "
            f"height=\"{_fmt(self.height)}\" viewBox=\"0 0 {_fmt(self.width)} {_fmt(self.height)}\">"
        )
        return header + "\n" + "\n".join(self._elements) + "\n</svg>\n"

    def save(self, path: str | os.PathLike) -> None:
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_string())
