"""Axis scales and tick generation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..errors import PlotError

__all__ = ["Extent", "LinearScale", "nice_ticks"]


@dataclass(frozen=True)
class Extent:
    """A closed numeric interval used as a data domain."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.low) or not math.isfinite(self.high):
            raise PlotError(f"extent bounds must be finite, got {self.low}..{self.high}")
        if self.high < self.low:
            raise PlotError(f"extent high < low: {self.low}..{self.high}")

    @property
    def span(self) -> float:
        return self.high - self.low

    def expanded(self, fraction: float = 0.05) -> "Extent":
        """Expand both ends by ``fraction`` of the span (for plot padding)."""
        if self.span == 0:
            pad = max(abs(self.low) * fraction, 1.0)
        else:
            pad = self.span * fraction
        return Extent(self.low - pad, self.high + pad)

    def include(self, value: float) -> "Extent":
        """Extent widened to contain ``value``."""
        return Extent(min(self.low, value), max(self.high, value))

    @classmethod
    def of(cls, values: Iterable[float]) -> "Extent":
        """Extent of the finite values in ``values``."""
        finite = [float(v) for v in values if v is not None and math.isfinite(float(v))]
        if not finite:
            raise PlotError("cannot compute the extent of an empty/NaN-only sequence")
        return cls(min(finite), max(finite))


def nice_ticks(extent: Extent, target_count: int = 6) -> list[float]:
    """Generate "nice" tick positions (1/2/5 x 10^k spacing) covering ``extent``."""
    if target_count < 2:
        raise PlotError("target_count must be >= 2")
    span = extent.span
    if span == 0:
        return [extent.low]
    raw_step = span / (target_count - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    residual = raw_step / magnitude
    if residual <= 1.0:
        step = magnitude
    elif residual <= 2.0:
        step = 2 * magnitude
    elif residual <= 5.0:
        step = 5 * magnitude
    else:
        step = 10 * magnitude
    first = math.ceil(extent.low / step) * step
    ticks = []
    value = first
    while value <= extent.high + 1e-9 * step:
        # Snap to a clean representation to avoid 0.30000000000000004 labels.
        ticks.append(round(value, 10))
        value += step
    return ticks


@dataclass(frozen=True)
class LinearScale:
    """Affine mapping from a data domain to an output pixel range."""

    domain: Extent
    range_low: float
    range_high: float

    def __call__(self, value: float) -> float:
        span = self.domain.span
        if span == 0:
            return (self.range_low + self.range_high) / 2.0
        fraction = (value - self.domain.low) / span
        return self.range_low + fraction * (self.range_high - self.range_low)

    def invert(self, position: float) -> float:
        """Map an output position back to the data domain."""
        range_span = self.range_high - self.range_low
        if range_span == 0:
            return self.domain.low
        fraction = (position - self.range_low) / range_span
        return self.domain.low + fraction * self.domain.span

    def ticks(self, target_count: int = 6) -> list[float]:
        return nice_ticks(self.domain, target_count)
