"""Chart types used by the paper's figures.

Every chart follows the same pattern: configure data series, call
:meth:`render` to obtain an :class:`repro.plotting.svg.SVGDocument`, or
:meth:`save` to write the SVG file directly.  Charts are deliberately
stateless value objects so they are easy to test (the tests inspect the SVG
text for expected elements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import PlotError
from ..stats.distribution import BoxStats
from .scale import Extent, LinearScale
from .svg import SVGDocument

__all__ = [
    "ChartTheme",
    "Series",
    "BoxSeries",
    "ScatterChart",
    "LineChart",
    "BoxChart",
    "StackedAreaChart",
    "BarChart",
]

#: Default qualitative palette (vendor colours loosely follow the paper:
#: AMD in reds/oranges, Intel in blues).
_PALETTE = (
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
)


@dataclass(frozen=True)
class ChartTheme:
    """Sizing and styling shared by all charts."""

    width: float = 760.0
    height: float = 460.0
    margin_left: float = 80.0
    margin_right: float = 30.0
    margin_top: float = 50.0
    margin_bottom: float = 70.0
    font_size: float = 13.0
    grid_color: str = "#dddddd"
    axis_color: str = "#333333"
    palette: tuple[str, ...] = _PALETTE

    @property
    def plot_left(self) -> float:
        return self.margin_left

    @property
    def plot_right(self) -> float:
        return self.width - self.margin_right

    @property
    def plot_top(self) -> float:
        return self.margin_top

    @property
    def plot_bottom(self) -> float:
        return self.height - self.margin_bottom

    def color(self, index: int) -> str:
        return self.palette[index % len(self.palette)]


@dataclass
class Series:
    """A named (x, y) point series with an optional marker/colour override."""

    name: str
    x: Sequence[float]
    y: Sequence[float]
    color: str | None = None
    marker: str = "circle"  # "circle" or "square"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise PlotError(
                f"series {self.name!r}: x has {len(self.x)} points, y has {len(self.y)}"
            )

    def finite_points(self) -> list[tuple[float, float]]:
        points = []
        for xv, yv in zip(self.x, self.y):
            if xv is None or yv is None:
                continue
            xf, yf = float(xv), float(yv)
            if xf != xf or yf != yf:  # NaN
                continue
            points.append((xf, yf))
        return points


@dataclass
class BoxSeries:
    """A named series of box-plot statistics positioned along x."""

    name: str
    x: Sequence[float]
    boxes: Sequence[BoxStats]
    color: str | None = None
    width: float = 0.35

    def __post_init__(self) -> None:
        if len(self.x) != len(self.boxes):
            raise PlotError(
                f"box series {self.name!r}: {len(self.x)} positions vs {len(self.boxes)} boxes"
            )


class _BaseChart:
    """Shared axis/legend rendering."""

    def __init__(self, title: str = "", x_label: str = "", y_label: str = "",
                 theme: ChartTheme | None = None):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.theme = theme or ChartTheme()

    # Subclasses fill these in.
    def _x_extent(self) -> Extent:  # pragma: no cover - abstract
        raise NotImplementedError

    def _y_extent(self) -> Extent:  # pragma: no cover - abstract
        raise NotImplementedError

    def _draw_data(self, doc: SVGDocument, xs: LinearScale, ys: LinearScale) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def _legend_entries(self) -> list[tuple[str, str]]:
        return []

    def _scales(self) -> tuple[LinearScale, LinearScale]:
        theme = self.theme
        xs = LinearScale(self._x_extent().expanded(), theme.plot_left, theme.plot_right)
        ys = LinearScale(self._y_extent().expanded(), theme.plot_bottom, theme.plot_top)
        return xs, ys

    def render(self) -> SVGDocument:
        theme = self.theme
        doc = SVGDocument(theme.width, theme.height)
        xs, ys = self._scales()

        # Grid and ticks.
        for tick in xs.ticks():
            px = xs(tick)
            doc.line(px, theme.plot_top, px, theme.plot_bottom,
                     stroke=theme.grid_color, stroke_width=1)
            doc.text(px, theme.plot_bottom + 20, _format_tick(tick),
                     size=theme.font_size, anchor="middle", fill=theme.axis_color)
        for tick in ys.ticks():
            py = ys(tick)
            doc.line(theme.plot_left, py, theme.plot_right, py,
                     stroke=theme.grid_color, stroke_width=1)
            doc.text(theme.plot_left - 8, py + 4, _format_tick(tick),
                     size=theme.font_size, anchor="end", fill=theme.axis_color)

        # Axes frame.
        doc.line(theme.plot_left, theme.plot_bottom, theme.plot_right, theme.plot_bottom,
                 stroke=theme.axis_color, stroke_width=1.5)
        doc.line(theme.plot_left, theme.plot_top, theme.plot_left, theme.plot_bottom,
                 stroke=theme.axis_color, stroke_width=1.5)

        # Labels and title.
        if self.title:
            doc.text(theme.width / 2, theme.margin_top / 2 + 6, self.title,
                     size=theme.font_size + 3, anchor="middle", fill=theme.axis_color,
                     font_weight="bold")
        if self.x_label:
            doc.text((theme.plot_left + theme.plot_right) / 2, theme.height - 18,
                     self.x_label, size=theme.font_size, anchor="middle",
                     fill=theme.axis_color)
        if self.y_label:
            doc.text(22, (theme.plot_top + theme.plot_bottom) / 2, self.y_label,
                     size=theme.font_size, anchor="middle", fill=theme.axis_color,
                     rotate=-90)

        self._draw_data(doc, xs, ys)
        self._draw_legend(doc)
        return doc

    def _draw_legend(self, doc: SVGDocument) -> None:
        entries = self._legend_entries()
        if not entries:
            return
        theme = self.theme
        x = theme.plot_left + 10
        y = theme.plot_top + 8
        for index, (label, color) in enumerate(entries):
            doc.rect(x, y + index * 18 - 8, 12, 12, fill=color, stroke="none")
            doc.text(x + 18, y + index * 18 + 2, label, size=theme.font_size - 1,
                     fill=theme.axis_color)

    def save(self, path) -> None:
        """Render and write the SVG file."""
        self.render().save(path)


def _format_tick(value: float) -> str:
    if abs(value) >= 10000:
        return f"{value:,.0f}"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:g}"


class ScatterChart(_BaseChart):
    """Scatter plot of one or more point series (Figures 2, 3, 5, 6)."""

    def __init__(self, series: Sequence[Series], point_radius: float = 3.0, **kwargs):
        super().__init__(**kwargs)
        if not series:
            raise PlotError("ScatterChart requires at least one series")
        self.series = list(series)
        self.point_radius = point_radius

    def _all_points(self) -> list[tuple[float, float]]:
        points: list[tuple[float, float]] = []
        for series in self.series:
            points.extend(series.finite_points())
        if not points:
            raise PlotError("no finite points to plot")
        return points

    def _x_extent(self) -> Extent:
        return Extent.of([p[0] for p in self._all_points()])

    def _y_extent(self) -> Extent:
        return Extent.of([p[1] for p in self._all_points()]).include(0.0)

    def _legend_entries(self) -> list[tuple[str, str]]:
        return [
            (series.name, series.color or self.theme.color(index))
            for index, series in enumerate(self.series)
        ]

    def _draw_data(self, doc: SVGDocument, xs: LinearScale, ys: LinearScale) -> None:
        for index, series in enumerate(self.series):
            color = series.color or self.theme.color(index)
            for x, y in series.finite_points():
                px, py = xs(x), ys(y)
                if series.marker == "square":
                    size = self.point_radius * 2
                    doc.rect(px - size / 2, py - size / 2, size, size,
                             fill=color, fill_opacity=0.65, stroke="none")
                else:
                    doc.circle(px, py, self.point_radius, fill=color,
                               fill_opacity=0.65, stroke="none")


class LineChart(ScatterChart):
    """Line chart (used for yearly-mean trend overlays)."""

    def _draw_data(self, doc: SVGDocument, xs: LinearScale, ys: LinearScale) -> None:
        for index, series in enumerate(self.series):
            color = series.color or self.theme.color(index)
            points = [(xs(x), ys(y)) for x, y in series.finite_points()]
            if len(points) >= 2:
                doc.polyline(points, stroke=color, stroke_width=2)
            for px, py in points:
                doc.circle(px, py, self.point_radius, fill=color, stroke="none")


class BoxChart(_BaseChart):
    """Distribution chart of box statistics per x position (Figure 4)."""

    def __init__(self, series: Sequence[BoxSeries], reference_line: float | None = None,
                 **kwargs):
        super().__init__(**kwargs)
        if not series:
            raise PlotError("BoxChart requires at least one series")
        self.series = list(series)
        self.reference_line = reference_line

    def _x_extent(self) -> Extent:
        xs = [float(x) for s in self.series for x in s.x]
        if not xs:
            raise PlotError("no box positions to plot")
        return Extent(min(xs) - 1, max(xs) + 1)

    def _y_extent(self) -> Extent:
        lows, highs = [], []
        for s in self.series:
            for box in s.boxes:
                if box.count > 0:
                    lows.append(box.whisker_low)
                    highs.append(box.whisker_high)
        if not lows:
            raise PlotError("no non-empty boxes to plot")
        extent = Extent(min(lows), max(highs))
        if self.reference_line is not None:
            extent = extent.include(self.reference_line)
        return extent

    def _legend_entries(self) -> list[tuple[str, str]]:
        return [
            (series.name, series.color or self.theme.color(index))
            for index, series in enumerate(self.series)
        ]

    def _draw_data(self, doc: SVGDocument, xs: LinearScale, ys: LinearScale) -> None:
        count = len(self.series)
        if self.reference_line is not None:
            py = ys(self.reference_line)
            doc.line(self.theme.plot_left, py, self.theme.plot_right, py,
                     stroke="#555555", stroke_width=1.2, stroke_dasharray="6,4")
        for index, series in enumerate(self.series):
            color = series.color or self.theme.color(index)
            # Offset multiple series side by side within one x slot.
            offset = (index - (count - 1) / 2.0) * series.width
            for x, box in zip(series.x, series.boxes):
                if box.count == 0:
                    continue
                center = xs(float(x) + offset)
                half = abs(xs(float(x) + series.width / 2) - xs(float(x))) * 0.8
                top, bottom = ys(box.q75), ys(box.q25)
                doc.rect(center - half, min(top, bottom), 2 * half, abs(bottom - top),
                         fill=color, fill_opacity=0.55, stroke=color)
                median_y = ys(box.median)
                doc.line(center - half, median_y, center + half, median_y,
                         stroke="#000000", stroke_width=1.4)
                doc.line(center, ys(box.whisker_low), center, min(top, bottom) + abs(bottom - top),
                         stroke=color, stroke_width=1)
                doc.line(center, max(top, bottom) - abs(bottom - top), center, ys(box.whisker_high),
                         stroke=color, stroke_width=1)
                for outlier in box.outliers:
                    doc.circle(center, ys(outlier), 1.5, fill=color, fill_opacity=0.8,
                               stroke="none")


class StackedAreaChart(_BaseChart):
    """Share-over-time chart (Figure 1's fraction panels).

    Each series holds per-x fractional values; values are stacked in series
    order and normalised to 100 %.
    """

    def __init__(self, x: Sequence[float], series: Sequence[Series], normalize: bool = True,
                 **kwargs):
        super().__init__(**kwargs)
        if not series:
            raise PlotError("StackedAreaChart requires at least one series")
        self.x = [float(v) for v in x]
        for s in series:
            if len(s.y) != len(self.x):
                raise PlotError(
                    f"series {s.name!r} has {len(s.y)} values for {len(self.x)} x positions"
                )
        self.series = list(series)
        self.normalize = normalize

    def _x_extent(self) -> Extent:
        return Extent.of(self.x)

    def _y_extent(self) -> Extent:
        if self.normalize:
            return Extent(0.0, 100.0)
        totals = [
            sum(float(s.y[i]) if s.y[i] is not None else 0.0 for s in self.series)
            for i in range(len(self.x))
        ]
        return Extent(0.0, max(totals) if totals else 1.0)

    def _legend_entries(self) -> list[tuple[str, str]]:
        return [
            (series.name, series.color or self.theme.color(index))
            for index, series in enumerate(self.series)
        ]

    def _stacked(self) -> list[list[float]]:
        """Cumulative stacked values per series (after optional normalisation)."""
        raw = [
            [float(v) if v is not None else 0.0 for v in series.y]
            for series in self.series
        ]
        if self.normalize:
            for i in range(len(self.x)):
                total = sum(values[i] for values in raw)
                if total > 0:
                    for values in raw:
                        values[i] = values[i] / total * 100.0
        stacked = []
        running = [0.0] * len(self.x)
        for values in raw:
            running = [a + b for a, b in zip(running, values)]
            stacked.append(list(running))
        return stacked

    def _draw_data(self, doc: SVGDocument, xs: LinearScale, ys: LinearScale) -> None:
        stacked = self._stacked()
        previous = [0.0] * len(self.x)
        for index, (series, upper) in enumerate(zip(self.series, stacked)):
            color = series.color or self.theme.color(index)
            top_points = [(xs(x), ys(y)) for x, y in zip(self.x, upper)]
            bottom_points = [(xs(x), ys(y)) for x, y in zip(self.x, previous)]
            polygon = top_points + bottom_points[::-1]
            if len(polygon) >= 3:
                doc.polygon(polygon, fill=color, fill_opacity=0.75, stroke="none")
            previous = upper


class BarChart(_BaseChart):
    """Vertical bar chart (Figure 1's submissions-per-year panel)."""

    def __init__(self, x: Sequence[float], heights: Sequence[float], bar_width: float = 0.8,
                 color: str | None = None, **kwargs):
        super().__init__(**kwargs)
        if len(x) != len(heights):
            raise PlotError("x and heights must have the same length")
        if not x:
            raise PlotError("BarChart requires at least one bar")
        self.x = [float(v) for v in x]
        self.heights = [float(v) if v is not None else 0.0 for v in heights]
        self.bar_width = bar_width
        self.color = color

    def _x_extent(self) -> Extent:
        return Extent(min(self.x) - 1, max(self.x) + 1)

    def _y_extent(self) -> Extent:
        return Extent(0.0, max(self.heights) if self.heights else 1.0)

    def _draw_data(self, doc: SVGDocument, xs: LinearScale, ys: LinearScale) -> None:
        color = self.color or self.theme.color(0)
        zero = ys(0.0)
        for x, height in zip(self.x, self.heights):
            left = xs(x - self.bar_width / 2)
            right = xs(x + self.bar_width / 2)
            top = ys(height)
            doc.rect(left, min(top, zero), right - left, abs(zero - top),
                     fill=color, fill_opacity=0.85, stroke="none")
