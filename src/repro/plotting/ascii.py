"""ASCII rendering of scatter data and histograms for terminal output."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..errors import PlotError
from ..stats.distribution import Histogram
from .scale import Extent, LinearScale

__all__ = ["ascii_scatter", "ascii_histogram", "ascii_sparkline", "ascii_shard_strip"]

#: Eight-level block characters, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _finite_pairs(x: Iterable[float], y: Iterable[float]) -> list[tuple[float, float]]:
    pairs = []
    for xv, yv in zip(x, y):
        if xv is None or yv is None:
            continue
        xf, yf = float(xv), float(yv)
        if math.isfinite(xf) and math.isfinite(yf):
            pairs.append((xf, yf))
    return pairs


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 72,
    height: int = 20,
    marker: str = "o",
    title: str = "",
) -> str:
    """Render points as a fixed-size character grid with simple axes."""
    if width < 10 or height < 5:
        raise PlotError("ascii_scatter needs width >= 10 and height >= 5")
    pairs = _finite_pairs(x, y)
    if not pairs:
        return (title + "\n" if title else "") + "(no data)"
    xs = LinearScale(Extent.of([p[0] for p in pairs]).expanded(0.02), 0, width - 1)
    ys = LinearScale(Extent.of([p[1] for p in pairs]).expanded(0.02), height - 1, 0)
    grid = [[" "] * width for _ in range(height)]
    for px, py in pairs:
        column = int(round(xs(px)))
        row = int(round(ys(py)))
        if 0 <= row < height and 0 <= column < width:
            grid[row][column] = marker

    y_low, y_high = ys.domain.low, ys.domain.high
    x_low, x_high = xs.domain.low, xs.domain.high
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_high:10.3g} |"
        elif index == height - 1:
            label = f"{y_low:10.3g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_low:<10.6g}" + " " * max(width - 22, 1) + f"{x_high:>10.6g}")
    return "\n".join(lines)


def ascii_sparkline(
    values: Sequence[float | None],
    width: int = 60,
    low: float | None = None,
    high: float | None = None,
) -> str:
    """Render a series as a one-line block-character sparkline.

    The live-watch primitive: tolerant of everything a mid-run campaign can
    throw at it — ``None``/NaN entries render as spaces, an empty series
    yields ``"(no data)"``, a constant series renders mid-height, and a
    series longer than ``width`` keeps the most recent ``width`` points
    (watch shows the trailing window).  ``low``/``high`` pin the scale so
    successive frames don't rescale under the viewer.
    """
    if width < 1:
        raise PlotError("ascii_sparkline needs width >= 1")
    window = list(values)[-width:]
    finite = [float(v) for v in window if v is not None and math.isfinite(float(v))]
    if not finite:
        return "(no data)"
    lo = min(finite) if low is None else float(low)
    hi = max(finite) if high is None else float(high)
    span = hi - lo
    cells = []
    for value in window:
        if value is None or not math.isfinite(float(value)):
            cells.append(" ")
            continue
        value = float(value)
        if span <= 0:
            cells.append(_SPARK_BLOCKS[len(_SPARK_BLOCKS) // 2])
            continue
        level = (value - lo) / span
        index = min(int(level * len(_SPARK_BLOCKS)), len(_SPARK_BLOCKS) - 1)
        cells.append(_SPARK_BLOCKS[max(index, 0)])
    return "".join(cells)


def ascii_shard_strip(
    states: Sequence[str],
    width: int = 60,
) -> str:
    """Render per-shard completion as one character per shard.

    ``states`` holds one of ``"complete"`` / ``"partial"`` / ``"pending"``
    per shard index (anything else renders as ``?``).  Strips wider than
    ``width`` are compressed by sampling, so a 1000-shard campaign still
    fits a terminal row.
    """
    if width < 1:
        raise PlotError("ascii_shard_strip needs width >= 1")
    glyphs = {"complete": "█", "partial": "▒", "pending": "·"}
    states = list(states)
    if not states:
        return "(no shards)"
    if len(states) > width:
        # Sample one representative per cell; show the least-finished state
        # in the cell so compression never overstates progress.
        rank = {"pending": 0, "partial": 1, "complete": 2}
        sampled = []
        for cell in range(width):
            a = cell * len(states) // width
            b = max((cell + 1) * len(states) // width, a + 1)
            worst = min(states[a:b], key=lambda s: rank.get(s, 0))
            sampled.append(worst)
        states = sampled
    return "".join(glyphs.get(state, "?") for state in states)


def ascii_histogram(hist: Histogram, width: int = 50, title: str = "") -> str:
    """Render a histogram as horizontal bars."""
    lines = []
    if title:
        lines.append(title)
    max_count = max(hist.counts) if hist.counts else 0
    for i, count in enumerate(hist.counts):
        low, high = hist.edges[i], hist.edges[i + 1]
        bar_length = 0 if max_count == 0 else int(round(count / max_count * width))
        lines.append(f"[{low:10.3g}, {high:10.3g}) {'#' * bar_length} {count}")
    return "\n".join(lines)
