"""ASCII rendering of scatter data and histograms for terminal output."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..errors import PlotError
from ..stats.distribution import Histogram
from .scale import Extent, LinearScale

__all__ = ["ascii_scatter", "ascii_histogram"]


def _finite_pairs(x: Iterable[float], y: Iterable[float]) -> list[tuple[float, float]]:
    pairs = []
    for xv, yv in zip(x, y):
        if xv is None or yv is None:
            continue
        xf, yf = float(xv), float(yv)
        if math.isfinite(xf) and math.isfinite(yf):
            pairs.append((xf, yf))
    return pairs


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 72,
    height: int = 20,
    marker: str = "o",
    title: str = "",
) -> str:
    """Render points as a fixed-size character grid with simple axes."""
    if width < 10 or height < 5:
        raise PlotError("ascii_scatter needs width >= 10 and height >= 5")
    pairs = _finite_pairs(x, y)
    if not pairs:
        return (title + "\n" if title else "") + "(no data)"
    xs = LinearScale(Extent.of([p[0] for p in pairs]).expanded(0.02), 0, width - 1)
    ys = LinearScale(Extent.of([p[1] for p in pairs]).expanded(0.02), height - 1, 0)
    grid = [[" "] * width for _ in range(height)]
    for px, py in pairs:
        column = int(round(xs(px)))
        row = int(round(ys(py)))
        if 0 <= row < height and 0 <= column < width:
            grid[row][column] = marker

    y_low, y_high = ys.domain.low, ys.domain.high
    x_low, x_high = xs.domain.low, xs.domain.high
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_high:10.3g} |"
        elif index == height - 1:
            label = f"{y_low:10.3g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_low:<10.6g}" + " " * max(width - 22, 1) + f"{x_high:>10.6g}")
    return "\n".join(lines)


def ascii_histogram(hist: Histogram, width: int = 50, title: str = "") -> str:
    """Render a histogram as horizontal bars."""
    lines = []
    if title:
        lines.append(title)
    max_count = max(hist.counts) if hist.counts else 0
    for i, count in enumerate(hist.counts):
        low, high = hist.edges[i], hist.edges[i + 1]
        bar_length = 0 if max_count == 0 else int(round(count / max_count * width))
        lines.append(f"[{low:10.3g}, {high:10.3g}) {'#' * bar_length} {count}")
    return "\n".join(lines)
