"""Chart rendering without matplotlib.

The paper's six figures are scatter/line/box/stacked-area charts over
hardware availability date.  This package renders equivalent charts to SVG
files (publication-style output) and to ASCII (terminal preview), using only
the standard library and NumPy.

Layers
------
* :mod:`repro.plotting.scale` — linear scales, tick generation, axis layout,
* :mod:`repro.plotting.svg` — a minimal SVG document builder,
* :mod:`repro.plotting.charts` — the chart types used by the figures
  (scatter, line, box-distribution, stacked area / share chart, bar),
* :mod:`repro.plotting.ascii` — terminal rendering of scatter data for quick
  inspection in examples and CLI output.
"""

from .scale import LinearScale, nice_ticks, Extent
from .svg import SVGDocument
from .charts import (
    ChartTheme,
    Series,
    BoxSeries,
    ScatterChart,
    LineChart,
    BoxChart,
    StackedAreaChart,
    BarChart,
)
from .ascii import ascii_scatter, ascii_histogram, ascii_sparkline, ascii_shard_strip

__all__ = [
    "LinearScale",
    "nice_ticks",
    "Extent",
    "SVGDocument",
    "ChartTheme",
    "Series",
    "BoxSeries",
    "ScatterChart",
    "LineChart",
    "BoxChart",
    "StackedAreaChart",
    "BarChart",
    "ascii_scatter",
    "ascii_histogram",
    "ascii_sparkline",
    "ascii_shard_strip",
]
