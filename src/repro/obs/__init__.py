"""Zero-dependency observability: tracing, metrics and streaming sketches.

The telemetry plane of the pipeline, deliberately decoupled from what it
observes:

* :mod:`repro.obs.trace` — nestable spans with wall/CPU timings, counters
  and attributes, emitted as structured JSON events to append-only
  ``events.jsonl`` sinks.  Off by default; a disabled tracer costs one
  no-op context manager per span (overhead gated in
  ``benchmarks/test_bench_obs.py``).
* :mod:`repro.obs.metrics` — a registry of counters, gauges and mergeable
  fixed-edge histograms.
* :mod:`repro.obs.sketch` — streaming P² quantile sketches: exact below a
  buffer threshold, five-marker P² estimators above it, mergeable either
  way.  :mod:`repro.campaign.reduce` folds them into campaign aggregates.
* :mod:`repro.obs.profile` — per-span self-time aggregation over an event
  log (``spectrends profile report``).
* :mod:`repro.obs.watch` — live rendering of a running campaign store
  (``spectrends campaign watch``).
* :mod:`repro.obs.alerts` — threshold/drift rules and failure
  classification against the paper's anomaly taxonomy.

Event emission is bit-effect-free on results: instrumentation observes the
data plane, it never participates in it (sharded == unsharded identity is
pinned with tracing enabled).

``profile`` and ``watch`` import the campaign layer lazily, so this package
stays importable from inside :mod:`repro.campaign` without a cycle.
"""

from .metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from .sketch import P2Quantile, QuantileSketch
from .trace import JsonlSink, Span, Tracer, configure_tracing, get_tracer

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "P2Quantile",
    "QuantileSketch",
    "JsonlSink",
    "Span",
    "Tracer",
    "configure_tracing",
    "get_tracer",
]
