"""Live rendering of a running (or finished) campaign store.

``spectrends campaign watch`` tails a store's ``shards.jsonl`` and
``events.jsonl`` — both append-only, torn-tail tolerant — and renders:

* the unit/shard progress the store's own ``status`` reports,
* a per-shard completion strip (one glyph per shard),
* a throughput sparkline over the ``shard_flush`` event stream,
* the latest streaming P² quantile estimates of one metric column, with a
  sparkline of its median as the campaign advances,
* threshold/drift alerts over the per-shard telemetry.

Everything here is a *reader* of campaign state: watch can attach to a
store mid-run from another process without perturbing the campaign (the
writer appends, the watcher polls).

The campaign layer is imported lazily inside functions so
:mod:`repro.obs` stays importable from inside :mod:`repro.campaign`.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, TextIO

from ..errors import CampaignError
from ..plotting.ascii import ascii_shard_strip, ascii_sparkline
from .alerts import Alert, AlertEngine, default_watch_rules

__all__ = ["render_watch_frame", "watch"]

#: Columns never offered as the default watch metric: sweep axes and
#: bookkeeping, not measurements.
_AXIS_COLUMNS = frozenset({"seed", "campaign_seed", "unit_index", "shard", "index"})

#: The paper's headline efficiency metric first, then sensible fallbacks.
_PREFERRED_METRICS = ("overall_ssj_ops_per_watt", "overall_efficiency", "power_100")


def _pick_metric(quantiles: dict[str, Any], metric: str | None) -> str | None:
    if metric is not None:
        if metric not in quantiles:
            raise CampaignError(
                f"metric {metric!r} is not in the campaign telemetry; "
                f"available: {sorted(quantiles) or 'none'}"
            )
        return metric
    for name in _PREFERRED_METRICS:
        if name in quantiles:
            return name
    for name in quantiles:
        if name not in _AXIS_COLUMNS:
            return name
    return next(iter(quantiles), None)


def _shard_states(entries: dict[int, dict[str, Any]], total: int) -> list[str]:
    states = []
    for index in range(max(total, (max(entries) + 1) if entries else 0)):
        entry = entries.get(index)
        if entry is None:
            states.append("pending")
        elif entry.get("status") == "complete":
            states.append("complete")
        else:
            states.append("partial")
    return states


def _fmt(value: Any, precision: int = 4) -> str:
    if value is None:
        return "–"
    try:
        value = float(value)
    except (TypeError, ValueError):
        return str(value)
    if value != value:
        return "–"
    return f"{value:.{precision}g}"


def render_watch_frame(
    store_dir: str | os.PathLike,
    metric: str | None = None,
    width: int = 72,
    max_alerts: int = 5,
) -> str:
    """One rendered snapshot of a campaign store's telemetry.

    Pure function of the store's on-disk state — this is what the CLI's
    ``--once`` mode prints and what the live loop repaints.
    """
    from ..campaign.store import CampaignStore

    store = CampaignStore(store_dir)
    status = store.status()
    events = store.event_entries()
    flushes = [e for e in events if e.get("event") == "shard_flush"]
    strip_width = max(width - 10, 10)

    lines = [status.describe().splitlines()[0]]
    progress = status.shards
    if progress is not None:
        lines.append(f"  {progress.describe()}")
        states = _shard_states(store.shard_entries(), progress.total)
        lines.append(f"shards  {ascii_shard_strip(states, width=strip_width)}")
    if status.quarantined:
        state = "degraded" if status.is_degraded else "pending"
        lines.append(f"  {status.quarantined} unit(s) quarantined ({state})")

    if flushes:
        rates = [e.get("units_per_s") for e in flushes]
        finite = [r for r in rates if isinstance(r, (int, float))]
        last = finite[-1] if finite else None
        lines.append(
            f"rate    {ascii_sparkline(rates, width=strip_width)}"
            f"  last {_fmt(last)} units/s"
        )
        latest = flushes[-1]
        quantiles = latest.get("quantiles") or {}
        chosen = _pick_metric(quantiles, metric)
        if chosen is not None:
            history = [
                (e.get("quantiles") or {}).get(chosen, {}).get("p50") for e in flushes
            ]
            estimates = quantiles.get(chosen) or {}
            summary = "  ".join(
                f"{label}={_fmt(value)}" for label, value in estimates.items()
            )
            lines.append(f"metric  {chosen}")
            lines.append(f"p50     {ascii_sparkline(history, width=strip_width)}")
            lines.append(f"  streaming quantiles: {summary or '(none)'}")
        engine = AlertEngine(*default_watch_rules())
        raised: list[Alert] = []
        for event in flushes:
            raised.extend(engine.observe(event, shard=event.get("index")))
        if raised:
            lines.append("alerts:")
            for alert in raised[-max_alerts:]:
                where = f" (shard {alert.shard})" if alert.shard is not None else ""
                lines.append(f"  [{alert.kind}] {alert.message}{where}")
            if len(raised) > max_alerts:
                lines.append(f"  ... and {len(raised) - max_alerts} earlier")
    elif metric is not None:
        raise CampaignError(
            f"metric {metric!r} is not in the campaign telemetry; "
            "the store has no shard_flush events yet"
        )
    else:
        lines.append("(no shard telemetry yet — waiting for the first flush)")
    return "\n".join(lines)


def watch(
    store_dir: str | os.PathLike,
    once: bool = False,
    interval: float = 2.0,
    metric: str | None = None,
    width: int = 72,
    stream: TextIO | None = None,
    max_frames: int | None = None,
) -> int:
    """Render the store until its campaign completes (or once).

    Returns the number of frames rendered.  ``max_frames`` bounds the loop
    for tests; the interactive loop stops when the store reports itself
    complete one frame after rendering it.
    """
    from ..campaign.store import CampaignStore

    out = stream if stream is not None else sys.stdout
    store = CampaignStore(store_dir)
    frames = 0
    while True:
        text = render_watch_frame(store_dir, metric=metric, width=width)
        if frames > 0 and not once and out.isatty():  # pragma: no cover - terminal only
            out.write("\x1b[2J\x1b[H")
        out.write(text + "\n")
        out.flush()
        frames += 1
        if once:
            return frames
        if max_frames is not None and frames >= max_frames:
            return frames
        status = store.status()
        if status.is_complete:
            return frames
        time.sleep(interval)
