"""Streaming quantile sketches: percentile summaries without residency.

:class:`~repro.campaign.reduce.OnlineMoments` stops at moments; quantiles
normally require the sorted sample.  :class:`QuantileSketch` closes that gap
for the streaming campaign path with a two-phase design:

* **exact phase** — values accumulate in a sorted buffer (default 256
  entries); estimates are the exact linear-interpolation quantiles of the
  buffer, identical to ``np.quantile`` of the same values, and merging two
  exact sketches is a sorted-buffer union — exact, commutative and
  associative,
* **compressed phase** — once the buffer overflows, each tracked quantile
  collapses into a five-marker :class:`P2Quantile` estimator (Jain &
  Chlamtac's P² algorithm); state is O(1) per quantile from then on, and
  estimates converge to the true quantiles as the stream grows.

Determinism contract
--------------------
Like the Welford reducers, a sketch consumes values *sequentially in stream
order*: the buffer phase is order-independent (a sorted multiset), the
compression point is a function of the count alone, and every post-
compression P² step is a scalar recurrence over the remaining stream — so
where shard boundaries fall cannot change a single estimated float, which
is what lets the streamed campaign aggregate stay bit-identical to the
unsharded reduction with percentile columns included.

Merging compressed sketches folds the other sketch's markers in as
count-weighted observations (the weighted-P² update).  That is deterministic
but approximate — like :meth:`OnlineMoments.merge`, it is reserved for
explicitly parallel consumers; the campaign data plane reduces sequentially.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import StatsError

__all__ = ["DEFAULT_QUANTILES", "P2Quantile", "QuantileSketch"]

#: The percentile summary the campaign aggregate and ``campaign watch``
#: report by default: median, tail, far tail.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: Exact-phase buffer size.  Small enough that a per-column sketch stays a
#: few KiB, large enough that short streams (most test campaigns) never
#: leave the exact phase.
DEFAULT_BUFFER_SIZE = 256


def quantile_label(q: float) -> str:
    """Column/field label of one tracked quantile (``0.5`` → ``"p50"``)."""
    return f"p{q * 100:g}".replace(".", "_")


def _exact_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence.

    Matches ``np.quantile(..., method="linear")`` so exact-phase estimates
    agree bit-for-bit with the sorted-array reference.
    """
    n = len(sorted_values)
    if n == 0:
        return float("nan")
    if n == 1:
        return float(sorted_values[0])
    position = q * (n - 1)
    low = int(math.floor(position))
    high = min(low + 1, n - 1)
    fraction = position - low
    below, above = float(sorted_values[low]), float(sorted_values[high])
    diff = above - below
    # numpy's lerp switches anchors at the midpoint for monotonicity; follow
    # it exactly so exact-phase estimates are bit-equal to np.quantile.
    if fraction >= 0.5:
        return above - diff * (1.0 - fraction)
    return below + diff * fraction


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the minimum, two intermediate points, the estimate
    and the maximum; marker heights are adjusted by a piecewise-parabolic
    formula as observations arrive, so state is eleven floats regardless of
    stream length.  ``push`` accepts a ``weight`` so that another sketch's
    markers can be folded in as count-weighted observations (the merge
    path); the data plane always pushes weight 1 in stream order.
    """

    __slots__ = ("q", "count", "_heights", "_weights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise StatsError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0.0
        self._heights: list[float] = []
        self._weights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    # ------------------------------------------------------------------ #
    def push(self, value: float, weight: float = 1.0) -> None:
        """Fold one observation (optionally count-weighted) into the markers."""
        value = float(value)
        if weight <= 0.0:
            return
        if len(self._heights) < 5:
            # Start-up: the first five observations become the markers.
            # Marker positions start as cumulative weights so a folded-in
            # sketch's mass lands where it belongs (unit weights reduce to
            # the textbook 1..5 initialisation).
            index = bisect_right(self._heights, value)
            self._heights.insert(index, value)
            self._weights.insert(index, weight)
            self.count += weight
            if len(self._heights) == 5:
                cumulative = 0.0
                positions = []
                for entry in self._weights:
                    cumulative += entry
                    positions.append(cumulative)
                self._positions = positions
                self._weights = []
                self._reset_desired()
            return

        self.count += weight
        heights = self._heights
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = bisect_right(heights, value, 1, 4) - 1
        for index in range(cell + 1, 5):
            self._positions[index] += weight
        for index in range(5):
            self._desired[index] += self._rates[index] * weight
        self._adjust()
        if weight > 1.0:
            # A weighted observation moves the desired positions by up to
            # ``weight`` steps but one adjustment pass moves each marker at
            # most one step; keep adjusting until the markers catch up so a
            # folded-in sketch actually shifts the estimate.
            for _ in range(int(weight) + 4):
                if not self._adjust():
                    break

    def _reset_desired(self) -> None:
        n = self.count
        q = self.q
        self._desired = [
            1.0,
            1.0 + (n - 1.0) * q / 2.0,
            1.0 + (n - 1.0) * q,
            1.0 + (n - 1.0) * (1.0 + q) / 2.0,
            n,
        ]

    def _adjust(self) -> bool:
        heights, positions, desired = self._heights, self._positions, self._desired
        moved = False
        for index in range(1, 4):
            delta = desired[index] - positions[index]
            step_up = positions[index + 1] - positions[index]
            step_down = positions[index - 1] - positions[index]
            if (delta >= 1.0 and step_up > 1.0) or (delta <= -1.0 and step_down < -1.0):
                direction = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, direction)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, direction)
                positions[index] += direction
                moved = True
        return moved

    def _parabolic(self, index: int, direction: float) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + direction / (positions[index + 1] - positions[index - 1]) * (
            (positions[index] - positions[index - 1] + direction)
            * (heights[index + 1] - heights[index])
            / (positions[index + 1] - positions[index])
            + (positions[index + 1] - positions[index] - direction)
            * (heights[index] - heights[index - 1])
            / (positions[index] - positions[index - 1])
        )

    def _linear(self, index: int, direction: float) -> float:
        heights, positions = self._heights, self._positions
        step = int(direction)
        return heights[index] + direction * (heights[index + step] - heights[index]) / (
            positions[index + step] - positions[index]
        )

    @classmethod
    def from_weighted_points(cls, q: float, points: Sequence[tuple[float, float]]) -> "P2Quantile":
        """Build an estimator from count-weighted observations (the merge path).

        The points — marker heights of the source sketches with the counts
        they stand for — define a piecewise-linear empirical quantile
        function; the new estimator's five markers are read off it at the
        textbook desired positions, which lands the folded-in mass where it
        belongs instead of replaying it through the one-step-per-push
        adjustment.
        """
        estimator = cls(q)
        ordered = sorted((float(h), float(w)) for h, w in points if w > 0.0)
        total = sum(weight for _, weight in ordered)
        if len(ordered) < 5 or total <= 5.0:
            for height, weight in ordered:
                estimator.push(height, weight=weight)
            return estimator
        cumulative: list[float] = []
        running = 0.0
        for _, weight in ordered:
            running += weight
            cumulative.append(running)
        heights = [height for height, _ in ordered]
        estimator.count = total
        estimator._positions = [
            1.0,
            1.0 + (total - 1.0) * q / 2.0,
            1.0 + (total - 1.0) * q,
            1.0 + (total - 1.0) * (1.0 + q) / 2.0,
            total,
        ]
        estimator._heights = [
            float(np.interp(position, cumulative, heights))
            for position in estimator._positions
        ]
        estimator._weights = []
        estimator._reset_desired()
        return estimator

    # ------------------------------------------------------------------ #
    def estimate(self) -> float:
        """The current quantile estimate (NaN before the first value)."""
        if not self._heights:
            return float("nan")
        if len(self._heights) < 5:
            return _exact_quantile(self._heights, self.q)
        return float(self._heights[2])

    def weighted_markers(self) -> list[tuple[float, float]]:
        """Marker heights with the observation counts they stand for.

        The merge representation: segment weights are the position deltas,
        so the weights sum to the observation count and folding them into
        another estimator preserves the stream's mass distribution.
        """
        if len(self._heights) < 5:
            return [(height, 1.0) for height in self._heights]
        weights = [self._positions[0]]
        for index in range(1, 5):
            weights.append(self._positions[index] - self._positions[index - 1])
        # Marker positions are clamped integers, so rounding can starve a
        # segment; redistribute onto the estimate marker to conserve mass.
        total = sum(max(w, 0.0) for w in weights)
        scale = self.count / total if total > 0 else 0.0
        return [
            (height, max(weight, 0.0) * scale)
            for height, weight in zip(self._heights, weights)
        ]


class QuantileSketch:
    """Mergeable streaming estimates of several quantiles of one stream.

    Exact (sorted buffer) below :data:`DEFAULT_BUFFER_SIZE` observations,
    O(1) five-marker P² estimators per quantile above it.  ``None``, masked
    and non-finite values are skipped (they carry no order statistics).
    """

    __slots__ = ("quantiles", "buffer_size", "count", "_buffer", "_estimators")

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        buffer_size: int = DEFAULT_BUFFER_SIZE,
    ):
        if not quantiles:
            raise StatsError("QuantileSketch needs at least one quantile")
        if buffer_size < 8:
            raise StatsError("buffer_size must be >= 8")
        self.quantiles = tuple(float(q) for q in quantiles)
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise StatsError(f"quantile must be in (0, 1), got {q}")
        self.buffer_size = int(buffer_size)
        self.count = 0
        self._buffer: list[float] | None = []
        self._estimators: list[P2Quantile] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        phase = "exact" if self._buffer is not None else "p2"
        return f"<QuantileSketch n={self.count} phase={phase} qs={self.quantiles}>"

    @property
    def compressed(self) -> bool:
        """Whether the sketch has left the exact phase."""
        return self._buffer is None

    # ------------------------------------------------------------------ #
    def push(self, value: float) -> None:
        """Fold one value into the sketch (skipping non-finite input)."""
        value = float(value)
        if not math.isfinite(value):
            return
        self.count += 1
        if self._buffer is not None:
            insort(self._buffer, value)
            if len(self._buffer) > self.buffer_size:
                self._compress()
        else:
            for estimator in self._estimators:
                estimator.push(value)

    def update(self, values: Iterable[Any], mask: np.ndarray | None = None) -> None:
        """Fold a batch of values, skipping ``None`` and masked entries.

        Values are consumed strictly in order — the same sequential contract
        as :meth:`OnlineMoments.update`, and for the same reason: shard
        boundaries must not be observable in the estimates.
        """
        if isinstance(values, np.ndarray):
            values = values.tolist()
        if mask is None:
            for value in values:
                if value is not None:
                    self.push(value)
        else:
            for value, missing in zip(values, mask.tolist()):
                if not missing and value is not None:
                    self.push(value)

    def _compress(self) -> None:
        """Collapse the exact buffer into per-quantile P² estimators.

        The buffer is fed in ascending order — a deterministic function of
        the multiset seen so far, so the compression result cannot depend
        on arrival order (and therefore not on shard boundaries either).
        """
        buffer = self._buffer
        self._buffer = None
        self._estimators = [P2Quantile(q) for q in self.quantiles]
        for value in buffer:
            for estimator in self._estimators:
                estimator.push(value)

    # ------------------------------------------------------------------ #
    def estimate(self, q: float) -> float:
        """Estimate of quantile ``q`` (must be one of :attr:`quantiles`)."""
        q = float(q)
        if self._buffer is not None:
            return _exact_quantile(self._buffer, q)
        try:
            index = self.quantiles.index(q)
        except ValueError:
            raise StatsError(
                f"quantile {q} is not tracked by this sketch ({self.quantiles})"
            ) from None
        return self._estimators[index].estimate()

    def estimates(self) -> dict[str, float]:
        """Every tracked estimate, keyed ``p50`` / ``p90`` / ... style."""
        return {quantile_label(q): self.estimate(q) for q in self.quantiles}

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combined sketch of two independent streams (new object).

        Two exact-phase sketches whose union still fits the buffer merge
        exactly (associative and commutative); any compressed operand makes
        the result approximate via weighted marker folding — reserve that
        for explicitly parallel consumers, like :meth:`OnlineMoments.merge`.
        """
        if self.quantiles != other.quantiles:
            raise StatsError(
                f"cannot merge sketches tracking {self.quantiles} and {other.quantiles}"
            )
        merged = QuantileSketch(self.quantiles, buffer_size=self.buffer_size)
        merged.count = self.count + other.count
        if (
            self._buffer is not None
            and other._buffer is not None
            and len(self._buffer) + len(other._buffer) <= self.buffer_size
        ):
            merged._buffer = sorted(self._buffer + other._buffer)
            return merged
        merged._buffer = None
        merged._estimators = []
        for index, q in enumerate(self.quantiles):
            points: list[tuple[float, float]] = []
            for source in (self, other):
                if source._buffer is not None:
                    points.extend((value, 1.0) for value in source._buffer)
                else:
                    points.extend(source._estimators[index].weighted_markers())
            merged._estimators.append(P2Quantile.from_weighted_points(q, points))
        return merged
