"""Metric primitives and the registry instrumented code reports into.

Three metric kinds, all mergeable so per-worker registries can fold into a
campaign-level one:

* :class:`Counter` — a monotonically increasing total,
* :class:`Gauge` — a last-value-wins measurement,
* :class:`StreamingHistogram` — fixed-edge bin counts compatible with
  :class:`repro.stats.distribution.Histogram` (same edges ⇒ bin-wise count
  addition on merge), so a streamed histogram renders through the existing
  plotting layer unchanged.

:class:`MetricsRegistry` hands out metrics by name, snapshots to plain JSON
(the payload of ``campaign_complete`` events) and merges registry-wise.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterable, Sequence

from ..errors import StatsError

__all__ = ["Counter", "Gauge", "StreamingHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise StatsError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A last-value-wins measurement (``None`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge(self, other: "Gauge") -> None:
        if other.value is not None:
            self.value = other.value

    def snapshot(self) -> float | None:
        return self.value


class StreamingHistogram:
    """Fixed-edge bin counts fed value by value, mergeable bin-wise.

    Edges follow :class:`repro.stats.distribution.Histogram` semantics:
    ``edges[i] <= value < edges[i+1]`` selects bin ``i``, the last bin is
    closed on the right, and out-of-range values land in under/overflow
    counters so the in-range counts stay comparable across streams.
    """

    __slots__ = ("name", "edges", "counts", "underflow", "overflow")

    def __init__(self, name: str, edges: Sequence[float]):
        if len(edges) < 2:
            raise StatsError("histogram needs at least two edges")
        ordered = [float(edge) for edge in edges]
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise StatsError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = tuple(ordered)
        self.counts = [0] * (len(ordered) - 1)
        self.underflow = 0
        self.overflow = 0

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def push(self, value: float) -> None:
        value = float(value)
        if value != value:  # NaN carries no bin
            return
        if value < self.edges[0]:
            self.underflow += 1
            return
        if value > self.edges[-1]:
            self.overflow += 1
            return
        index = min(bisect_right(self.edges, value) - 1, len(self.counts) - 1)
        self.counts[index] += 1

    def update(self, values: Iterable[float]) -> None:
        for value in values:
            if value is not None:
                self.push(value)

    def merge(self, other: "StreamingHistogram") -> None:
        if self.edges != other.edges:
            raise StatsError(
                f"cannot merge histograms with different edges "
                f"({self.name!r} vs {other.name!r})"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.underflow += other.underflow
        self.overflow += other.overflow

    def to_histogram(self):
        """The equivalent :class:`repro.stats.distribution.Histogram`."""
        from ..stats.distribution import Histogram

        return Histogram(edges=self.edges, counts=tuple(self.counts))

    def snapshot(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lookup.

    ``counter`` / ``gauge`` / ``histogram`` create on first use and return
    the existing metric afterwards; asking for an existing name as a
    different kind is an error (one name, one meaning).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | StreamingHistogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    @property
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is not None and not isinstance(metric, kind):
            raise StatsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        return metric

    def histogram(self, name: str, edges: Sequence[float] | None = None) -> StreamingHistogram:
        metric = self._get(name, StreamingHistogram)
        if metric is None:
            if edges is None:
                raise StatsError(f"histogram {name!r} needs edges on first use")
            metric = self._metrics[name] = StreamingHistogram(name, edges)
        return metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same-name metrics must share kinds)."""
        for name, metric in other._metrics.items():
            mine = self._get(name, type(metric))
            if mine is None:
                if isinstance(metric, StreamingHistogram):
                    mine = self.histogram(name, metric.edges)
                elif isinstance(metric, Gauge):
                    mine = self.gauge(name)
                else:
                    mine = self.counter(name)
            mine.merge(metric)

    def snapshot(self) -> dict[str, Any]:
        """Plain-JSON view of every metric (the event payload shape)."""
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}
