"""Threshold and drift alerts evaluated over a streaming campaign.

``campaign watch`` feeds each ``shard_flush`` event through an
:class:`AlertEngine`; the engine raises:

* :class:`ThresholdRule` breaches — a metric crossing a fixed bound
  (e.g. per-shard failure count above zero, throughput collapsing), and
* drift alerts — a per-shard metric z-scoring far outside the running
  Welford moments of the shards seen so far,

and classifies unit-failure reasons against the paper's anomaly taxonomy
(:class:`repro.market.anomalies.AnomalyKind`) so mid-campaign rejects are
reported in the same vocabulary as the Section II funnel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

from ..market.anomalies import AnomalyKind

__all__ = [
    "Alert",
    "ThresholdRule",
    "DriftRule",
    "AlertEngine",
    "classify_failure",
    "classify_failure_domain",
]


@dataclass(frozen=True)
class Alert:
    """One raised alert, ready to render in the watch surface."""

    kind: str  # "threshold" | "drift" | "failure"
    metric: str
    message: str
    shard: int | None = None


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when ``metric`` compares against ``bound`` (``op``: > or <)."""

    metric: str
    bound: float
    op: str = ">"
    message: str | None = None

    def check(self, values: dict[str, Any], shard: int | None = None) -> Alert | None:
        value = values.get(self.metric)
        if value is None:
            return None
        value = float(value)
        breached = value > self.bound if self.op == ">" else value < self.bound
        if not breached:
            return None
        text = self.message or f"{self.metric}={value:g} {self.op} {self.bound:g}"
        return Alert(kind="threshold", metric=self.metric, message=text, shard=shard)


class _RunningMoments:
    """Welford mean/variance over per-shard observations."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def push(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def zscore(self, value: float) -> float | None:
        if self.count < 2:
            return None
        variance = self.m2 / (self.count - 1)
        if variance <= 0.0:
            return None
        return (value - self.mean) / math.sqrt(variance)


@dataclass(frozen=True)
class DriftRule:
    """Fire when a shard's metric drifts ``z_max`` sigmas off the run so far.

    The observation is pushed into the running moments *after* the check,
    so a shard is judged against its predecessors, and the first
    ``min_history`` shards only build history.
    """

    metric: str
    z_max: float = 3.0
    min_history: int = 3


class AlertEngine:
    """Stateful evaluator: thresholds plus drift over a shard stream."""

    def __init__(
        self,
        thresholds: Iterable[ThresholdRule] = (),
        drifts: Iterable[DriftRule] = (),
    ):
        self.thresholds = tuple(thresholds)
        self.drifts = tuple(drifts)
        self._moments: dict[str, _RunningMoments] = {}
        self.alerts: list[Alert] = []

    def observe(self, values: dict[str, Any], shard: int | None = None) -> list[Alert]:
        """Evaluate one shard's metric dict; returns newly raised alerts."""
        raised: list[Alert] = []
        for rule in self.thresholds:
            alert = rule.check(values, shard=shard)
            if alert is not None:
                raised.append(alert)
        for rule in self.drifts:
            value = values.get(rule.metric)
            if value is None:
                continue
            value = float(value)
            if not math.isfinite(value):
                continue
            moments = self._moments.setdefault(rule.metric, _RunningMoments())
            z = moments.zscore(value)
            if moments.count >= rule.min_history and z is not None and abs(z) > rule.z_max:
                raised.append(
                    Alert(
                        kind="drift",
                        metric=rule.metric,
                        message=f"{rule.metric}={value:g} drifted {z:+.1f}σ from run mean",
                        shard=shard,
                    )
                )
            moments.push(value)
        self.alerts.extend(raised)
        return raised


#: Substrings mapping a unit-failure reason string onto the paper taxonomy.
_FAILURE_PATTERNS: tuple[tuple[str, AnomalyKind], ...] = (
    ("not accepted", AnomalyKind.NOT_ACCEPTED),
    ("ambiguous date", AnomalyKind.AMBIGUOUS_DATE),
    ("implausible date", AnomalyKind.IMPLAUSIBLE_DATE),
    ("ambiguous cpu", AnomalyKind.AMBIGUOUS_CPU),
    ("node count", AnomalyKind.MISSING_NODE_COUNT),
    ("inconsistent core", AnomalyKind.INCONSISTENT_CORE_THREAD),
    ("implausible core", AnomalyKind.IMPLAUSIBLE_CORE_COUNT),
)


def classify_failure(reason: str) -> AnomalyKind | None:
    """Map a free-form failure reason onto the paper's anomaly taxonomy."""
    lowered = reason.lower()
    for pattern, kind in _FAILURE_PATTERNS:
        if pattern in lowered:
            return kind
    return None


#: Substrings mapping a failure reason onto an operational *failure domain*
#: — who to blame, which is not the same question as which anomaly it is.
_DOMAIN_PATTERNS: tuple[tuple[str, str], ...] = (
    ("injected fault", "injected"),
    ("quarantin", "quarantine"),
    ("timed out", "timeout"),
    ("timeout", "timeout"),
    ("connection", "io"),
    ("no such file", "io"),
    ("permission", "io"),
    ("errno", "io"),
    ("checksum", "corruption"),
    ("corrupt", "corruption"),
)


def classify_failure_domain(reason: str) -> str:
    """Map a failure reason onto an operational domain.

    Domains: ``injected`` (a :class:`~repro.errors.InjectedFault` from an
    active fault plan — chaos, not a product bug), ``quarantine``,
    ``timeout``, ``io``, ``corruption``, ``validation`` (one of the
    paper's anomaly kinds, via :func:`classify_failure`), else
    ``simulation`` — the residual bucket for genuine model/solver errors.
    """
    lowered = reason.lower()
    for pattern, domain in _DOMAIN_PATTERNS:
        if pattern in lowered:
            return domain
    if classify_failure(reason) is not None:
        return "validation"
    return "simulation"


def default_watch_rules() -> tuple[tuple[ThresholdRule, ...], tuple[DriftRule, ...]]:
    """The rule set ``campaign watch`` runs with out of the box."""
    thresholds = (
        ThresholdRule("failed", 0.0, ">", message="shard reported failed units"),
        ThresholdRule(
            "quarantined", 0.0, ">", message="shard quarantined poison units"
        ),
    )
    drifts = (
        DriftRule("wall_s", z_max=4.0),
        DriftRule("units_per_s", z_max=4.0),
    )
    return thresholds, drifts
