"""Per-span self-time aggregation over an ``events.jsonl`` log.

``spectrends profile report`` reads the span events a traced run emitted,
subtracts each span's direct children from its wall time (self time), and
renders the hottest span names as a table — the entry point for the
ROADMAP's profiling pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..errors import CampaignError

__all__ = ["SpanStats", "load_events", "aggregate_spans", "render_profile"]


@dataclass
class SpanStats:
    """Aggregate timings for all spans sharing a name."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    self_s: float = 0.0
    cpu_s: float = 0.0
    max_wall_s: float = 0.0
    attrs: dict[str, float] = field(default_factory=dict)

    def add(self, wall: float, self_wall: float, cpu: float, attrs: dict[str, Any]) -> None:
        self.count += 1
        self.wall_s += wall
        self.self_s += self_wall
        self.cpu_s += cpu
        self.max_wall_s = max(self.max_wall_s, wall)
        for key, value in attrs.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.attrs[key] = self.attrs.get(key, 0.0) + value


def load_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield event records from a JSON-lines file, skipping torn lines."""
    path = Path(path)
    if not path.exists():
        raise CampaignError(f"no event log at {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def aggregate_spans(events: Iterable[dict[str, Any]]) -> dict[str, SpanStats]:
    """Fold span events into per-name stats with self time.

    Self time is a span's wall time minus the wall time of its direct
    children (never below zero); it is what ``profile report`` ranks by,
    so a parent that merely waits on instrumented children does not mask
    the real hot path.
    """
    spans = [e for e in events if e.get("event") == "span" and e.get("wall_s") is not None]
    child_wall: dict[int, float] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + float(record["wall_s"])
    stats: dict[str, SpanStats] = {}
    for record in spans:
        name = str(record.get("name", "?"))
        wall = float(record["wall_s"])
        self_wall = max(0.0, wall - child_wall.get(record.get("span_id"), 0.0))
        cpu = float(record.get("cpu_s") or 0.0)
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        entry.add(wall, self_wall, cpu, record.get("attrs") or {})
    return stats


def render_profile(stats: dict[str, SpanStats], top: int = 15) -> str:
    """Render span stats as a fixed-width table, hottest self-time first."""
    if not stats:
        return "(no span events)"
    ordered = sorted(stats.values(), key=lambda s: (-s.self_s, s.name))[: max(top, 1)]
    total_self = sum(s.self_s for s in stats.values()) or 1.0
    name_width = max(4, max(len(s.name) for s in ordered))
    header = (
        f"{'span':<{name_width}}  {'count':>7}  {'self_s':>9}  "
        f"{'self%':>6}  {'wall_s':>9}  {'cpu_s':>9}  {'max_s':>8}"
    )
    lines = [header, "-" * len(header)]
    for s in ordered:
        lines.append(
            f"{s.name:<{name_width}}  {s.count:>7d}  {s.self_s:>9.4f}  "
            f"{100.0 * s.self_s / total_self:>5.1f}%  {s.wall_s:>9.4f}  "
            f"{s.cpu_s:>9.4f}  {s.max_wall_s:>8.4f}"
        )
    remainder = len(stats) - len(ordered)
    if remainder > 0:
        lines.append(f"... and {remainder} more span name(s)")
    return "\n".join(lines)


def resolve_events_path(
    events: str | Path | None = None,
    workspace: str | Path | None = None,
    store: str | Path | None = None,
) -> Path:
    """Locate an ``events.jsonl`` from an explicit path, store or workspace.

    An explicit event log or campaign store wins over the (session-wide)
    workspace, which may be set for unrelated caching reasons.
    """
    if events is not None:
        return Path(events)
    if store is not None:
        from ..campaign.store import CampaignStore

        return CampaignStore(Path(store)).events_path
    if workspace is not None:
        return Path(workspace) / "events.jsonl"
    raise CampaignError("profile report needs --events, --store or --workspace")
