"""Nestable tracing spans with structured JSON event emission.

A :class:`Tracer` hands out spans::

    with tracer.span("campaign.shard", index=3) as span:
        span.set("units", 128)
        span.incr("cache_hits")

Each closed span becomes one JSON line in every attached sink — an
append-only ``events.jsonl`` that ``spectrends profile report`` aggregates
and ``spectrends campaign watch`` tails.  Spans carry wall time
(``perf_counter``) and process CPU time (``process_time``), a span id, the
parent span id (tracked per-thread) and a monotone sequence number, so the
span tree can be rebuilt offline.

The disabled path is the hot one: ``tracer.span(...)`` on a disabled tracer
returns a shared no-op span without allocating, so instrumented code costs
one method call and one ``with`` block per span when tracing is off
(gated in ``benchmarks/test_bench_obs.py``).

The module-level tracer (:func:`get_tracer`) starts disabled unless
``REPRO_TRACE=1`` or ``REPRO_PROFILE=1`` is set in the environment;
:func:`configure_tracing` reconfigures it at runtime.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "JsonlSink",
    "configure_tracing",
    "get_tracer",
    "tracing_env_enabled",
]


class _NullSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None

    def incr(self, key: str, amount: float = 1.0) -> None:
        return None


NullSpan = _NullSpan()


class Span:
    """One timed unit of work; emits an event record when it closes."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "seq",
        "started_at",
        "_wall_start",
        "_cpu_start",
        "wall_s",
        "cpu_s",
        "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        span_id: int,
        parent_id: int | None,
        depth: int,
        seq: int,
    ):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.seq = seq
        self.started_at = time.time()
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self.status = "ok"

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def incr(self, key: str, amount: float = 1.0) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close_span(self)

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "event": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "seq": self.seq,
            "ts": self.started_at,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class JsonlSink:
    """Append-only JSON-lines sink, atomic across threads *and* processes.

    Each event is serialised to one complete ``...\\n`` line and handed to
    the kernel as a **single** ``os.write`` on an ``O_APPEND`` descriptor —
    POSIX applies the append offset atomically per write, so events from
    concurrent campaign workers sharing one ``events.jsonl`` land whole and
    never interleave within a line.  (A buffered text handle, the previous
    implementation, was only safe within one process: its flushes could
    split a line across multiple ``write(2)`` calls.)
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fd: int | None = None

    def emit(self, record: dict[str, Any]) -> None:
        data = (json.dumps(record, sort_keys=True, default=str) + "\n").encode("utf-8")
        with self._lock:
            if self._fd is None:
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            os.write(self._fd, data)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[int] = []


class Tracer:
    """Span factory fanning closed spans out to attached sinks."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._sinks: list[JsonlSink] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._seq = 0
        self._local = _SpanStack()

    # -- sink management -------------------------------------------------
    def add_sink(self, sink: JsonlSink) -> JsonlSink:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: JsonlSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
        sink.close()

    @property
    def sinks(self) -> tuple[JsonlSink, ...]:
        with self._lock:
            return tuple(self._sinks)

    # -- span / event creation -------------------------------------------
    def span(self, name: str, /, **attrs: Any):
        if not self.enabled:
            return NullSpan
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            seq = self._seq
            self._seq += 1
        stack = self._local.stack
        parent_id = stack[-1] if stack else None
        span = Span(self, name, attrs, span_id, parent_id, len(stack), seq)
        stack.append(span_id)
        return span

    def _close_span(self, span: Span) -> None:
        stack = self._local.stack
        if stack and stack[-1] == span.span_id:
            stack.pop()
        elif span.span_id in stack:  # out-of-order exit; drop through it
            del stack[stack.index(span.span_id) :]
        self._emit(span.to_record())

    def event(self, name: str, /, **fields: Any) -> None:
        """Emit a free-standing (non-span) event record."""
        if not self.enabled:
            return
        with self._lock:
            seq = self._seq
            self._seq += 1
        record = {"event": name, "ts": time.time(), "seq": seq}
        record.update(fields)
        self._emit(record)

    def _emit(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)


def tracing_env_enabled(environ: dict[str, str] | None = None) -> bool:
    """Whether ``REPRO_TRACE``/``REPRO_PROFILE`` ask for tracing."""
    env = os.environ if environ is None else environ
    for key in ("REPRO_TRACE", "REPRO_PROFILE"):
        if env.get(key, "").strip().lower() in {"1", "true", "yes", "on"}:
            return True
    return False


_global_tracer: Tracer | None = None
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (created on first use, env-configured)."""
    global _global_tracer
    if _global_tracer is None:
        with _global_lock:
            if _global_tracer is None:
                tracer = Tracer(enabled=tracing_env_enabled())
                trace_file = os.environ.get("REPRO_TRACE_FILE", "").strip()
                if tracer.enabled and trace_file:
                    tracer.add_sink(JsonlSink(trace_file))
                _global_tracer = tracer
    return _global_tracer


def configure_tracing(
    enabled: bool | None = None,
    path: str | Path | None = None,
) -> Tracer:
    """Reconfigure the global tracer; returns it.

    ``enabled=None`` leaves the enabled flag alone; ``path`` attaches one
    more :class:`JsonlSink`.
    """
    tracer = get_tracer()
    if enabled is not None:
        tracer.enabled = enabled
    if path is not None:
        tracer.add_sink(JsonlSink(path))
    return tracer
