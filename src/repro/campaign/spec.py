"""Declarative campaign specifications.

A :class:`CampaignSpec` names a sweep over the scenario space of the
simulator: which catalog generations to run, how many nodes per submission,
which :class:`~repro.simulator.director.SimulationOptions` variants and which
seeds.  ``expand`` turns the spec into a concrete, ordered list of
:class:`CampaignUnit`\\ s — one fully-resolved simulation each — using either
the cross product of all axes (``"grid"``) or position-wise pairing
(``"zip"``).

The expansion is purely a function of the spec and the catalog; two
expansions of the same spec produce identical units with identical
content-hash keys, which is what makes campaign caching and resumption safe.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import CampaignError
from ..market.catalog import Catalog, CatalogEntry, default_catalog
from ..market.fleet import SystemPlan
from ..simulator.director import SimulationOptions
from ..units import MonthDate
from .cache import entry_digest, unit_key

__all__ = ["PLAN_AXES", "OPTION_AXES", "CampaignUnit", "CampaignSpec"]

#: Axes resolved into the :class:`SystemPlan` of a unit.
PLAN_AXES: tuple[str, ...] = ("cpu_model", "nodes", "sockets", "memory_gb")

#: Axes resolved into the :class:`SimulationOptions` of a unit.
OPTION_AXES: tuple[str, ...] = (
    "fidelity",
    "interval_duration_s",
    "measurement_noise",
    "calibration_noise_sigma",
    "throughput_variation_sigma",
    "power_variation_sigma",
    "load_levels",
)

_ALL_AXES: tuple[str, ...] = PLAN_AXES + OPTION_AXES + ("seed",)

# Fixed, plausibility-only plan fields: campaign submissions are synthetic
# scenario probes, not market samples, so vendor strings stay constant.
_SYSTEM_VENDOR = "Campaign Works"
_SYSTEM_MODEL = "Sweep S100"
_OS_NAME = "SUSE Linux Enterprise Server 15"
_JVM_NAME = "OpenJDK 17.0.2"

_PSU_SIZES = (350.0, 460.0, 550.0, 750.0, 800.0, 1100.0, 1300.0,
              1600.0, 2000.0, 2400.0)

#: SPEC Power was first published in late 2007; campaign plans for earlier
#: hardware reuse that earliest plausible test date.
_EARLIEST_TEST = MonthDate(2007, 11)


@dataclass(frozen=True)
class CampaignUnit:
    """One fully-resolved simulation of a campaign.

    ``key`` is the content hash of ``(params, seed)`` — the identity used by
    the result cache and the run ledger.  ``run_id`` is derived from the key,
    so the per-run RNG stream is itself a function of the unit's content.
    """

    index: int
    key: str
    params: Mapping[str, Any]
    plan: SystemPlan
    options: SimulationOptions
    seed: int

    @property
    def unit_id(self) -> str:
        return self.plan.run_id

    def describe(self) -> str:
        parts = ", ".join(f"{name}={value}" for name, value in self.params.items())
        return f"{self.unit_id} ({parts})"


def _default_sockets(entry: CatalogEntry) -> int:
    """Largest typical socket count within the paper's 1-2 socket focus."""
    typical = [s for s in entry.typical_sockets if s <= 2]
    return max(typical) if typical else min(entry.typical_sockets)


def _psu_rating(entry: CatalogEntry, sockets: int, memory_gb: float) -> float:
    estimate = sockets * entry.cpu.tdp_w * 1.35 + memory_gb * 0.4 + 120.0
    for size in _PSU_SIZES:
        if size >= estimate:
            return size
    return _PSU_SIZES[-1]


def _normalise_value(axis: str, value: Any) -> Any:
    if axis == "load_levels" and value is not None:
        if not isinstance(value, Iterable) or isinstance(value, str):
            raise CampaignError("load_levels values must be sequences of loads")
        return tuple(float(level) for level in value)
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over the simulator's scenario space.

    Attributes
    ----------
    name:
        Campaign name; becomes part of the store layout and unit ids.
    sweep:
        Mapping of axis name → sequence of values.  Valid axes are
        :data:`PLAN_AXES`, :data:`OPTION_AXES` and ``"seed"``.
    base:
        Fixed values for axes *not* swept (same axis names).  Unset plan
        axes fall back to the catalog entry's typical configuration, unset
        option axes to the :class:`SimulationOptions` defaults, the seed
        to 2024.
    expansion:
        ``"grid"`` (cross product, default) or ``"zip"`` (position-wise;
        all swept axes must have equal lengths).
    """

    name: str
    sweep: Mapping[str, Sequence[Any]]
    base: Mapping[str, Any] = field(default_factory=dict)
    expansion: str = "grid"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("-", "").replace("_", "").isalnum():
            raise CampaignError(
                f"campaign name must be a non-empty slug, got {self.name!r}"
            )
        if self.expansion not in ("grid", "zip"):
            raise CampaignError(f"unknown expansion mode {self.expansion!r}")
        if not self.sweep:
            raise CampaignError("campaign sweep must name at least one axis")
        sweep: dict[str, tuple] = {}
        for axis, values in self.sweep.items():
            if axis not in _ALL_AXES:
                raise CampaignError(
                    f"unknown sweep axis {axis!r}; valid axes: {sorted(_ALL_AXES)}"
                )
            values = tuple(_normalise_value(axis, v) for v in values)
            if not values:
                raise CampaignError(f"sweep axis {axis!r} has no values")
            if len(set(map(repr, values))) != len(values):
                raise CampaignError(f"sweep axis {axis!r} repeats values")
            sweep[axis] = values
        if self.expansion == "zip":
            lengths = {len(v) for v in sweep.values()}
            if len(lengths) > 1:
                raise CampaignError(
                    "zip expansion requires equal-length axes; got lengths "
                    f"{ {a: len(v) for a, v in sweep.items()} }"
                )
        base: dict[str, Any] = {}
        for axis, value in self.base.items():
            if axis not in _ALL_AXES:
                raise CampaignError(f"unknown base axis {axis!r}")
            if axis in sweep:
                raise CampaignError(f"axis {axis!r} is both swept and fixed")
            base[axis] = _normalise_value(axis, value)
        object.__setattr__(self, "sweep", sweep)
        object.__setattr__(self, "base", base)

    # ------------------------------------------------------------------ #
    @property
    def axes(self) -> tuple[str, ...]:
        """Swept axis names in declaration order."""
        return tuple(self.sweep)

    @property
    def n_units(self) -> int:
        """Number of units the spec expands to."""
        if self.expansion == "zip":
            return len(next(iter(self.sweep.values())))
        product = 1
        for values in self.sweep.values():
            product *= len(values)
        return product

    # ------------------------------------------------------------------ #
    def _iter_assignments(self) -> Iterator[dict[str, Any]]:
        """Lazily yield axis assignments in expansion order.

        ``itertools.product`` materialises only one value tuple at a time,
        so iterating assignments never holds the cross product in memory —
        the property the sharded streaming runner relies on.
        """
        axes = list(self.sweep)
        if self.expansion == "zip":
            rows = zip(*(self.sweep[a] for a in axes))
        else:
            rows = itertools.product(*(self.sweep[a] for a in axes))
        for row in rows:
            yield dict(zip(axes, row))

    def _resolve_unit(
        self, index: int, assignment: dict[str, Any], catalog: Catalog
    ) -> CampaignUnit:
        params = dict(self.base)
        params.update(assignment)

        cpu_model = params.get("cpu_model")
        if cpu_model is None:
            raise CampaignError(
                "campaign needs a 'cpu_model' axis or base value"
            )
        entry = catalog.get(cpu_model)

        nodes = int(params.get("nodes", 1))
        if nodes < 1:
            raise CampaignError(f"nodes must be >= 1, got {nodes}")
        sockets = int(params.get("sockets", _default_sockets(entry)))
        if sockets < 1:
            raise CampaignError(f"sockets must be >= 1, got {sockets}")
        memory_gb = float(
            params.get("memory_gb", entry.typical_memory_gb_per_socket * sockets)
        )
        seed = int(params.get("seed", 2024))

        option_kwargs = {
            axis: params[axis] for axis in OPTION_AXES if axis in params
        }
        options = SimulationOptions(**option_kwargs)

        resolved = {
            "cpu_model": cpu_model,
            "nodes": nodes,
            "sockets": sockets,
            "memory_gb": memory_gb,
            "seed": seed,
            # The simulated result depends on the catalog entry behind the
            # model name, not just the name: a custom catalog with the same
            # model but different silicon must miss the cache.
            "catalog_entry": entry_digest(entry),
        }
        key = unit_key(resolved, options)
        # The run id seeds the per-run RNG stream, so it must be a function
        # of the unit's *content* only — never of the campaign name — or the
        # same cache key could map to different simulated results.
        run_id = f"campaign-{key[:16]}"

        release = entry.cpu.release
        test_date = release.shift(2)
        if test_date < _EARLIEST_TEST:
            test_date = _EARLIEST_TEST
        plan = SystemPlan(
            run_id=run_id,
            hw_avail=release,
            sw_avail=test_date.shift(-1),
            test_date=test_date,
            publication_date=test_date.shift(2),
            cpu_model=cpu_model,
            sockets=sockets,
            nodes=nodes,
            memory_gb=memory_gb,
            os_name=_OS_NAME,
            jvm_name=_JVM_NAME,
            system_vendor=_SYSTEM_VENDOR,
            system_model=_SYSTEM_MODEL,
            psu_rating_w=_psu_rating(entry, sockets, memory_gb),
            category="server",
        )
        # ``params`` keeps the *assignment view* (swept + explicitly fixed
        # axes) for frame annotation; resolved defaults stay out of it so
        # campaign columns mirror what the spec author wrote.
        return CampaignUnit(
            index=index,
            key=key,
            params=dict(params),
            plan=plan,
            options=options,
            seed=seed,
        )

    def iter_units(
        self, catalog: Catalog | None = None, check_duplicates: bool = True
    ) -> Iterator[CampaignUnit]:
        """Lazily resolve the spec into ordered, content-addressed units.

        Units are yielded one at a time in expansion order; the full unit
        list is never materialised, which keeps a consumer that processes
        units in bounded windows (the sharded streaming runner) at O(window)
        memory.  Duplicate-scenario detection keeps only the seen *keys*
        resident (64 hex chars per unit, orders of magnitude lighter than
        the units themselves); ``check_duplicates=False`` drops even that.
        """
        catalog = catalog or default_catalog()
        seen: dict[str, int] = {}
        for index, assignment in enumerate(self._iter_assignments()):
            unit = self._resolve_unit(index, assignment, catalog)
            if check_duplicates:
                if unit.key in seen:
                    raise CampaignError(
                        f"units {seen[unit.key]} and {unit.index} resolve to "
                        "the same scenario; remove the redundant axis values"
                    )
                seen[unit.key] = unit.index
            yield unit

    def expand(self, catalog: Catalog | None = None) -> tuple[CampaignUnit, ...]:
        """Resolve the spec into ordered, content-addressed units."""
        return tuple(self.iter_units(catalog))

    # ------------------------------------------------------------------ #
    # Serialisation (JSON round-trip used by the CLI and the store)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "expansion": self.expansion,
            "sweep": {axis: list(values) for axis, values in self.sweep.items()},
            "base": dict(self.base),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if "name" not in data or "sweep" not in data:
            raise CampaignError("campaign spec needs 'name' and 'sweep' entries")
        unknown = set(data) - {"name", "sweep", "base", "expansion"}
        if unknown:
            raise CampaignError(f"unknown campaign spec entries: {sorted(unknown)}")
        return cls(
            name=data["name"],
            sweep=data["sweep"],
            base=data.get("base", {}),
            expansion=data.get("expansion", "grid"),
        )

    @classmethod
    def from_json_file(cls, path: str | os.PathLike) -> "CampaignSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignError(f"cannot read campaign spec {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CampaignError(f"malformed campaign spec {path}: {exc}") from exc
        return cls.from_dict(data)
