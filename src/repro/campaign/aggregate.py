"""Incremental assembly of campaign unit rows into an analysis frame.

The accumulator is columnar from the start: rows are decomposed into
per-column value lists as they arrive, late-appearing columns are backfilled
with missing values, and :meth:`FrameAccumulator.to_frame` hands the lists to
:class:`repro.frame.Frame` without an intermediate list-of-dicts copy.  The
resulting frame has the same schema as :func:`repro.core.dataset.load_runs`
output plus the campaign annotation columns, so it flows straight into
:func:`repro.api.analyze`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..frame import Frame
from .spec import CampaignUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..frame.plan import Expr

__all__ = ["FrameAccumulator", "annotate_row", "assemble_frame", "summarize_store"]


class FrameAccumulator:
    """Columnar row accumulator with union-of-columns semantics."""

    def __init__(self) -> None:
        self._columns: dict[str, list] = {}
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Append one row; unseen columns are backfilled as missing."""
        for name, value in row.items():
            values = self._columns.get(name)
            if values is None:
                values = [None] * self._length
                self._columns[name] = values
            values.append(value)
        self._length += 1
        for name, values in self._columns.items():
            if len(values) < self._length:
                values.append(None)

    def add_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def to_frame(self) -> Frame:
        """Materialise the accumulated rows as a :class:`Frame`."""
        return Frame.from_dict(self._columns)


def _annotation_value(value: Any) -> Any:
    """Flatten an axis value into something a column can hold."""
    if isinstance(value, (list, tuple)):
        return ",".join(str(v) for v in value)
    return value


def annotate_row(row: Mapping[str, Any], unit: CampaignUnit) -> dict[str, Any]:
    """A unit's cached row plus the campaign bookkeeping columns.

    Adds ``campaign_unit`` (the content-derived unit id), ``campaign_key``,
    ``campaign_seed`` and one ``campaign_<axis>`` column per spec axis the
    unit was resolved from.
    """
    annotated = dict(row)
    annotated["campaign_unit"] = unit.unit_id
    annotated["campaign_key"] = unit.key
    annotated["campaign_seed"] = unit.seed
    for axis, value in unit.params.items():
        annotated[f"campaign_{axis}"] = _annotation_value(value)
    return annotated


def assemble_frame(
    units: Iterable[CampaignUnit],
    rows_by_key: Mapping[str, Mapping[str, Any]],
) -> Frame:
    """Build the campaign frame in unit order from completed rows.

    Units whose key is absent from ``rows_by_key`` (failed or still pending)
    are skipped — campaign output only ever contains completed simulations.
    """
    accumulator = FrameAccumulator()
    for unit in units:
        row = rows_by_key.get(unit.key)
        if row is not None:
            accumulator.add_row(annotate_row(row, unit))
    return accumulator.to_frame()


def summarize_store(
    store_dir: str,
    keys: Sequence[str],
    metrics: Mapping[str, Any] | Sequence[str],
    where: "Expr | None" = None,
    engine: str | None = None,
) -> Frame:
    """Grouped summary over a streamed campaign store, out of core.

    The Table-1 shape of post-campaign analysis — filter rows, group by
    sweep axes, aggregate metrics — expressed as a lazy plan over the
    shard artifacts: the optimizer pushes ``where`` into each shard's
    ``.npz`` scan and prunes the load to ``keys`` plus the metric columns,
    so memory stays O(chunk + groups) however many rows the campaign
    produced.  ``metrics`` is either a groupby agg spec mapping
    (``{"watts": ("mean", "max")}``) or a plain list of column names,
    which summarises each with its mean.  Output is bit-identical to the
    same eager chain on :meth:`StreamingCampaignResult.frame`.
    """
    from .sharding import scan_shards

    plan = scan_shards(store_dir)
    if where is not None:
        plan = plan.filter(where)
    spec = dict(metrics) if isinstance(metrics, Mapping) else {m: "mean" for m in metrics}
    return plan.groupby(list(keys)).agg(spec).collect(engine=engine)
