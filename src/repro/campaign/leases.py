"""Lease-based shard claiming over the append-only shard ledger.

Multi-worker campaigns coordinate through ``shards.jsonl`` alone — no
locks, no server, no shared memory.  A worker claims a shard by appending
a **lease record** (worker id, pid, wall-clock deadline); completion is
the existing shard *result* record, which supersedes any lease for that
index.  Because every append is a single atomic ``O_APPEND`` write
(:func:`repro.io.jsonl.append_jsonl`), two workers racing to claim the
same shard both land whole records and the deterministic tie-break below
picks one winner — the loser observes it lost and moves on.

Semantics
---------
* **Latest valid lease wins.**  The live claim on a shard is the *last*
  lease record in append order whose deadline has not passed and whose
  holder process is still alive.  Appending a newer lease (re-claim after
  expiry) supersedes older ones.
* **Validity = not expired AND holder alive.**  Deadlines are wall-clock
  (``time.time()``) because monotonic clocks are not comparable across
  processes.  A dead holder (``os.kill(pid, 0)`` fails) invalidates its
  lease immediately — a SIGKILL'd worker's shard is reclaimable without
  waiting out the TTL, which is what bounds its loss to one shard of
  progress.
* **Completion beats any lease.**  Readers consult
  :meth:`CampaignStore.shard_entries` (result records only) first; a
  completed shard is never claimed again.
* **Leases reduce, not prevent, duplicate work.**  Between observing "no
  valid lease" and appending its own claim, a worker can race another;
  both then execute the shard.  That is safe — results are deterministic
  and content-addressed, so duplicates collapse in the cache and the
  latest identical result record wins — just wasteful, and the claim
  protocol makes the window one read-append cycle wide.

``LeaseLedger.release`` appends a lease whose deadline equals its
timestamp, i.e. born-expired: a polite hand-back when a worker claims a
shard and then discovers it cannot make progress on it.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # import-cycle-safe: only the type checker needs this
    from .store import CampaignStore

__all__ = ["DEFAULT_LEASE_TTL", "Lease", "LeaseLedger", "LeaseHeartbeat"]

#: Default lease time-to-live in seconds.  Generous relative to a shard's
#: flush time so slow-but-alive workers are not preempted; the pid
#: liveness check — not the TTL — is what makes dead-worker reclaim fast.
DEFAULT_LEASE_TTL = 120.0


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one shard."""

    index: int
    worker: str
    pid: int
    ts: float
    deadline: float

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) >= self.deadline

    def holder_alive(self) -> bool:
        """Whether the claiming process still exists (same-host check)."""
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # exists but owned by someone else
            return True
        except OSError:
            return False
        return True

    def valid(self, now: float | None = None) -> bool:
        """Live claim: not expired and the holder process is alive."""
        return not self.expired(now) and self.holder_alive()

    def to_record(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "worker": self.worker,
            "pid": self.pid,
            "ts": self.ts,
            "deadline": self.deadline,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Lease | None":
        try:
            return cls(
                index=int(record["index"]),
                worker=str(record["worker"]),
                pid=int(record["pid"]),
                ts=float(record["ts"]),
                deadline=float(record["deadline"]),
            )
        except (KeyError, TypeError, ValueError):
            return None  # malformed lease = no claim


class LeaseLedger:
    """Claim/release shards through a store's append-only shard ledger."""

    def __init__(
        self,
        store: "CampaignStore",
        worker: str,
        ttl: float = DEFAULT_LEASE_TTL,
    ):
        self.store = store
        self.worker = worker
        self.ttl = float(ttl)
        self.pid = os.getpid()

    # -- reads ----------------------------------------------------------- #
    def leases(self) -> dict[int, Lease]:
        """Latest lease per shard index, valid or not (latest-wins)."""
        latest: dict[int, Lease] = {}
        for index, record in self.store.lease_entries().items():
            lease = Lease.from_record(record)
            if lease is not None:
                latest[index] = lease
        return latest

    def holder(self, index: int) -> Lease | None:
        """The live claim on a shard, or ``None`` if it is up for grabs."""
        lease = self.leases().get(index)
        if lease is not None and lease.valid():
            return lease
        return None

    # -- writes ---------------------------------------------------------- #
    def try_claim(self, index: int) -> Lease | None:
        """Claim a shard; returns the lease, or ``None`` if someone holds it.

        Read-check-append, then re-read to settle races: if two workers
        append claims concurrently, both re-read and the *latest* appended
        valid lease wins, so exactly one of them sees its own record as
        the winner.  (The loser's executed work, if the race window let it
        start, is deduplicated by the content-hash cache.)
        """
        if self.holder(index) is not None:
            return None
        now = time.time()
        lease = Lease(
            index=index,
            worker=self.worker,
            pid=self.pid,
            ts=now,
            deadline=now + self.ttl,
        )
        self.store.record_lease(lease.to_record())
        winner = self.holder(index)
        if winner is not None and winner.worker == self.worker and winner.pid == self.pid:
            return lease
        return None

    def renew(self, index: int) -> None:
        """Push the deadline of this worker's claim on a shard forward.

        The heartbeat: a long-running flush renews well inside the TTL, so
        a *slow but alive* worker keeps its claim, while a *hung* worker
        (alive pid, no renewals) lets the deadline lapse and
        :meth:`Lease.valid` starts failing on the expiry check — the shard
        becomes reclaimable even though the process still exists.  Renewal
        is just a fresh latest-wins lease append.
        """
        now = time.time()
        self.store.record_lease(
            Lease(
                index=index,
                worker=self.worker,
                pid=self.pid,
                ts=now,
                deadline=now + self.ttl,
            ).to_record()
        )

    def release(self, index: int) -> None:
        """Hand a shard back by appending a born-expired lease."""
        now = time.time()
        self.store.record_lease(
            Lease(
                index=index,
                worker=self.worker,
                pid=self.pid,
                ts=now,
                deadline=now,
            ).to_record()
        )

    def reclaimable(self, index: int) -> bool:
        """Whether the shard has no live claim (expired, dead, or none)."""
        return self.holder(index) is None

    # -- bulk teardown ---------------------------------------------------- #
    def outstanding(self) -> list[Lease]:
        """Live leases not yet superseded by a completed shard result.

        The set a cancellation must hand back: shards some worker still
        claims but whose result record has not landed.  Completed shards
        are excluded — their results supersede any lease — so releasing
        the outstanding set never discards finished work.
        """
        completed = set(self.store.shard_entries())
        return [
            lease
            for index, lease in sorted(self.leases().items())
            if index not in completed and lease.valid()
        ]

    def release_outstanding(self) -> list[int]:
        """Release every live, incomplete lease; returns the shard indices.

        Used by job cancellation: after the scheduler stops dispatching a
        job's shards, any claims its workers still hold are handed back so
        a resubmit (or ``campaign resume``) can reclaim them immediately
        instead of waiting out TTLs.  Releasing a lease held by another
        pid is safe here — release is a born-expired append, and the
        superseded holder's eventual result record still wins if its flush
        was already in flight.
        """
        released = []
        for lease in self.outstanding():
            self.release(lease.index)
            released.append(lease.index)
        return released


class LeaseHeartbeat:
    """Background renewal of one shard's lease while its flush runs.

    Started around ``_flush_shard`` in the worker loop; renews every
    ``interval`` seconds (default ``ttl / 4`` — several missed beats fit
    inside one TTL, so scheduler jitter never drops a live claim).  Used as
    a context manager so the thread always stops, even when the flush
    raises and the worker is about to release the shard.
    """

    def __init__(self, ledger: LeaseLedger, index: int, interval: float | None = None):
        self.ledger = ledger
        self.index = index
        self.interval = max(ledger.ttl / 4.0 if interval is None else interval, 0.01)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "LeaseHeartbeat":
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{self.index}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.ledger.renew(self.index)
            except OSError:  # pragma: no cover - store dir vanished mid-run
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "LeaseHeartbeat":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
