"""Content-addressed storage of campaign unit results.

A unit's cache key is the SHA-256 digest of a canonical JSON encoding of its
resolved parameters, its :class:`SimulationOptions` and its seed.  The key is
independent of the sweep that produced the unit, of axis ordering and of the
campaign name, so identical scenarios share one cache entry across campaigns
and re-running a spec only simulates units whose keys are absent.

Storage is one instance of the generic
:class:`repro.session.artifacts.ArtifactStore` (which this module's original
implementation grew into): one JSON file per key, fanned out over 256
two-hex-digit subdirectories, atomic writes, schema-guarded reads.  The
campaign cache keeps its historical on-disk payload field (``"row"``) so
existing stores stay warm across the generalisation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Mapping

from ..errors import CampaignError
from ..session.artifacts import ArtifactStore, canonical_json, digest_json
from ..simulator.director import SimulationOptions

__all__ = ["SCHEMA_VERSION", "entry_digest", "unit_key", "ResultCache"]

#: Bump when the stored row layout or the key derivation changes; old cache
#: entries then miss instead of surfacing stale rows.
SCHEMA_VERSION = 1


def entry_digest(entry: Any) -> str:
    """Short content digest of a catalog entry (a frozen dataclass tree).

    Folded into unit keys so that two catalogs sharing a CPU model name but
    differing in the silicon behind it (TDP, power profile, throughput)
    produce distinct cache entries.
    """
    canonical = json.dumps(canonical_json(asdict(entry)), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def unit_key(params: Mapping[str, Any], options: SimulationOptions) -> str:
    """Stable content hash of a resolved unit.

    ``params`` must already contain every resolved plan field and the seed;
    the options dataclass is flattened field-by-field so that adding an
    option with a new default changes keys only for non-default values —
    defaults are serialised too, which keeps the hash honest when defaults
    themselves change (SCHEMA_VERSION guards that case).
    """
    return digest_json(
        {
            "schema": SCHEMA_VERSION,
            "params": canonical_json(params),
            "options": canonical_json(asdict(options)),
        }
    )


class ResultCache(ArtifactStore):
    """Directory of unit rows keyed by content hash."""

    error = CampaignError
    schema = SCHEMA_VERSION
    payload_field = "row"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored row for ``key``, or ``None`` on a miss."""
        return super().get(key)

    def put(self, key: str, row: Mapping[str, Any]):
        """Store ``row`` under ``key`` atomically; returns the entry path."""
        # Row key order is preserved (not canonicalised): it is the column
        # order of the assembled frame, and cached rows must line up with
        # freshly simulated ones.
        return super().put(key, dict(row))
