"""Content-addressed storage of campaign unit results.

A unit's cache key is the SHA-256 digest of a canonical JSON encoding of its
resolved parameters, its :class:`SimulationOptions` and its seed.  The key is
independent of the sweep that produced the unit, of axis ordering and of the
campaign name, so identical scenarios share one cache entry across campaigns
and re-running a spec only simulates units whose keys are absent.

Results are stored as one JSON file per key (the flat run row produced by the
parser round-trip), fanned out over 256 two-hex-digit subdirectories so large
campaigns do not degrade directory listings.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import CampaignError
from ..simulator.director import SimulationOptions

__all__ = ["SCHEMA_VERSION", "entry_digest", "unit_key", "ResultCache"]

#: Bump when the stored row layout or the key derivation changes; old cache
#: entries then miss instead of surfacing stale rows.
SCHEMA_VERSION = 1


def _canonical(value: Any) -> Any:
    """Make a value JSON-canonical (tuples → lists, stable key order)."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def entry_digest(entry: Any) -> str:
    """Short content digest of a catalog entry (a frozen dataclass tree).

    Folded into unit keys so that two catalogs sharing a CPU model name but
    differing in the silicon behind it (TDP, power profile, throughput)
    produce distinct cache entries.
    """
    canonical = json.dumps(_canonical(asdict(entry)), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def unit_key(params: Mapping[str, Any], options: SimulationOptions) -> str:
    """Stable content hash of a resolved unit.

    ``params`` must already contain every resolved plan field and the seed;
    the options dataclass is flattened field-by-field so that adding an
    option with a new default changes keys only for non-default values —
    defaults are serialised too, which keeps the hash honest when defaults
    themselves change (SCHEMA_VERSION guards that case).
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "params": _canonical(params),
        "options": _canonical(asdict(options)),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of unit rows keyed by content hash."""

    def __init__(self, directory: str | os.PathLike):
        # Created lazily on first ``put``: read-only operations (status on a
        # mistyped path, say) must not leave empty directories behind.
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise CampaignError(f"malformed cache key {key!r}")
        return self.directory / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """All stored keys (unordered)."""
        for path in self.directory.glob("??/*.json"):
            yield path.stem

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored row for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable cache entry {path}: {exc}") from exc
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload["row"]

    def put(self, key: str, row: Mapping[str, Any]) -> Path:
        """Store ``row`` under ``key`` atomically; returns the entry path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Row key order is preserved (not canonicalised): it is the column
        # order of the assembled frame, and cached rows must line up with
        # freshly simulated ones.
        payload = json.dumps({"schema": SCHEMA_VERSION, "key": key, "row": dict(row)})
        # Write-then-rename keeps a killed campaign from leaving a torn
        # entry that would poison the next resume.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.directory.glob("??/*.json")):
            path.unlink()
            removed += 1
        return removed
