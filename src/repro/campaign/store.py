"""Resumable campaign directories.

A campaign store is a directory with everything needed to continue an
interrupted campaign without the original process:

* ``spec.json`` — snapshot of the :class:`CampaignSpec` (``resume`` re-expands
  it instead of trusting in-memory state),
* ``manifest.json`` — the expanded unit list (ids, keys, parameters), written
  before execution starts so ``status`` can report progress against the full
  grid even mid-run,
* ``results/`` — the content-addressed :class:`ResultCache`,
* ``ledger.jsonl`` — append-only per-unit outcome log (``ok`` / ``failed``
  with the captured error), the record of *attempts* as opposed to the
  cache's record of *successes*,
* ``shards.jsonl`` + ``shards/`` — present for sharded streaming runs: the
  append-only shard manifest (latest entry per shard index wins) and the
  content-addressed per-shard columnar frame artifacts it points into, the
  state that lets ``resume`` restart at shard granularity.

Because results are keyed by content and the ledger is append-only, a store
survives being killed at any point: the next run simply simulates whatever
keys are missing from the cache.

Record kinds and concurrency
----------------------------
``shards.jsonl`` is also the coordination ledger for multi-worker
execution.  Two record kinds share the file, discriminated by the ``kind``
field:

* **result records** (no ``kind`` field, historically, or ``kind:
  "shard"``) — one shard outcome per line; the latest result record per
  index wins (:meth:`shard_entries`),
* **lease records** (``kind: "lease"``) — a worker's claim on a shard
  (worker id, pid, wall-clock deadline); the latest lease per index wins
  (:meth:`lease_entries`), and a result record supersedes any lease for
  its shard.  See :mod:`repro.campaign.leases`.

Every append in this module is a single ``write(2)`` on an ``O_APPEND``
descriptor (:func:`repro.io.jsonl.append_jsonl`), so concurrent workers
appending to the same ledger never interleave within a line — readers see
whole records in *some* order, which is all the latest-wins semantics need.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..errors import CampaignError
from ..io.jsonl import JsonlFollower, append_jsonl, read_jsonl
from .cache import ResultCache
from .spec import CampaignSpec, CampaignUnit

if TYPE_CHECKING:  # import-cycle-safe: only the type checker needs this
    from ..session.artifacts import ArtifactStore

__all__ = ["SHARD_SCHEMA", "CampaignStatus", "CampaignStore", "ShardProgress"]

#: Schema version of per-shard frame artifacts; bump when the columnar
#: payload layout changes so stale shard artifacts miss instead of loading.
SHARD_SCHEMA = 1


@dataclass(frozen=True)
class ShardProgress:
    """Shard-level progress of a streaming store's flush pipeline.

    ``status`` on a resident (non-sharded) store carries no shard
    progress; for streaming stores this is what makes ``campaign status``
    and ``campaign watch`` agree — both read the same shard manifest.
    """

    total: int
    complete: int
    partial: int
    rows_flushed: int
    shard_size: int

    @property
    def pending(self) -> int:
        return max(self.total - self.complete - self.partial, 0)

    def describe(self) -> str:
        return (
            f"shards: {self.complete}/{self.total} complete, "
            f"{self.partial} partial, {self.pending} pending "
            f"({self.rows_flushed} rows flushed, shard_size={self.shard_size})"
        )


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of a campaign store."""

    name: str
    total: int
    completed: int
    failed: int
    failures: tuple[tuple[str, str], ...]  # (unit_id, error)
    shards: ShardProgress | None = None
    #: Units that exhausted their retry budget and were written to
    #: ``quarantine.jsonl`` — excluded from execution, so a campaign that
    #: has any can at best finish ``degraded``.
    quarantined: int = 0

    @property
    def pending(self) -> int:
        return self.total - self.completed

    @property
    def is_complete(self) -> bool:
        return self.completed == self.total

    @property
    def is_degraded(self) -> bool:
        """Everything ran except quarantined poison units."""
        return (
            self.quarantined > 0
            and self.completed + self.quarantined >= self.total
            and not self.is_complete
        )

    def describe(self) -> str:
        lines = [
            f"campaign {self.name}: {self.completed}/{self.total} units "
            f"completed, {self.pending} pending, {self.failed} failed"
        ]
        if self.quarantined:
            state = "degraded" if self.is_degraded else f"{self.pending} pending"
            lines.append(f"  {self.quarantined} quarantined ({state})")
        if self.shards is not None:
            lines.append(f"  {self.shards.describe()}")
        for unit_id, error in self.failures:
            lines.append(f"  failed {unit_id}: {error}")
        return "\n".join(lines)


class CampaignStore:
    """On-disk state of one campaign."""

    def __init__(
        self,
        directory: str | os.PathLike,
        results_dir: str | os.PathLike | None = None,
    ):
        # The directory is created by ``initialize`` (and lazily by cache
        # writes), never by construction: ``status`` on a mistyped path must
        # not scaffold an empty store.
        self.directory = Path(directory)
        self._explicit_results_dir = (
            Path(results_dir) if results_dir is not None else None
        )
        self._cache: ResultCache | None = None

    @property
    def results_dir(self) -> Path:
        """Where this store's unit results live.

        Defaults to the store-local ``results/``; a campaign service points
        several job stores at one shared directory so identical units
        submitted by different clients dedup through the content-hash
        cache.  An explicit ``results_dir`` passed at construction wins;
        otherwise a ``results_dir`` recorded in the manifest (by
        :meth:`initialize_streaming`) is honoured so ``resume``/``status``
        on a service-owned store find the shared cache without being told.
        """
        if self._explicit_results_dir is not None:
            return self._explicit_results_dir
        stored = self._stored_results_dir()
        if stored is not None:
            return stored
        return self.directory / "results"

    def _stored_results_dir(self) -> Path | None:
        try:
            data = self._read_json(self.manifest_path, "missing", "manifest")
        except CampaignError:
            return None
        value = data.get("results_dir")
        if isinstance(value, str) and value:
            return Path(value)
        return None

    @property
    def cache(self) -> ResultCache:
        if self._cache is None:
            self._cache = ResultCache(self.results_dir)
        return self._cache

    @property
    def uses_shared_results(self) -> bool:
        """Whether results live outside the store (shared with other jobs)."""
        return self.results_dir != self.directory / "results"

    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> Path:
        return self.directory / "spec.json"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def ledger_path(self) -> Path:
        return self.directory / "ledger.jsonl"

    @property
    def shards_path(self) -> Path:
        return self.directory / "shards.jsonl"

    @property
    def events_path(self) -> Path:
        return self.directory / "events.jsonl"

    @property
    def quarantine_path(self) -> Path:
        return self.directory / "quarantine.jsonl"

    @property
    def shard_store(self) -> "ArtifactStore":
        """Content-addressed store of per-shard columnar frame artifacts.

        Shard artifacts are campaign state, so unreadable entries surface
        as :class:`CampaignError` (mirroring :class:`ResultCache`) — one
        exception type for every campaign-store failure the CLI and the
        streaming export paths guard against.
        """
        from ..session.artifacts import ArtifactStore

        store = ArtifactStore(self.directory / "shards", schema=SHARD_SCHEMA)
        store.error = CampaignError
        return store

    # ------------------------------------------------------------------ #
    def _write_spec_snapshot(self, spec: CampaignSpec) -> None:
        """Record the spec snapshot, rejecting a conflicting existing one.

        A store only ever belongs to one spec; initialising with a different
        one is an error (use a fresh directory per campaign).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            stored = self.load_spec()
            if stored.to_dict() != spec.to_dict():
                raise CampaignError(
                    f"store {self.directory} already holds campaign "
                    f"{stored.name!r} with a different spec"
                )
        else:
            self.spec_path.write_text(
                json.dumps(spec.to_dict(), indent=2, sort_keys=True),
                encoding="utf-8",
            )

    def initialize(self, spec: CampaignSpec, units: tuple[CampaignUnit, ...]) -> None:
        """Record the spec snapshot and full unit manifest before execution."""
        self._write_spec_snapshot(spec)
        manifest = {
            "name": spec.name,
            "units": [
                {
                    "index": unit.index,
                    "unit_id": unit.unit_id,
                    "key": unit.key,
                    "params": {k: _jsonable(v) for k, v in unit.params.items()},
                }
                for unit in units
            ],
        }
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
        )

    def initialize_streaming(self, spec: CampaignSpec, shard_size: int) -> None:
        """Record the spec snapshot and a *light* manifest (no unit list).

        A sharded streaming run never materialises the full expansion, so
        the manifest holds only the unit count and the shard layout —
        O(plan)-sized per-unit metadata would defeat the bounded-memory
        contract.  ``status`` and ``resume`` work from the cache, the
        ledger and the shard manifest instead.
        """
        self._write_spec_snapshot(spec)
        manifest: dict[str, Any] = {
            "name": spec.name,
            "n_units": spec.n_units,
            "sharded": {"shard_size": int(shard_size)},
        }
        if self._explicit_results_dir is not None:
            manifest["results_dir"] = str(self._explicit_results_dir)
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
        )

    def stored_shard_size(self) -> int | None:
        """The shard layout the store was last initialised with, if any."""
        try:
            data = self._read_json(self.manifest_path, "missing", "manifest")
        except CampaignError:
            return None
        sharded = data.get("sharded")
        if isinstance(sharded, Mapping):
            size = sharded.get("shard_size")
            if isinstance(size, int) and size >= 1:
                return size
        return None

    def _read_json(self, path: Path, missing: str, what: str) -> Any:
        """Read one JSON document, mapping IO failures to campaign errors."""
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CampaignError(missing) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable {what}: {exc}") from exc

    def load_spec(self) -> CampaignSpec:
        """The spec snapshot the store was initialised with."""
        data = self._read_json(
            self.spec_path,
            f"{self.directory} is not a campaign store (no spec.json)",
            "spec snapshot",
        )
        return CampaignSpec.from_dict(data)

    def load_manifest(self) -> list[dict[str, Any]]:
        """Per-unit manifest entries; empty for light (streaming) manifests."""
        data = self._read_json(
            self.manifest_path,
            f"{self.directory} has no manifest; run the campaign first",
            "manifest",
        )
        return data.get("units", [])

    # ------------------------------------------------------------------ #
    @staticmethod
    def _ledger_entry(unit: CampaignUnit, error: str | None) -> dict[str, Any]:
        entry = {
            "unit_id": unit.unit_id,
            "key": unit.key,
            "status": "ok" if error is None else "failed",
        }
        if error is not None:
            entry["error"] = error
        return entry

    def record(self, unit: CampaignUnit, error: str | None = None) -> None:
        """Append one attempt outcome to the ledger."""
        append_jsonl(self.ledger_path, [self._ledger_entry(unit, error)])

    def record_many(
        self, outcomes: "Iterable[tuple[CampaignUnit, str | None]]"
    ) -> None:
        """Append a batch of attempt outcomes as one atomic write.

        The streaming runner flushes one shard at a time; a single
        ``O_APPEND`` write per shard keeps ledger bookkeeping cheap at
        100k-unit scale *and* keeps concurrent workers' batches contiguous.
        """
        append_jsonl(
            self.ledger_path,
            (self._ledger_entry(unit, error) for unit, error in outcomes),
        )

    def _jsonl_entries(self, path: Path) -> list[dict[str, Any]]:
        """Entries of one append-only JSONL file (torn tail lines skipped)."""
        return read_jsonl(path)

    def ledger_entries(self) -> list[dict[str, Any]]:
        """All ledger entries in append order (torn tail lines skipped)."""
        return self._jsonl_entries(self.ledger_path)

    # ------------------------------------------------------------------ #
    # Shard manifest (sharded streaming runs)
    # ------------------------------------------------------------------ #
    def record_shard(self, entry: Mapping[str, Any]) -> None:
        """Append one shard outcome to the shard manifest.

        Entries are append-only like the ledger; the *latest* entry per
        shard index wins (a resumed partial shard appends a fresh entry
        once it completes).
        """
        append_jsonl(self.shards_path, [dict(entry)])

    def shard_entries(self) -> dict[int, dict[str, Any]]:
        """Latest shard *result* entry per shard index (leases excluded).

        This is what gives ``resume`` shard granularity: a shard whose
        latest entry is complete (and whose artifact still loads) is
        skipped wholesale — no per-unit cache probing, no re-simulation.
        """
        latest: dict[int, dict[str, Any]] = {}
        for entry in self._jsonl_entries(self.shards_path):
            if entry.get("kind") == "lease":
                continue
            index = entry.get("index")
            if isinstance(index, int):
                latest[index] = entry
        return latest

    def record_lease(self, entry: Mapping[str, Any]) -> None:
        """Append one lease record (``kind: "lease"``) to the shard ledger.

        Leases share ``shards.jsonl`` with result records so that a claim
        and its completion live in one append-ordered file — a reader never
        sees a completion without being able to see the claim that
        produced it.  See :mod:`repro.campaign.leases` for semantics.
        """
        record = dict(entry)
        record["kind"] = "lease"
        append_jsonl(self.shards_path, [record])

    def lease_entries(self) -> dict[int, dict[str, Any]]:
        """Latest lease record per shard index (latest-wins, like results)."""
        latest: dict[int, dict[str, Any]] = {}
        for entry in self._jsonl_entries(self.shards_path):
            if entry.get("kind") != "lease":
                continue
            index = entry.get("index")
            if isinstance(index, int):
                latest[index] = entry
        return latest

    # ------------------------------------------------------------------ #
    # Poison-unit quarantine (retry exhaustion; see campaign.sharding)
    # ------------------------------------------------------------------ #
    def record_quarantine(
        self, unit: CampaignUnit, error: str, attempts: int
    ) -> None:
        """Record a unit that exhausted its retry budget as quarantined.

        Quarantined units are excluded from later execution passes (a
        poison unit must not stall a 100k-unit sweep forever) and the
        campaign that skips any completes ``degraded`` rather than
        ``complete`` — the record here is what makes that status, and the
        exact units behind it, durable and auditable.
        """
        append_jsonl(
            self.quarantine_path,
            [
                {
                    "unit_id": unit.unit_id,
                    "key": unit.key,
                    "error": error,
                    "attempts": int(attempts),
                    "ts": time.time(),
                }
            ],
        )

    def quarantine_entries(self) -> list[dict[str, Any]]:
        """All quarantine records in append order (latest per key last)."""
        return self._jsonl_entries(self.quarantine_path)

    def quarantine_keys(self) -> set[str]:
        """Unit keys currently quarantined (skipped by execution passes)."""
        return {
            entry["key"]
            for entry in self.quarantine_entries()
            if isinstance(entry.get("key"), str)
        }

    # ------------------------------------------------------------------ #
    # Telemetry event log (``campaign watch`` tails this)
    # ------------------------------------------------------------------ #
    def record_event(self, name: str, /, **fields: Any) -> None:
        """Append one telemetry event to the store's ``events.jsonl``.

        Events are observability state, never campaign state: nothing in
        the data plane reads them back, so emission is bit-effect-free on
        results.  The streaming runner emits one compact event per shard
        flush — what ``campaign watch`` and ``profile report`` consume.
        """
        record: dict[str, Any] = {"event": name, "ts": time.time()}
        record.update(fields)
        append_jsonl(self.events_path, [record])

    def event_entries(self) -> list[dict[str, Any]]:
        """All telemetry events in append order (torn tail lines skipped)."""
        return self._jsonl_entries(self.events_path)

    def events_follower(self) -> "JsonlFollower":
        """Offset-tracking incremental reader over ``events.jsonl``.

        Each ``poll()`` parses only bytes appended since the last call —
        the service event streamer holds one follower per connection
        instead of re-reading the whole log every tick.
        """
        return JsonlFollower(self.events_path)

    def shard_progress(self) -> "ShardProgress | None":
        """Shard-level progress from the manifest + shard log (or ``None``).

        Only streaming stores have a shard layout; resident stores return
        ``None`` so ``status`` keeps its unit-level shape for them.
        """
        shard_size = self.stored_shard_size()
        if shard_size is None:
            return None
        try:
            data = self._read_json(self.manifest_path, "missing", "manifest")
        except CampaignError:
            return None
        n_units = int(data.get("n_units", 0))
        total = -(-n_units // shard_size) if n_units else 0
        complete = 0
        partial = 0
        rows = 0
        for entry in self.shard_entries().values():
            if entry.get("status") == "complete":
                complete += 1
            else:
                partial += 1
            rows += int(entry.get("n_rows", 0))
        return ShardProgress(
            total=max(total, complete + partial),
            complete=complete,
            partial=partial,
            rows_flushed=rows,
            shard_size=shard_size,
        )

    # ------------------------------------------------------------------ #
    def status(self) -> CampaignStatus:
        """Progress against the manifest, from cache + ledger state.

        Full manifests are walked unit by unit.  Light (streaming)
        manifests carry no unit list, so completion is counted from the
        cache and failures from the ledger — same numbers, O(completed)
        instead of O(plan) metadata.
        """
        spec = self.load_spec()
        data = self._read_json(
            self.manifest_path,
            f"{self.directory} has no manifest; run the campaign first",
            "manifest",
        )
        manifest = data.get("units")
        last_error: dict[str, str] = {}
        unit_ids: dict[str, str] = {}
        for entry in self.ledger_entries():
            unit_ids[entry["key"]] = entry.get("unit_id", entry["key"][:16])
            if entry.get("status") == "failed":
                last_error[entry["key"]] = entry.get("error", "unknown error")
            else:
                last_error.pop(entry["key"], None)
        completed = 0
        failures: list[tuple[str, str]] = []
        if manifest is None:
            total = int(data.get("n_units", 0))
            if self.uses_shared_results:
                # A shared cache holds other campaigns' units too, so cache
                # membership overcounts; rows flushed into *this* store's
                # shard artifacts is the per-campaign completion count.
                completed = sum(
                    int(entry.get("n_rows", 0))
                    for entry in self.shard_entries().values()
                )
            else:
                completed = sum(1 for _ in self.cache.keys())
            for key, error in last_error.items():
                if key not in self.cache:
                    failures.append((unit_ids[key], error))
        else:
            total = len(manifest)
            for unit in manifest:
                if unit["key"] in self.cache:
                    completed += 1
                elif unit["key"] in last_error:
                    failures.append((unit["unit_id"], last_error[unit["key"]]))
        quarantined = {
            key for key in self.quarantine_keys() if key not in self.cache
        }
        return CampaignStatus(
            name=spec.name,
            total=total,
            completed=completed,
            failed=len(failures),
            failures=tuple(failures),
            shards=self.shard_progress(),
            quarantined=len(quarantined),
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value
