"""Resumable campaign directories.

A campaign store is a directory with everything needed to continue an
interrupted campaign without the original process:

* ``spec.json`` — snapshot of the :class:`CampaignSpec` (``resume`` re-expands
  it instead of trusting in-memory state),
* ``manifest.json`` — the expanded unit list (ids, keys, parameters), written
  before execution starts so ``status`` can report progress against the full
  grid even mid-run,
* ``results/`` — the content-addressed :class:`ResultCache`,
* ``ledger.jsonl`` — append-only per-unit outcome log (``ok`` / ``failed``
  with the captured error), the record of *attempts* as opposed to the
  cache's record of *successes*.

Because results are keyed by content and the ledger is append-only, a store
survives being killed at any point: the next run simply simulates whatever
keys are missing from the cache.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import CampaignError
from .cache import ResultCache
from .spec import CampaignSpec, CampaignUnit

__all__ = ["CampaignStatus", "CampaignStore"]


@dataclass(frozen=True)
class CampaignStatus:
    """Progress snapshot of a campaign store."""

    name: str
    total: int
    completed: int
    failed: int
    failures: tuple[tuple[str, str], ...]   # (unit_id, error)

    @property
    def pending(self) -> int:
        return self.total - self.completed

    @property
    def is_complete(self) -> bool:
        return self.completed == self.total

    def describe(self) -> str:
        lines = [
            f"campaign {self.name}: {self.completed}/{self.total} units "
            f"completed, {self.pending} pending, {self.failed} failed"
        ]
        for unit_id, error in self.failures:
            lines.append(f"  failed {unit_id}: {error}")
        return "\n".join(lines)


class CampaignStore:
    """On-disk state of one campaign."""

    def __init__(self, directory: str | os.PathLike):
        # The directory is created by ``initialize`` (and lazily by cache
        # writes), never by construction: ``status`` on a mistyped path must
        # not scaffold an empty store.
        self.directory = Path(directory)
        self.cache = ResultCache(self.directory / "results")

    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> Path:
        return self.directory / "spec.json"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def ledger_path(self) -> Path:
        return self.directory / "ledger.jsonl"

    # ------------------------------------------------------------------ #
    def initialize(self, spec: CampaignSpec, units: tuple[CampaignUnit, ...]) -> None:
        """Record the spec snapshot and unit manifest before execution.

        A store only ever belongs to one spec; initialising with a different
        one is an error (use a fresh directory per campaign).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.spec_path.exists():
            stored = self.load_spec()
            if stored.to_dict() != spec.to_dict():
                raise CampaignError(
                    f"store {self.directory} already holds campaign "
                    f"{stored.name!r} with a different spec"
                )
        else:
            self.spec_path.write_text(
                json.dumps(spec.to_dict(), indent=2, sort_keys=True),
                encoding="utf-8",
            )
        manifest = {
            "name": spec.name,
            "units": [
                {
                    "index": unit.index,
                    "unit_id": unit.unit_id,
                    "key": unit.key,
                    "params": {k: _jsonable(v) for k, v in unit.params.items()},
                }
                for unit in units
            ],
        }
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
        )

    def _read_json(self, path: Path, missing: str, what: str) -> Any:
        """Read one JSON document, mapping IO failures to campaign errors."""
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CampaignError(missing) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable {what}: {exc}") from exc

    def load_spec(self) -> CampaignSpec:
        """The spec snapshot the store was initialised with."""
        data = self._read_json(
            self.spec_path,
            f"{self.directory} is not a campaign store (no spec.json)",
            "spec snapshot",
        )
        return CampaignSpec.from_dict(data)

    def load_manifest(self) -> list[dict[str, Any]]:
        data = self._read_json(
            self.manifest_path,
            f"{self.directory} has no manifest; run the campaign first",
            "manifest",
        )
        return data["units"]

    # ------------------------------------------------------------------ #
    def record(self, unit: CampaignUnit, error: str | None = None) -> None:
        """Append one attempt outcome to the ledger."""
        entry = {
            "unit_id": unit.unit_id,
            "key": unit.key,
            "status": "ok" if error is None else "failed",
        }
        if error is not None:
            entry["error"] = error
        with self.ledger_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def ledger_entries(self) -> list[dict[str, Any]]:
        """All ledger entries in append order (torn tail lines skipped)."""
        if not self.ledger_path.exists():
            return []
        entries = []
        for line in self.ledger_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue        # torn write from a killed campaign
        return entries

    # ------------------------------------------------------------------ #
    def status(self) -> CampaignStatus:
        """Progress against the manifest, from cache + ledger state."""
        spec = self.load_spec()
        manifest = self.load_manifest()
        last_error: dict[str, str] = {}
        for entry in self.ledger_entries():
            if entry.get("status") == "failed":
                last_error[entry["key"]] = entry.get("error", "unknown error")
            else:
                last_error.pop(entry["key"], None)
        completed = 0
        failures: list[tuple[str, str]] = []
        for unit in manifest:
            if unit["key"] in self.cache:
                completed += 1
            elif unit["key"] in last_error:
                failures.append((unit["unit_id"], last_error[unit["key"]]))
        return CampaignStatus(
            name=spec.name,
            total=len(manifest),
            completed=completed,
            failed=len(failures),
            failures=tuple(failures),
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value
