"""Sharded, streaming campaign execution: sweep size O(shard) in memory.

:func:`run_campaign` materialises every expanded unit and every result row
at once, which caps sweep size by RAM.  This module is the bounded-memory
path through the same data plane:

* :func:`iter_shards` partitions a spec's expansion into fixed-size
  :class:`Shard`\\ s **lazily** — it drives
  :meth:`CampaignSpec.iter_units`, so at no point does the full unit list
  exist in memory,
* :func:`stream_campaign` executes one shard at a time through the existing
  batch kernel, flushes the shard's rows to a columnar ``.npz`` artifact in
  the campaign store and folds them into :class:`~repro.campaign.reduce`
  online reducers before the next shard starts,
* the :class:`CampaignStore` shard manifest records each flush, so a killed
  campaign resumes at shard granularity: complete shards reload their
  artifact (zero per-unit cache probing), only incomplete shards re-execute,
* :func:`run_worker` + ``stream_campaign(workers=N)`` fan shards out across
  a pool of worker processes that coordinate purely through lease records
  in the shard ledger (:mod:`repro.campaign.leases`): each worker claims
  pending shards, flushes them through the same ``_flush_shard`` path, and
  the coordinator's finalize pass doubles as the *reclaimer* — it reloads
  completed shard artifacts in shard order and re-executes whatever a
  crashed worker left unfinished, so a SIGKILL'd worker costs at most one
  shard of repeated work.

Equivalence contract
--------------------
Sharding changes *when* rows leave memory, never *what* they are.  Unit
keys, cached rows and the per-shard frames are exactly what the unsharded
runner produces, shard concatenation reproduces the unsharded campaign
frame bit-for-bit, and the sequential reducers make the streamed aggregate
bit-identical to reducing that frame in one pass (all pinned by the
sharding tests and ``benchmarks/test_bench_shard.py``).  Worker pools keep
the contract because aggregation never happens in workers: they only
populate shard artifacts (deterministic, content-addressed), and the
coordinator folds those artifacts in shard-index order exactly like a
serial run — so an N-worker run is bit-identical to the 1-worker run and
to the unsharded reduction.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..errors import ArtifactError, CampaignError, InjectedFault
from ..faults.plan import fault_point, install_fault_plan
from ..faults.retry import RetryPolicy
from ..frame import Frame, concat
from ..market.catalog import Catalog
from ..obs.trace import get_tracer
from ..parallel import ParallelConfig
from ..session.artifacts import ArtifactStore, digest_json
from ..session.columnar import frame_from_arrays, frame_to_arrays
from ..session.policy import ExecutionPolicy
from .aggregate import FrameAccumulator, annotate_row
from .leases import DEFAULT_LEASE_TTL, LeaseHeartbeat, LeaseLedger
from .reduce import FrameReducer
from .spec import CampaignSpec, CampaignUnit
from .store import CampaignStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..frame.plan import LazyFrame

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "Shard",
    "ShardOutcome",
    "StreamingCampaignResult",
    "iter_shards",
    "scan_shards",
    "stream_campaign",
    "resume_streaming",
    "run_worker",
    "execute_shard",
]

#: Default units per shard: large enough to keep the batch kernel saturated
#: and the per-shard bookkeeping negligible, small enough that a resident
#: shard (units + rows + frame) stays in the tens of megabytes.
DEFAULT_SHARD_SIZE = 1024


# --------------------------------------------------------------------------- #
# Shard planning
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Shard:
    """One contiguous window of a campaign expansion."""

    index: int
    start: int
    units: tuple[CampaignUnit, ...]

    @property
    def stop(self) -> int:
        return self.start + len(self.units)

    @property
    def n_units(self) -> int:
        return len(self.units)

    def keys_digest(self) -> str:
        """Short content digest of the shard's unit keys, in order.

        Folded into the shard manifest so ``resume`` detects a store whose
        spec snapshot no longer matches the recorded shards (e.g. a catalog
        change between runs) instead of trusting stale artifacts.
        """
        return digest_json([unit.key for unit in self.units])[:16]

    def artifact_key(self) -> str:
        """Content-hash key of the shard's columnar frame artifact."""
        return digest_json(
            {
                "shard": self.index,
                "start": self.start,
                "keys": [unit.key for unit in self.units],
            }
        )


def iter_shards(
    spec: CampaignSpec,
    catalog: Catalog | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Iterator[Shard]:
    """Lazily partition a spec's expansion into fixed-size shards.

    Only one shard's units are resident at a time; memory is O(shard_size)
    plus the duplicate-detection key set (64 hex chars per unit).
    """
    if shard_size < 1:
        raise CampaignError(f"shard_size must be >= 1, got {shard_size}")
    window: list[CampaignUnit] = []
    index = 0
    start = 0
    for unit in spec.iter_units(catalog):
        window.append(unit)
        if len(window) == shard_size:
            yield Shard(index=index, start=start, units=tuple(window))
            index += 1
            start += len(window)
            window.clear()
    if window:
        yield Shard(index=index, start=start, units=tuple(window))


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardOutcome:
    """Bookkeeping of one executed (or reloaded) shard."""

    index: int
    start: int
    n_units: int
    n_rows: int
    cache_hits: int
    simulated: int
    failures: tuple[tuple[str, str], ...]  # (unit_id, error)
    artifact_key: str
    reloaded: bool  # served wholesale from the artifact
    # Telemetry (observability only — never read back by the data plane):
    # simulation-kernel seconds, frame-assembly seconds, flushed array bytes.
    kernel_s: float = 0.0
    assembly_s: float = 0.0
    flush_bytes: int = 0
    #: Units of this shard excluded as quarantined poison units — they are
    #: accounted as resolved (not pending), which is what lets a degraded
    #: campaign converge instead of re-executing its poison forever.
    quarantined: int = 0

    @property
    def is_complete(self) -> bool:
        return self.n_rows + self.quarantined == self.n_units


@dataclass(frozen=True)
class StreamingCampaignResult:
    """Outcome of one :func:`stream_campaign` invocation.

    Unlike :class:`~repro.campaign.runner.CampaignResult` there is no
    resident campaign frame — rows live in the store's per-shard ``.npz``
    artifacts, and :attr:`aggregate` carries the streamed column summary
    (count / sum / mean / min / max / var per numeric column).
    :meth:`iter_frames` re-streams the rows shard by shard;
    :meth:`frame` materialises them all (only do that at sizes where the
    unsharded runner would have been fine too).
    """

    total_units: int
    shard_size: int
    cache_hits: int
    simulated: int
    failures: tuple[tuple[str, str], ...]  # (unit_id, error)
    shards: tuple[ShardOutcome, ...]
    aggregate: Frame
    store_directory: str
    #: Worker processes the run fanned out across (1 = serial streaming).
    #: Purely bookkeeping — results are bit-identical for any worker count.
    n_workers: int = 1
    #: Poison units excluded via ``quarantine.jsonl``: ``(unit_id, error)``.
    quarantined: tuple[tuple[str, str], ...] = ()

    @property
    def completed(self) -> int:
        return sum(shard.n_rows for shard in self.shards)

    @property
    def total_shards(self) -> int:
        return len(self.shards)

    @property
    def is_complete(self) -> bool:
        return self.completed == self.total_units

    @property
    def status(self) -> str:
        """``complete``, ``degraded`` (all but quarantined), or ``partial``."""
        if self.is_complete:
            return "complete"
        if self.quarantined and (
            self.completed + len(self.quarantined) >= self.total_units
        ):
            return "degraded"
        return "partial"

    def describe(self) -> str:
        lines = [
            f"{self.total_units} units in {self.total_shards} shards "
            f"(shard_size={self.shard_size}): {self.cache_hits} cached, "
            f"{self.simulated} simulated, {len(self.failures)} failed "
            f"({self.completed} rows in {self.store_directory})"
        ]
        if self.quarantined:
            lines.append(
                f"  status {self.status}: {len(self.quarantined)} "
                "unit(s) quarantined"
            )
            for unit_id, error in self.quarantined:
                lines.append(f"  quarantined {unit_id}: {error}")
        for unit_id, error in self.failures:
            lines.append(f"  failed {unit_id}: {error}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    def _shard_store(self) -> ArtifactStore:
        return CampaignStore(self.store_directory).shard_store

    def iter_frames(self) -> Iterator[Frame]:
        """Yield each shard's frame from its artifact, one at a time."""
        store = self._shard_store()
        for shard in self.shards:
            if shard.n_rows == 0:
                continue
            frame = _load_shard_frame(store, shard.artifact_key)
            if frame is None:
                raise CampaignError(
                    f"shard {shard.index} artifact is missing from "
                    f"{self.store_directory}; re-run the campaign"
                )
            yield frame

    def frame(self) -> Frame:
        """The full campaign frame, concatenated from the shard artifacts.

        Materialises every row — O(plan) memory, exactly what streaming
        avoids — so reserve this for sweep sizes the unsharded runner could
        also hold.  The result is bit-identical to the unsharded
        :attr:`CampaignResult.frame` of the same spec.
        """
        return concat(list(self.iter_frames()))

    def lazy_frame(self):
        """A lazy scan over the shard artifacts; see :func:`scan_shards`.

        Post-campaign analysis (Table-1 summaries, figure inputs) filters
        and aggregates through the plan optimizer without materialising
        the campaign: predicates push into each shard's ``.npz`` load, so
        only matching row ranges of the needed columns are ever read.
        ``collect()`` output is bit-identical to running the same chain
        eagerly on :meth:`frame`.
        """
        return scan_shards(self.store_directory)

    def write_csv(self, path: str | os.PathLike) -> int:
        """Stream the campaign rows to a CSV file, one shard at a time.

        Returns the number of rows written.  Memory stays O(shard); the
        shard schemas must agree (same spec ⇒ same columns).
        """
        from ..frame.csvio import frame_to_csv_text

        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        path = Path(path)
        header: list[str] | None = None
        rows = 0
        with path.open("w", encoding="utf-8", newline="") as handle:
            for frame in self.iter_frames():
                text = frame_to_csv_text(frame)
                if header is None:
                    header = frame.columns
                    handle.write(text)
                else:
                    if frame.columns != header:
                        raise CampaignError(
                            "shard schemas differ; use frame() to "
                            "concatenate with union-of-columns semantics"
                        )
                    handle.write(text.split("\n", 1)[1])
                rows += len(frame)
        return rows


# --------------------------------------------------------------------------- #
# Streaming execution
# --------------------------------------------------------------------------- #
def _jsonable_quantiles(reducer: FrameReducer) -> dict[str, dict[str, float | None]]:
    """Per-column quantile snapshots, JSON-clean for event emission.

    Non-finite estimates become ``None`` (strict-JSON ``null``) and columns
    with no finite estimate at all are dropped — they carry no signal for
    ``campaign watch`` and would dominate the event line otherwise.
    """
    snapshot: dict[str, dict[str, float | None]] = {}
    for name in reducer.columns:
        estimates = reducer.quantile_snapshot(name)
        cleaned = {
            label: (None if value != value else value)
            for label, value in estimates.items()
        }
        if any(value is not None for value in cleaned.values()):
            snapshot[name] = cleaned
    return snapshot


def _load_shard_frame(store: ArtifactStore, key: str) -> Frame | None:
    """Rebuild one shard frame from its artifact; ``None`` on a miss."""
    fault_point("artifact.read", ctx=key)
    payload = store.get(key)
    if payload is None:
        return None
    arrays = store.get_arrays(key)
    if arrays is None:
        return None
    return frame_from_arrays(payload["columns"], arrays)


def scan_shards(store_dir: str | os.PathLike) -> "LazyFrame":
    """A lazy plan over every completed shard artifact under ``store_dir``.

    Reads the shard ledger (not the artifacts), builds one pushdown-capable
    ``.npz`` scan per non-empty shard in shard-index order, and concatenates
    them lazily — so ``scan_shards(d).filter(col("power_100") > 100).collect()``
    streams each shard's sidecar chunk-wise, reading only the predicate and
    output columns, and never holds more than one chunk plus the survivors.
    Collecting with no plan steps is bit-identical to
    :meth:`StreamingCampaignResult.frame`.
    """
    from ..frame.plan import LazyFrame, concat_lazy, scan_npz

    store = CampaignStore(store_dir)
    store.load_spec()  # a missing/foreign directory errors, not an empty plan
    shard_store = store.shard_store
    scans: list[LazyFrame] = []
    entries = store.shard_entries()
    for index in sorted(entries):
        entry = entries[index]
        if entry.get("n_rows", 0) == 0:
            continue
        artifact_key = entry.get("artifact")
        payload = shard_store.get(artifact_key) if isinstance(artifact_key, str) else None
        if payload is None:
            raise CampaignError(
                f"shard {index} artifact is missing from {os.fspath(store_dir)}; "
                "re-run the campaign"
            )
        sidecar = shard_store.sidecar_path(artifact_key)
        if not sidecar.exists():
            raise CampaignError(
                f"shard {index} columnar sidecar is missing from "
                f"{os.fspath(store_dir)}; re-run the campaign"
            )
        scans.append(scan_npz(sidecar, payload["columns"], label=f"shard{index}"))
    return concat_lazy(scans)


def _tear_sidecar(store: ArtifactStore, key: str, fraction: float) -> None:
    """Truncate an artifact's ``.npz`` sidecar (partial-write fault)."""
    sidecar = store.sidecar_path(key)
    if sidecar.exists():
        data = sidecar.read_bytes()
        sidecar.write_bytes(data[: max(1, int(len(data) * fraction))])


def _execute_pending(
    pending: list[CampaignUnit],
    shard: Shard,
    store: CampaignStore,
    config: ParallelConfig,
    batch: bool,
    catalog: Catalog | None,
    retry: RetryPolicy | None,
    rows_by_key: dict[str, dict],
) -> tuple[list[tuple[str, str]], int]:
    """Run the shard's missing units with per-unit retry rounds.

    Successful rows land in ``rows_by_key`` and the unit cache; every
    attempt (retries included) is appended to the ledger in one batch.
    Returns the surviving failures (``(unit_id, error)``) and the number of
    units quarantined *by this call* — units that still failed after
    ``retry.max_attempts`` rounds, which are recorded in
    ``quarantine.jsonl`` and excluded from future passes.  With
    ``retry=None`` this is exactly the historical single-round behaviour.
    """
    from .runner import dispatch_simulations

    by_key = {unit.key: unit for unit in shard.units}
    ledger: list[tuple[CampaignUnit, str | None]] = []
    errors: dict[str, str] = {}
    attempts: dict[str, int] = {}
    to_run = list(pending)
    round_no = 0
    retry_budget = retry.shard_retry_budget if retry is not None else 0
    while to_run:
        outcomes = dispatch_simulations(to_run, config, batch, catalog)
        failed_units: list[CampaignUnit] = []
        for key, row, error in outcomes:
            unit = by_key[key]
            attempts[key] = attempts.get(key, 0) + 1
            if error is None:
                store.cache.put(key, row)
                rows_by_key[key] = row
                errors.pop(key, None)
            else:
                errors[key] = error
                failed_units.append(unit)
            ledger.append((unit, error))
        round_no += 1
        if retry is None or not failed_units or round_no >= retry.max_attempts:
            break
        if retry_budget is not None:
            if retry_budget <= 0:
                break
            failed_units = failed_units[: retry_budget]
            retry_budget -= len(failed_units)
        delay = retry.delay(round_no, salt=f"shard{shard.index}")
        if delay > 0:
            time.sleep(delay)
        to_run = failed_units
    store.record_many(ledger)

    failures: list[tuple[str, str]] = []
    n_quarantined = 0
    for key, error in errors.items():
        unit = by_key[key]
        failures.append((unit.unit_id, error))
        if retry is not None and attempts.get(key, 0) >= retry.max_attempts:
            store.record_quarantine(unit, error, attempts[key])
            n_quarantined += 1
    return failures, n_quarantined


def _flush_shard(
    shard: Shard,
    store: CampaignStore,
    config: ParallelConfig,
    batch: bool,
    catalog: Catalog | None,
    budget: int | None,
    retry: RetryPolicy | None = None,
    quarantined: set[str] | None = None,
) -> tuple[ShardOutcome, Frame]:
    """Execute one shard's missing units and persist its frame artifact.

    ``budget`` bounds the number of *new* simulations (``None`` = no bound);
    the caller decrements it by the returned outcome's ``simulated`` and
    ``failures``.  ``retry`` enables per-unit retry rounds with quarantine
    on exhaustion; ``quarantined`` is the live set of poison-unit keys —
    members are skipped outright, and keys this flush quarantines are added
    to it so later shards in the same pass see them immediately.
    """
    tracer = get_tracer()
    with tracer.span("campaign.shard", index=shard.index, units=shard.n_units) as span:
        cache = store.cache
        rows_by_key: dict[str, dict] = {}
        pending: list[CampaignUnit] = []
        n_quarantined = 0
        for unit in shard.units:
            if quarantined is not None and unit.key in quarantined:
                n_quarantined += 1
                continue
            row = cache.get(unit.key)
            if row is not None:
                rows_by_key[unit.key] = row
            else:
                pending.append(unit)
        cache_hits = len(rows_by_key)

        if budget is not None:
            pending = pending[:budget]

        failures: list[tuple[str, str]] = []
        kernel_s = 0.0
        if pending:
            kernel_start = time.perf_counter()
            failures, newly_quarantined = _execute_pending(
                pending, shard, store, config, batch, catalog, retry, rows_by_key
            )
            kernel_s = time.perf_counter() - kernel_start
            n_quarantined += newly_quarantined
            if quarantined is not None and newly_quarantined:
                quarantined.update(store.quarantine_keys())

        assembly_start = time.perf_counter()
        accumulator = FrameAccumulator()
        for unit in shard.units:
            row = rows_by_key.get(unit.key)
            if row is not None:
                accumulator.add_row(annotate_row(row, unit))
        frame = accumulator.to_frame()
        assembly_s = time.perf_counter() - assembly_start

        artifact_key = shard.artifact_key()
        meta, arrays = frame_to_arrays(frame)
        fault_rule = fault_point("shard.flush", ctx=f"shard{shard.index}")
        store.shard_store.put(
            artifact_key, {"columns": meta, "n_rows": len(frame)}, arrays=arrays
        )
        # Checksum of the *intended* bytes, taken before any injected
        # truncation below — so a torn flush records a checksum its artifact
        # cannot match, which is exactly how the reload path catches it.
        checksum = store.shard_store.sidecar_digest(artifact_key)
        if fault_rule is not None and fault_rule.kind == "partial_write":
            _tear_sidecar(store.shard_store, artifact_key, fault_rule.fraction)
        flush_bytes = int(sum(array.nbytes for array in arrays.values()))
        span.set("cache_hits", cache_hits)
        span.set("simulated", len(pending) - len(failures))
        span.set("kernel_s", kernel_s)
        span.set("assembly_s", assembly_s)
        span.set("flush_bytes", flush_bytes)
        outcome = ShardOutcome(
            index=shard.index,
            start=shard.start,
            n_units=shard.n_units,
            n_rows=len(frame),
            cache_hits=cache_hits,
            simulated=len(pending) - len(failures),
            failures=tuple(failures),
            artifact_key=artifact_key,
            reloaded=False,
            kernel_s=kernel_s,
            assembly_s=assembly_s,
            flush_bytes=flush_bytes,
            quarantined=n_quarantined,
        )
    entry: dict[str, Any] = {
        "index": shard.index,
        "start": shard.start,
        "count": shard.n_units,
        "n_rows": len(frame),
        "failed": len(failures),
        "keys_digest": shard.keys_digest(),
        "artifact": artifact_key,
        "status": "complete" if outcome.is_complete else "partial",
    }
    if checksum is not None:
        entry["checksum"] = checksum
    if n_quarantined:
        entry["quarantined"] = n_quarantined
    store.record_shard(entry)
    return outcome, frame


def _reload_shard(
    shard: Shard,
    store: CampaignStore,
    entry: dict[str, Any],
    quarantined_keys: set[str] | None = None,
) -> tuple[ShardOutcome, Frame] | None:
    """Serve a recorded complete shard from its artifact, if still valid."""
    if entry.get("status") != "complete":
        return None
    if entry.get("keys_digest") != shard.keys_digest():
        return None  # spec/catalog drifted under the store
    artifact_key = entry.get("artifact")
    if not isinstance(artifact_key, str):
        return None
    # Completeness is judged against the *live* quarantine set, not the
    # count the record froze in: deleting ``quarantine.jsonl`` un-poisons
    # the units, the row count stops adding up, and the shard re-executes
    # exactly the units it skipped (the rest are unit-cache hits).
    live = store.quarantine_keys() if quarantined_keys is None else quarantined_keys
    quarantined = (
        sum(1 for unit in shard.units if unit.key in live) if live else 0
    )
    checksum = entry.get("checksum")
    try:
        if isinstance(checksum, str):
            # Verify content before trusting: a torn/bit-rotted artifact is
            # re-executed from the unit cache, never adopted.
            if store.shard_store.sidecar_digest(artifact_key) != checksum:
                return None
        frame = _load_shard_frame(store.shard_store, artifact_key)
    except (ArtifactError, CampaignError, InjectedFault):
        return None  # corrupt artifact: re-execute the shard
    if frame is None or len(frame) + quarantined != shard.n_units:
        return None
    outcome = ShardOutcome(
        index=shard.index,
        start=shard.start,
        n_units=shard.n_units,
        n_rows=len(frame),
        cache_hits=len(frame),
        simulated=0,
        failures=(),
        artifact_key=artifact_key,
        reloaded=True,
        quarantined=quarantined,
    )
    return outcome, frame


def _recover_shard(
    shard: Shard, store: CampaignStore
) -> tuple[ShardOutcome, Frame] | None:
    """Adopt a flushed-but-unrecorded shard artifact: reload, don't re-run.

    ``_flush_shard`` writes the ``.npz`` artifact *before* appending the
    shard's result record, so a worker killed in that window leaves a
    complete artifact the ledger doesn't know about.  The artifact key is a
    content hash over the shard's unit keys, so a full-length frame found
    under ``shard.artifact_key()`` **is** this shard's result — appending
    the missing complete record recovers it without re-executing a single
    unit.  (Partial artifacts fail the length check and re-execute through
    the normal path; their missing units still hit the unit cache.)
    """
    artifact_key = shard.artifact_key()
    try:
        frame = _load_shard_frame(store.shard_store, artifact_key)
    except (ArtifactError, CampaignError, InjectedFault):
        return None
    if frame is None or len(frame) != shard.n_units:
        return None
    entry: dict[str, Any] = {
        "index": shard.index,
        "start": shard.start,
        "count": shard.n_units,
        "n_rows": len(frame),
        "failed": 0,
        "keys_digest": shard.keys_digest(),
        "artifact": artifact_key,
        "status": "complete",
        "recovered": True,
    }
    # The artifact just round-tripped through a full parse, so its current
    # bytes are trustworthy — checksum them for every later reload.
    checksum = store.shard_store.sidecar_digest(artifact_key)
    if checksum is not None:
        entry["checksum"] = checksum
    store.record_shard(entry)
    outcome = ShardOutcome(
        index=shard.index,
        start=shard.start,
        n_units=shard.n_units,
        n_rows=len(frame),
        cache_hits=shard.n_units,
        simulated=0,
        failures=(),
        artifact_key=artifact_key,
        reloaded=True,
    )
    return outcome, frame


# --------------------------------------------------------------------------- #
# Multi-worker execution
# --------------------------------------------------------------------------- #
def _shard_recorded_complete(shard: Shard, entry: dict[str, Any] | None) -> bool:
    """Whether the ledger already holds a matching complete result record."""
    return (
        entry is not None
        and entry.get("status") == "complete"
        and entry.get("keys_digest") == shard.keys_digest()
    )


def execute_shard(
    store: CampaignStore,
    shard: Shard,
    batch: bool = True,
    catalog: Catalog | None = None,
    retry: RetryPolicy | None = None,
) -> ShardOutcome:
    """Bring one shard to "complete artifact + result record", idempotently.

    The single-shard primitive behind the service scheduler's pool workers:
    each dispatched :class:`Shard` goes through exactly the probes the
    worker sweep loop uses — serve a recorded complete result, adopt a
    flushed-but-unrecorded artifact, else execute and flush through the
    same serial :func:`_flush_shard` path every other runner shares.  The
    resulting artifact is content-addressed by the shard's unit keys, so
    *who* executed it (and interleaved with what) can never change the
    bytes a later reload sees — which is what keeps scheduler-interleaved
    jobs bit-identical to their clean serial runs.
    """
    entry = store.shard_entries().get(shard.index)
    if _shard_recorded_complete(shard, entry):
        reloaded = _reload_shard(shard, store, entry)
        if reloaded is not None:
            outcome, _ = reloaded
            return outcome
    recovered = _recover_shard(shard, store)
    if recovered is not None:
        outcome, _ = recovered
        return outcome
    outcome, _ = _flush_shard(
        shard,
        store,
        ParallelConfig(backend="serial"),
        batch,
        catalog,
        None,
        retry=retry,
        quarantined=store.quarantine_keys(),
    )
    return outcome


def run_worker(
    store_dir: str | os.PathLike,
    worker_id: str,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    batch: bool | None = None,
    policy: ExecutionPolicy | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: float = 0.05,
    max_sweeps: int | None = None,
    retry: RetryPolicy | None = None,
    handle_sigterm: bool = False,
) -> int:
    """Claim-and-execute loop of one campaign worker; returns shards flushed.

    The worker repeatedly sweeps the shard layout of an initialised
    streaming store (``initialize_streaming`` must have run), and for each
    shard that has no complete result record: first probes for a
    flushed-but-unrecorded artifact to adopt (:func:`_recover_shard`), then
    tries to claim the shard through the lease ledger and execute it via
    the same ``_flush_shard`` path a serial run uses.  Coordination is
    entirely through ``shards.jsonl`` — workers never talk to each other —
    so any number of ``spectrends campaign worker`` processes (or the pool
    ``stream_campaign(workers=N)`` spawns) can share one store.

    Termination: the loop ends once every shard is either complete or was
    already attempted by *this* worker (a failing shard is attempted at
    most once per worker; the coordinator's finalize pass owns retries).
    While pending shards are held by other live workers, the loop polls —
    if such a holder dies, its lease invalidates (dead pid) and the shard
    is reclaimed on the next sweep, which is what bounds a SIGKILL'd
    worker's loss to one shard.  ``max_sweeps`` bounds the polling for
    tests; ``None`` waits as long as a live foreign claim exists.

    While a claimed shard flushes, a :class:`~repro.campaign.leases
    .LeaseHeartbeat` renews the lease from a background thread — a slow
    shard keeps its claim indefinitely, while a *hung* worker (alive pid,
    no heartbeats) lets its deadline lapse and the shard becomes
    reclaimable.  ``handle_sigterm=True`` converts SIGTERM into a graceful
    stop: the in-flight shard finishes and records its result, then the
    loop exits cleanly with a ``worker_sigterm`` event (the CLI's
    ``campaign worker`` enables this).
    """
    store = CampaignStore(store_dir)
    spec = store.load_spec()
    shard_size = store.stored_shard_size()
    if shard_size is None:
        raise CampaignError(
            f"{store.directory} has no shard layout; initialise it with a "
            "streaming run before attaching workers"
        )
    if policy is not None:
        parallel = policy.parallel_config() if parallel is None else parallel
        if batch is None:
            batch = policy.use_batch_kernel
        if retry is None:
            retry = policy.retry
    if batch is None:
        batch = True
    config = parallel or ParallelConfig(backend="serial")
    if config.backend != "serial":
        config = replace(config, serial_threshold=0)

    stopping = threading.Event()
    previous_handler: Any = None
    if handle_sigterm:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda signum, frame: stopping.set()
        )

    ledger = LeaseLedger(store, worker_id, ttl=lease_ttl)
    attempted: set[int] = set()
    executed = 0
    sweeps = 0
    store.record_event("worker_start", worker=worker_id, pid=os.getpid())
    tracer = get_tracer()
    try:
        with tracer.span("campaign.worker", worker=worker_id):
            while not stopping.is_set():
                sweeps += 1
                recorded = store.shard_entries()
                quarantined = store.quarantine_keys()
                waiting = False
                progressed = False
                for shard in iter_shards(spec, catalog, shard_size=shard_size):
                    if stopping.is_set():
                        break
                    if _shard_recorded_complete(shard, recorded.get(shard.index)):
                        continue
                    if shard.index in attempted:
                        continue
                    if _recover_shard(shard, store) is not None:
                        progressed = True
                        continue
                    lease = ledger.try_claim(shard.index)
                    if lease is None:
                        waiting = True  # a live peer holds it; revisit next sweep
                        continue
                    attempted.add(shard.index)
                    try:
                        # Renew the lease while the flush runs: slow-but-alive
                        # keeps the claim; hung (no heartbeats) loses it at TTL.
                        with LeaseHeartbeat(ledger, shard.index):
                            outcome, frame = _flush_shard(
                                shard,
                                store,
                                config,
                                batch,
                                catalog,
                                None,
                                retry=retry,
                                quarantined=quarantined,
                            )
                    except BaseException:
                        ledger.release(shard.index)  # hand it back, then die loudly
                        raise
                    del frame
                    executed += 1
                    progressed = True
                    store.record_event(
                        "worker_shard",
                        worker=worker_id,
                        index=outcome.index,
                        n_rows=outcome.n_rows,
                        cache_hits=outcome.cache_hits,
                        simulated=outcome.simulated,
                        failed=len(outcome.failures),
                        quarantined=outcome.quarantined,
                    )
                if stopping.is_set() or not waiting:
                    break
                if not progressed:
                    if max_sweeps is not None and sweeps >= max_sweeps:
                        break
                    time.sleep(poll_interval)
    finally:
        if handle_sigterm:
            signal.signal(signal.SIGTERM, previous_handler)
    if stopping.is_set():
        # Graceful SIGTERM: the in-flight shard completed above (its result
        # record supersedes the lease), so exiting here leaves no torn state.
        store.record_event(
            "worker_sigterm", worker=worker_id, shards=executed, pid=os.getpid()
        )
    store.record_event("worker_done", worker=worker_id, shards=executed)
    return executed


def _worker_entry(
    store_dir: str,
    worker_id: str,
    batch: bool,
    lease_ttl: float,
    catalog: Catalog | None,
) -> None:
    """Module-level :class:`multiprocessing.Process` target for the pool."""
    run_worker(
        store_dir,
        worker_id,
        catalog=catalog,
        batch=batch,
        lease_ttl=lease_ttl,
        handle_sigterm=True,
    )


def _run_worker_pool(
    store: CampaignStore,
    n_workers: int,
    batch: bool,
    lease_ttl: float,
    catalog: Catalog | None,
) -> None:
    """Fan shards out across ``n_workers`` processes and wait for them.

    Workers that die (crash, OOM-kill, SIGKILL) are *not* respawned — the
    caller's finalize pass reclaims whatever they left behind, so a partial
    pool still converges; the exit codes land in the event log for
    ``campaign watch`` and post-mortems.
    """
    import multiprocessing

    store.record_event("pool_start", workers=n_workers)
    processes = [
        multiprocessing.Process(
            target=_worker_entry,
            args=(str(store.directory), f"w{index}", batch, lease_ttl, catalog),
            name=f"campaign-worker-{index}",
        )
        for index in range(n_workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    store.record_event(
        "pool_join",
        workers=n_workers,
        exitcodes=[process.exitcode for process in processes],
    )


def stream_campaign(
    spec: CampaignSpec,
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    shard_size: int | None = None,
    max_units: int | None = None,
    max_shards: int | None = None,
    batch: bool | None = None,
    policy: ExecutionPolicy | None = None,
    progress: Callable[[ShardOutcome, int], None] | None = None,
    workers: int | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    results_dir: str | os.PathLike | None = None,
    retry: RetryPolicy | None = None,
) -> StreamingCampaignResult:
    """Execute a campaign shard by shard with bounded resident memory.

    The expansion is consumed lazily, each shard's rows are flushed to a
    columnar artifact before the next shard starts, and aggregates are
    folded through online reducers — peak memory is O(shard_size), not
    O(plan).  Re-invoking over the same store resumes at shard granularity:
    complete shards reload their artifact wholesale, partial shards
    re-execute only their missing units (per-unit cache hits keep repeats
    cheap).

    ``max_units`` bounds new simulation *attempts* across the whole run
    (failures count — matching :func:`~repro.campaign.runner.execute_units`);
    once spent, later shards are still visited cache-only so the result
    stays a full progress report.  ``max_shards`` stops after that many
    shards entirely (smoke runs; also how tests emulate a killed campaign).
    ``progress`` is invoked after every shard with its outcome and the
    total shard count (the CLI's streaming status line).  A ``policy``
    supplies ``parallel``/``batch``/``shard_size``/``workers`` defaults;
    explicit arguments win.

    ``workers=N`` (N > 1) fans shards out across a pool of N worker
    processes coordinating through lease records in the shard ledger; the
    serial pass below then runs as the coordinator/reclaimer — it reloads
    every worker-completed artifact in shard order and re-executes anything
    a crashed worker left behind, so the result (frames *and* aggregate) is
    bit-identical to the serial streamed run for any worker count.  Worker
    pools execute whole shards concurrently, so they are incompatible with
    the ``max_units``/``max_shards`` caps.  ``results_dir`` redirects the
    unit-result cache (the campaign service points several job stores at
    one shared cache for cross-client dedup).

    ``retry`` (or ``policy.retry``) enables per-unit retry rounds with
    capped exponential backoff and poison-unit quarantine: a unit that
    fails ``max_attempts`` rounds is recorded in the store's
    ``quarantine.jsonl``, excluded from every later pass, and the result's
    :attr:`~StreamingCampaignResult.status` reports ``degraded`` instead of
    blocking completion.  ``policy.faults`` installs a
    :class:`~repro.faults.FaultPlan` for the duration of the run (chaos
    testing; the previous plan is restored on exit).
    """

    def _run() -> StreamingCampaignResult:
        return _stream_campaign(
            spec,
            store_dir,
            parallel=parallel,
            catalog=catalog,
            shard_size=shard_size,
            max_units=max_units,
            max_shards=max_shards,
            batch=batch,
            policy=policy,
            progress=progress,
            workers=workers,
            lease_ttl=lease_ttl,
            results_dir=results_dir,
            retry=retry,
        )

    if policy is not None and policy.faults is not None:
        previous = install_fault_plan(policy.faults)
        try:
            return _run()
        finally:
            install_fault_plan(previous)
    return _run()


def _stream_campaign(
    spec: CampaignSpec,
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    shard_size: int | None = None,
    max_units: int | None = None,
    max_shards: int | None = None,
    batch: bool | None = None,
    policy: ExecutionPolicy | None = None,
    progress: Callable[[ShardOutcome, int], None] | None = None,
    workers: int | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    results_dir: str | os.PathLike | None = None,
    retry: RetryPolicy | None = None,
) -> StreamingCampaignResult:
    """The streaming pass behind :func:`stream_campaign` (fault scope set)."""
    if policy is not None:
        parallel = policy.parallel_config() if parallel is None else parallel
        if batch is None:
            batch = policy.use_batch_kernel
        if shard_size is None:
            shard_size = policy.effective_shard_size
        if retry is None:
            retry = policy.retry
        if workers is None and max_units is None and max_shards is None:
            # Policy-driven fan-out only when no caps are in play: capped
            # runs (smoke tests, budgeted resumes) stay serial rather than
            # erroring, since the caps are per-run, not per-worker.
            workers = policy.campaign_workers
    if batch is None:
        batch = True
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    if shard_size < 1:
        raise CampaignError(f"shard_size must be >= 1, got {shard_size}")
    n_workers = 1 if workers is None else int(workers)
    if n_workers < 1:
        raise CampaignError(f"workers must be >= 1, got {workers}")
    if n_workers > 1 and (max_units is not None or max_shards is not None):
        raise CampaignError(
            "workers > 1 executes whole shards concurrently and cannot "
            "honour max_units/max_shards caps; run those serially"
        )

    store = CampaignStore(store_dir, results_dir=results_dir)
    store.initialize_streaming(spec, shard_size)

    if n_workers > 1:
        # The pool populates shard artifacts; aggregation happens only in
        # the serial pass below, which keeps bit-identity trivially.
        _run_worker_pool(store, n_workers, batch, lease_ttl, catalog)

    config = parallel or ParallelConfig(backend="serial")
    if config.backend != "serial":
        # A campaign unit is a whole benchmark simulation; see execute_units
        # for why the executor's cheap-work serial threshold must not apply.
        config = replace(config, serial_threshold=0)

    total_units = spec.n_units
    n_shards = -(-total_units // shard_size)
    recorded = store.shard_entries()
    quarantined_keys = store.quarantine_keys()
    reducer = FrameReducer()
    outcomes: list[ShardOutcome] = []
    failures: list[tuple[str, str]] = []
    cache_hits = 0
    simulated = 0
    budget = max_units

    # Always-on telemetry: one compact event per shard into the store's
    # events.jsonl (this is what ``campaign watch`` tails), independent of
    # the opt-in span tracer.  Purely observational — nothing below reads
    # these back, so results stay bit-identical with or without them.
    store.record_event(
        "campaign_start",
        name=spec.name,
        n_units=total_units,
        n_shards=n_shards,
        shard_size=shard_size,
        workers=n_workers,
    )
    tracer = get_tracer()
    with tracer.span("campaign.stream", name=spec.name, n_shards=n_shards):
        for shard in iter_shards(spec, catalog, shard_size=shard_size):
            if max_shards is not None and shard.index >= max_shards:
                break
            shard_start = time.perf_counter()
            reloaded = _reload_shard(
                shard, store, recorded.get(shard.index, {}), quarantined_keys
            )
            if reloaded is None and not _shard_recorded_complete(
                shard, recorded.get(shard.index)
            ):
                # Reclaimer half of the worker protocol: a killed worker may
                # have flushed this shard's artifact without landing its
                # result record — adopt it instead of re-executing.
                reloaded = _recover_shard(shard, store)
            if reloaded is not None:
                outcome, frame = reloaded
            else:
                outcome, frame = _flush_shard(
                    shard,
                    store,
                    config,
                    batch,
                    catalog,
                    budget,
                    retry=retry,
                    quarantined=quarantined_keys,
                )
                if budget is not None:
                    # Attempts spend the budget, successful or not, mirroring
                    # the unsharded runner's pending[:max_units] semantics.
                    budget -= outcome.simulated + len(outcome.failures)
            outcomes.append(outcome)
            failures.extend(outcome.failures)
            cache_hits += outcome.cache_hits
            simulated += outcome.simulated
            reducer.update(frame)
            del frame  # the whole point: nothing accumulates
            wall_s = time.perf_counter() - shard_start
            store.record_event(
                "shard_flush",
                index=outcome.index,
                units=outcome.n_units,
                n_rows=outcome.n_rows,
                cache_hits=outcome.cache_hits,
                simulated=outcome.simulated,
                failed=len(outcome.failures),
                quarantined=outcome.quarantined,
                reloaded=outcome.reloaded,
                wall_s=wall_s,
                kernel_s=outcome.kernel_s,
                assembly_s=outcome.assembly_s,
                flush_bytes=outcome.flush_bytes,
                units_per_s=(outcome.n_units / wall_s) if wall_s > 0 else None,
                rows_total=reducer.n_rows,
                n_shards=n_shards,
                quantiles=_jsonable_quantiles(reducer),
            )
            if progress is not None:
                progress(outcome, n_shards)

    # Latest quarantine record per key: what the result reports as excluded.
    quarantine_records: dict[str, tuple[str, str]] = {}
    for entry in store.quarantine_entries():
        key = entry.get("key")
        if isinstance(key, str):
            quarantine_records[key] = (
                str(entry.get("unit_id", key[:16])),
                str(entry.get("error", "unknown error")),
            )
    store.record_event(
        "campaign_complete",
        name=spec.name,
        shards=len(outcomes),
        n_shards=n_shards,
        cache_hits=cache_hits,
        simulated=simulated,
        failed=len(failures),
        quarantined=len(quarantine_records),
        rows_total=reducer.n_rows,
    )
    return StreamingCampaignResult(
        total_units=total_units,
        shard_size=shard_size,
        cache_hits=cache_hits,
        simulated=simulated,
        failures=tuple(failures),
        shards=tuple(outcomes),
        aggregate=reducer.to_frame(),
        store_directory=str(store.directory),
        n_workers=n_workers,
        quarantined=tuple(quarantine_records.values()),
    )


def resume_streaming(
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    shard_size: int | None = None,
    max_units: int | None = None,
    max_shards: int | None = None,
    batch: bool | None = None,
    policy: ExecutionPolicy | None = None,
    progress: Callable[[ShardOutcome, int], None] | None = None,
    workers: int | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    retry: RetryPolicy | None = None,
) -> StreamingCampaignResult:
    """Continue an interrupted sharded campaign from its on-disk snapshot.

    The shard layout is read back from the store (falling back to
    ``shard_size``/policy for stores that predate it), so a resume
    partitions the expansion exactly as the interrupted run did — the
    precondition for shard-granular skipping.  ``workers=N`` resumes with a
    worker pool; completed shards reload, pending ones are claimed.
    """
    store = CampaignStore(store_dir)
    spec = store.load_spec()
    if shard_size is None:
        shard_size = store.stored_shard_size()
    return stream_campaign(
        spec,
        store_dir,
        parallel=parallel,
        catalog=catalog,
        shard_size=shard_size,
        max_units=max_units,
        max_shards=max_shards,
        batch=batch,
        policy=policy,
        progress=progress,
        workers=workers,
        lease_ttl=lease_ttl,
        retry=retry,
    )
