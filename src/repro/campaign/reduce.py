"""Online reducers: campaign aggregates without the full result set resident.

The sharded streaming runner flushes each shard's rows to disk before the
next shard starts, so nothing downstream may ever require every row at once.
:class:`OnlineMoments` maintains count / sum / mean / min / max / variance of
a value stream in O(1) state via Welford's recurrence, and
:class:`FrameReducer` applies one such accumulator per numeric column of the
campaign frame, shard by shard.

Determinism contract
--------------------
``update`` consumes values *sequentially in row order*.  Because one scalar
Welford step is performed per value, the sequence of floating-point
operations is a function of the value stream alone — where the shard
boundaries fall cannot change it.  A sharded campaign therefore produces
aggregates **bit-identical** to reducing the unsharded frame in one call
(pinned by the sharding tests), which is what lets the streaming path
replace the materialised frame without changing a single reported number.

:meth:`OnlineMoments.merge` additionally combines two independent
accumulators through the parallel (Chan et al.) update.  Merging is the
right tool when shards are reduced on different workers; it is numerically
stable but *not* bit-identical to the sequential order, so the campaign
data plane reduces sequentially and reserves ``merge`` for explicitly
parallel consumers.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ..frame import Frame
from ..obs.sketch import DEFAULT_QUANTILES, QuantileSketch, quantile_label

__all__ = ["OnlineMoments", "FrameReducer", "reduce_frame"]

#: Column kinds the reducer aggregates (strings and booleans are identity
#: columns, not measurements).
_NUMERIC_KINDS = ("float", "int")


class OnlineMoments:
    """Streaming count / sum / mean / min / max / variance of one value stream.

    State is five scalars (Welford's algorithm), so a reducer's memory cost
    is independent of how many values it has seen.
    """

    __slots__ = ("count", "total", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<OnlineMoments n={self.count} mean={self.mean!r} "
            f"min={self.minimum!r} max={self.maximum!r}>"
        )

    # ------------------------------------------------------------------ #
    def push(self, value: float) -> None:
        """Fold one value into the accumulator (Welford's recurrence)."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def update(self, values: Iterable[Any], mask: np.ndarray | None = None) -> None:
        """Fold a batch of values, skipping entries flagged by ``mask``.

        Values are consumed strictly in order, one Welford step each — see
        the module docstring for why this (and not a vectorized pass) is
        what makes sharded aggregates bit-identical to unsharded ones.
        """
        if isinstance(values, np.ndarray):
            values = values.tolist()
        if mask is None:
            for value in values:
                if value is not None:
                    self.push(value)
        else:
            for value, missing in zip(values, mask.tolist()):
                if not missing and value is not None:
                    self.push(value)

    def merge(self, other: "OnlineMoments") -> "OnlineMoments":
        """Combined accumulator of two independent streams (Chan et al.).

        Returns a new accumulator; neither input is modified.  Use for
        shards reduced on separate workers — the result is numerically
        stable but depends on the merge tree, unlike sequential ``update``.
        """
        merged = OnlineMoments()
        if self.count == 0:
            other._copy_into(merged)
            return merged
        if other.count == 0:
            self._copy_into(merged)
            return merged
        n = self.count + other.count
        delta = other.mean - self.mean
        merged.count = n
        merged.total = self.total + other.total
        merged.mean = self.mean + delta * (other.count / n)
        merged._m2 = self._m2 + other._m2 + delta * delta * (self.count * other.count / n)
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def _copy_into(self, target: "OnlineMoments") -> None:
        target.count = self.count
        target.total = self.total
        target.mean = self.mean
        target._m2 = self._m2
        target.minimum = self.minimum
        target.maximum = self.maximum

    # ------------------------------------------------------------------ #
    @property
    def variance(self) -> float | None:
        """Population variance (ddof=0); ``None`` before the first value."""
        if self.count == 0:
            return None
        return self._m2 / self.count

    def as_row(self) -> dict[str, Any]:
        """The accumulator as one summary-frame row."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": None if empty else self.total,
            "mean": None if empty else self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "var": self.variance,
        }


class FrameReducer:
    """One :class:`OnlineMoments` per numeric column, fed frame by frame.

    Columns are keyed by name in first-seen order; a column absent from a
    later frame (schema drift across shards) simply receives no values from
    it, mirroring the union-of-columns semantics of frame assembly.

    Alongside the moments, each column feeds a streaming
    :class:`repro.obs.sketch.QuantileSketch`, so the summary frame reports
    percentiles (``p50``/``p90``/``p99`` by default) without residency.
    The sketch shares the determinism contract: per-value sequential
    pushes, exact below its buffer threshold, compression at a count that
    is a function of the stream alone — shard boundaries cannot move an
    estimate.  Pass ``quantiles=()`` to skip sketching entirely.
    """

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self.quantiles = tuple(quantiles)
        self._reducers: dict[str, OnlineMoments] = {}
        self._sketches: dict[str, QuantileSketch] = {}
        self.n_rows = 0

    def __len__(self) -> int:
        return len(self._reducers)

    @property
    def columns(self) -> list[str]:
        return list(self._reducers)

    def __getitem__(self, name: str) -> OnlineMoments:
        return self._reducers[name]

    def sketch(self, name: str) -> QuantileSketch | None:
        """The quantile sketch for one column (``None`` if not sketching)."""
        return self._sketches.get(name)

    def update(self, frame: Frame) -> None:
        """Fold every numeric column of ``frame`` into its reducer."""
        self.n_rows += len(frame)
        for name in frame.columns:
            column = frame[name]
            if column.kind not in _NUMERIC_KINDS:
                continue
            reducer = self._reducers.get(name)
            if reducer is None:
                reducer = self._reducers[name] = OnlineMoments()
                if self.quantiles:
                    self._sketches[name] = QuantileSketch(self.quantiles)
            reducer.update(column.values, column.mask)
            sketch = self._sketches.get(name)
            if sketch is not None:
                sketch.update(column.values, column.mask)

    def merge(self, other: "FrameReducer") -> "FrameReducer":
        """Combined reducer of two independent streams (Chan et al. merge).

        Returns a new reducer; neither input is modified.  Like
        :meth:`OnlineMoments.merge` this is for shards reduced on separate
        workers — numerically stable but merge-tree-dependent, so the
        sequential data plane never calls it.
        """
        if self.quantiles != other.quantiles:
            from ..errors import StatsError

            raise StatsError("cannot merge reducers tracking different quantiles")
        merged = FrameReducer(self.quantiles)
        merged.n_rows = self.n_rows + other.n_rows
        names = list(self._reducers)
        names.extend(name for name in other._reducers if name not in self._reducers)
        for name in names:
            mine = self._reducers.get(name, OnlineMoments())
            theirs = other._reducers.get(name, OnlineMoments())
            merged._reducers[name] = mine.merge(theirs)
            if self.quantiles:
                mine_sk = self._sketches.get(name) or QuantileSketch(self.quantiles)
                theirs_sk = other._sketches.get(name) or QuantileSketch(self.quantiles)
                merged._sketches[name] = mine_sk.merge(theirs_sk)
        return merged

    def quantile_snapshot(self, name: str) -> dict[str, float | None]:
        """Current quantile estimates of one column (for event emission)."""
        sketch = self._sketches.get(name)
        if sketch is None:
            return {}
        return sketch.estimates()

    def to_frame(self) -> Frame:
        """The aggregate summary: one row per reduced column."""
        rows: dict[str, list] = {
            "column": [],
            "count": [],
            "sum": [],
            "mean": [],
            "min": [],
            "max": [],
            "var": [],
        }
        labels = [quantile_label(q) for q in self.quantiles]
        for label in labels:
            rows[label] = []
        for name, reducer in self._reducers.items():
            rows["column"].append(name)
            for field, value in reducer.as_row().items():
                rows[field].append(value)
            if labels:
                estimates = self._sketches[name].estimates()
                for label in labels:
                    value = estimates[label]
                    # Empty streams estimate NaN; report None like the
                    # other empty-accumulator fields.
                    rows[label].append(None if value != value else value)
        return Frame.from_dict(rows)


def reduce_frame(frame: Frame, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> Frame:
    """Aggregate summary of a fully materialised frame.

    This is the unsharded counterpart of streaming a :class:`FrameReducer`
    over shards: feeding the whole frame in one ``update`` performs the
    exact same sequence of scalar operations, so the two are bit-identical.
    """
    reducer = FrameReducer(quantiles)
    reducer.update(frame)
    return reducer.to_frame()
