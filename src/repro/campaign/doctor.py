"""Campaign-store health checks and repair: ``spectrends campaign doctor``.

A campaign store accumulates append-only logs and content-addressed
artifacts across crashes, kills and concurrent workers — all of which are
*designed* to leave recoverable debris (torn tails, unrecorded artifacts,
expired leases).  The doctor distinguishes that benign debris from real
damage:

==================  =======================================================
category            meaning
==================  =======================================================
``corrupt-lines``   unparseable lines *mid-file* in a JSONL log — not
                    explainable by a crash (torn tails are always last)
``torn-tail``       unparseable final line of a JSONL log — a killed
                    writer's signature; harmless but tidied by ``--repair``
``missing-artifact``  a complete shard record whose ``.npz``/JSON artifact
                    is gone — the shard silently re-executes on resume,
                    surfaced here so it isn't a surprise
``checksum-mismatch``  artifact bytes no longer match the checksum the
                    flush recorded — torn write or bit rot
``unreadable-artifact``  the artifact exists but cannot be parsed
``corrupt-orphan``  an artifact no shard record references *and* that does
                    not parse — a torn flush from a killed worker
``stale-lease``     a lease that is expired or whose holder is dead,
                    without a superseding result record
==================  =======================================================

Repairs never invent data: damaged shard records are superseded with a
``status: "damaged"`` entry (so the next ``resume`` re-executes the shard
from the unit cache), damaged artifacts and corrupt orphans are deleted,
corrupt log lines are dropped by an atomic rewrite, and stale leases get a
released (born-expired) successor.  *Adoptable* orphans — artifacts that
parse cleanly and that :func:`~repro.campaign.sharding._recover_shard`
would adopt on the next resume — are reported as notes and deliberately
left alone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..io.jsonl import dumps_line, read_jsonl_report
from .leases import Lease
from .store import CampaignStore

__all__ = ["DoctorIssue", "DoctorReport", "doctor_store"]


@dataclass
class DoctorIssue:
    """One problem the scan found, and what ``--repair`` did about it."""

    category: str
    detail: str
    action: str = ""  # empty until a repair is applied

    def describe(self) -> str:
        line = f"[{self.category}] {self.detail}"
        if self.action:
            line += f" -> {self.action}"
        return line


@dataclass
class DoctorReport:
    """Outcome of one doctor scan over a campaign store."""

    store_directory: str
    issues: list[DoctorIssue] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    repair: bool = False

    @property
    def healthy(self) -> bool:
        return not self.issues

    @property
    def unresolved(self) -> list[DoctorIssue]:
        return [issue for issue in self.issues if not issue.action]

    def describe(self) -> str:
        lines = [f"doctor: {self.store_directory}"]
        if self.healthy:
            lines.append("  store is healthy")
        for issue in self.issues:
            lines.append(f"  {issue.describe()}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.issues and not self.repair:
            lines.append("  run with --repair to fix the issues above")
        return "\n".join(lines)


def _rewrite_jsonl(path: Path, records: list[dict[str, Any]]) -> None:
    """Atomically replace a JSONL log with only its parseable records."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text("".join(dumps_line(record) for record in records), encoding="utf-8")
    os.replace(tmp, path)


def _scan_log(report: DoctorReport, path: Path, label: str) -> None:
    """Check one JSONL log for mid-file corruption and a torn tail."""
    log = read_jsonl_report(path)
    if log.corrupt:
        issue = DoctorIssue(
            "corrupt-lines", f"{label}: {log.corrupt} unparseable mid-file line(s)"
        )
        if report.repair:
            _rewrite_jsonl(path, log.records)
            issue.action = "dropped by atomic rewrite"
        report.issues.append(issue)
    elif log.torn_tail:
        issue = DoctorIssue("torn-tail", f"{label}: unparseable final line")
        if report.repair:
            _rewrite_jsonl(path, log.records)
            issue.action = "dropped by atomic rewrite"
        report.issues.append(issue)


def _supersede_damaged(store: CampaignStore, entry: dict[str, Any]) -> None:
    """Append a shard record that forces re-execution on the next resume."""
    store.record_shard(
        {
            "index": entry.get("index"),
            "start": entry.get("start"),
            "count": entry.get("count"),
            "n_rows": 0,
            "failed": 0,
            "keys_digest": entry.get("keys_digest"),
            "artifact": entry.get("artifact"),
            "status": "damaged",
        }
    )


def _delete_artifact(store: CampaignStore, key: str) -> None:
    shard_store = store.shard_store
    shard_store._path(key).unlink(missing_ok=True)
    shard_store.sidecar_path(key).unlink(missing_ok=True)


def _scan_shard_artifacts(report: DoctorReport, store: CampaignStore) -> set[str]:
    """Verify every recorded-complete shard's artifact; returns referenced keys."""
    from .sharding import _load_shard_frame

    shard_store = store.shard_store
    referenced: set[str] = set()
    entries = store.shard_entries()
    for index in sorted(entries):
        entry = entries[index]
        artifact_key = entry.get("artifact")
        if isinstance(artifact_key, str):
            referenced.add(artifact_key)
        if entry.get("status") != "complete" or not isinstance(artifact_key, str):
            continue
        issue: DoctorIssue | None = None
        checksum = entry.get("checksum")
        if artifact_key not in shard_store:
            issue = DoctorIssue(
                "missing-artifact", f"shard {index}: artifact {artifact_key[:12]} gone"
            )
        elif (
            isinstance(checksum, str)
            and shard_store.sidecar_digest(artifact_key) != checksum
        ):
            issue = DoctorIssue(
                "checksum-mismatch",
                f"shard {index}: artifact {artifact_key[:12]} bytes do not "
                "match the recorded flush checksum",
            )
        else:
            try:
                frame = _load_shard_frame(shard_store, artifact_key)
            except Exception as exc:
                issue = DoctorIssue(
                    "unreadable-artifact",
                    f"shard {index}: artifact {artifact_key[:12]} unreadable ({exc})",
                )
            else:
                if frame is not None and len(frame) != int(entry.get("n_rows", -1)):
                    issue = DoctorIssue(
                        "unreadable-artifact",
                        f"shard {index}: artifact {artifact_key[:12]} has "
                        f"{len(frame)} rows, record says {entry.get('n_rows')}",
                    )
        if issue is not None:
            if report.repair:
                _delete_artifact(store, artifact_key)
                _supersede_damaged(store, entry)
                issue.action = "artifact deleted; shard marked damaged for re-execution"
            report.issues.append(issue)
    return referenced


def _scan_orphans(
    report: DoctorReport, store: CampaignStore, referenced: set[str]
) -> None:
    """Classify unreferenced artifacts: adoptable debris vs torn garbage."""
    from .sharding import _load_shard_frame

    shard_store = store.shard_store
    for key in sorted(shard_store.keys()):
        if key in referenced:
            continue
        try:
            frame = _load_shard_frame(shard_store, key)
        except Exception:
            frame = None
        if frame is not None:
            # A killed worker flushed this but never recorded it; the next
            # resume's recovery probe adopts it for free.  Leave it alone.
            report.notes.append(
                f"orphan artifact {key[:12]} is intact ({len(frame)} rows); "
                "a resume can adopt it"
            )
            continue
        issue = DoctorIssue(
            "corrupt-orphan", f"artifact {key[:12]} is unreferenced and unreadable"
        )
        if report.repair:
            _delete_artifact(store, key)
            issue.action = "deleted"
        report.issues.append(issue)


def _scan_leases(report: DoctorReport, store: CampaignStore) -> None:
    """Flag claims that will never complete: expired or dead-holder leases."""
    results = store.shard_entries()
    for index, record in sorted(store.lease_entries().items()):
        lease = Lease.from_record(record)
        if lease is None:
            continue
        entry = results.get(index)
        if entry is not None and entry.get("status") == "complete":
            continue  # a result record supersedes any lease
        if lease.valid():
            continue
        if lease.deadline <= lease.ts:
            continue  # an explicit release, not a stale claim
        reason = "holder dead" if not lease.holder_alive() else "expired (no heartbeat)"
        issue = DoctorIssue(
            "stale-lease",
            f"shard {index}: lease by {lease.worker} (pid {lease.pid}) {reason}",
        )
        if report.repair:
            store.record_lease(
                Lease(
                    index=index,
                    worker=lease.worker,
                    pid=lease.pid,
                    ts=lease.ts,
                    deadline=lease.ts,
                ).to_record()
            )
            issue.action = "released"
        report.issues.append(issue)


def doctor_store(
    store_dir: str | os.PathLike, repair: bool = False
) -> DoctorReport:
    """Scan (and with ``repair=True``, fix) one campaign store.

    The scan covers every JSONL log (ledger, shard manifest, events,
    quarantine), every recorded-complete shard artifact (existence,
    recorded checksum, parseability, row count), unreferenced artifacts,
    and the lease table.  Repairs are conservative: they only delete
    provably damaged state and only supersede records through the same
    append-only channels the runners use, so a repaired store resumes
    through the ordinary recovery machinery.
    """
    store = CampaignStore(store_dir)
    store.load_spec()  # not a campaign store -> CampaignError, like the CLI
    report = DoctorReport(store_directory=str(store.directory), repair=repair)

    _scan_log(report, store.ledger_path, "ledger.jsonl")
    _scan_log(report, store.shards_path, "shards.jsonl")
    _scan_log(report, store.events_path, "events.jsonl")
    _scan_log(report, store.quarantine_path, "quarantine.jsonl")

    referenced = _scan_shard_artifacts(report, store)
    _scan_orphans(report, store, referenced)
    _scan_leases(report, store)

    quarantined = store.quarantine_keys()
    if quarantined:
        report.notes.append(
            f"{len(quarantined)} unit(s) quarantined (campaign is degraded); "
            "delete quarantine.jsonl to retry them"
        )
    return report
