"""Batched campaign execution over the parallel executor.

The workers are module-level functions of one picklable payload tuple, so
the process back-end of :mod:`repro.parallel` can ship them to a pool.  Each
unit is simulated, rendered to SPEC-report text and parsed back through the
production parser/validator — the same round-trip the corpus pipeline uses —
so campaign rows are bit-for-bit the schema :func:`repro.core.dataset`
produces.  Worker failures are captured per unit and recorded in the store
ledger; one bad scenario never aborts the campaign.

Execution strategy: by default each worker simulates its whole chunk of
units through the vectorized :class:`~repro.simulator.batch.BatchDirector`
(grouped by shared :class:`SimulationOptions`; results are bit-for-bit what
the scalar path would produce, so cache keys and cached rows are strategy
independent).  ``batch=False`` forces the scalar per-unit path, and a chunk
whose batch simulation fails falls back to scalar execution so errors stay
attributed to individual units.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, replace

from ..errors import ReproError
from ..faults.plan import fault_point
from ..frame import Frame
from ..market.catalog import Catalog, default_catalog
from ..parallel import ParallelConfig, parallel_map
from ..parser.resultfile import parse_result_text
from ..parser.validation import validate_run
from ..reportgen.textreport import render_report
from ..session.policy import ExecutionPolicy
from ..simulator.batch import BatchDirector
from ..simulator.director import RunDirector
from .aggregate import assemble_frame
from .spec import CampaignSpec, CampaignUnit
from .store import CampaignStore

__all__ = [
    "CampaignResult",
    "dispatch_simulations",
    "execute_units",
    "run_campaign",
    "resume_campaign",
]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    frame: Frame
    total_units: int
    cache_hits: int
    simulated: int
    failures: tuple[tuple[str, str], ...]  # (unit_id, error)
    store_directory: str

    @property
    def completed(self) -> int:
        return len(self.frame)

    def describe(self) -> str:
        lines = [
            f"{self.total_units} units: {self.cache_hits} cached, "
            f"{self.simulated} simulated, {len(self.failures)} failed "
            f"({self.completed} rows in {self.store_directory})"
        ]
        for unit_id, error in self.failures:
            lines.append(f"  failed {unit_id}: {error}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Worker (module-level: the process back-end pickles it by reference)
# --------------------------------------------------------------------------- #
def _roundtrip_result(key: str, plan, result) -> tuple[str, dict | None, str | None]:
    """Render, re-parse and validate one simulated run into a cache row."""
    try:
        # Inside the try: a raise-kind fault becomes a per-unit error row on
        # both the scalar and the vectorized batch path, like a real failure.
        fault_point("unit.execute", ctx=key)
        parsed = parse_result_text(render_report(result), file_name=plan.file_name)
        report = validate_run(parsed.record)
        if not report.is_valid:
            return key, None, f"validation: {report.primary_issue}"
        return key, parsed.record.to_dict(), None
    except ReproError as exc:
        return key, None, f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # pragma: no cover - defensive catch-all
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        return key, None, detail


def _simulate_unit(payload: tuple) -> tuple[str, dict | None, str | None]:
    """Simulate one unit; returns ``(key, row, error)``.

    ``catalog`` travels inside the payload only for non-default catalogs;
    ``None`` keeps payloads small for the common case.
    """
    key, plan, options, seed, catalog = payload
    try:
        director = RunDirector(
            catalog=catalog or default_catalog(), options=options, corpus_seed=seed
        )
        result = director.run(plan)
    except ReproError as exc:
        return key, None, f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # pragma: no cover - defensive catch-all
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        return key, None, detail
    return _roundtrip_result(key, plan, result)


def _simulate_chunk(payload: tuple) -> list[tuple[str, dict | None, str | None]]:
    """Simulate one same-options chunk of units through the batch kernel.

    The payload is ``(units, options, catalog)`` with ``units`` a tuple of
    ``(key, plan, seed)``.  If the vectorized simulation of the chunk fails
    for any reason the chunk is re-run unit by unit through the scalar
    worker, so a single bad scenario is reported against its own key instead
    of poisoning its neighbours.
    """
    units, options, catalog = payload
    try:
        director = BatchDirector(catalog=catalog or default_catalog(), options=options)
        results = director.run_batch(
            [plan for _, plan, _ in units], seeds=[seed for _, _, seed in units]
        )
    except Exception:
        return [
            _simulate_unit((key, plan, options, seed, catalog))
            for key, plan, seed in units
        ]
    return [
        _roundtrip_result(key, plan, result)
        for (key, plan, _), result in zip(units, results)
    ]


def _chunk_payloads(
    units: list[CampaignUnit], chunk_size: int, catalog: Catalog | None
) -> list[tuple]:
    """Group units by shared options, then split into worker-sized chunks."""
    groups: dict = {}
    for unit in units:
        groups.setdefault(unit.options, []).append(unit)
    payloads = []
    for options, group in groups.items():
        for start in range(0, len(group), chunk_size):
            chunk = group[start : start + chunk_size]
            payloads.append(
                (tuple((u.key, u.plan, u.seed) for u in chunk), options, catalog)
            )
    return payloads


def dispatch_simulations(
    units: list[CampaignUnit],
    config: ParallelConfig,
    batch: bool,
    catalog: Catalog | None,
) -> list[tuple[str, dict | None, str | None]]:
    """Run one batch of units through the selected kernel.

    The single dispatch point shared by :func:`execute_units` and the
    sharded streaming runner, so kernel-selection semantics (chunk payload
    grouping, the no-re-chunk outer map) can never diverge between the
    resident and streaming paths.
    """
    from ..obs.trace import get_tracer

    with get_tracer().span(
        "campaign.dispatch", units=len(units), batch=batch, backend=config.backend
    ):
        if batch:
            # One payload per worker chunk: the chunk itself is vectorized, so
            # the outer map must not re-chunk it.
            payloads = _chunk_payloads(units, config.chunk_size, catalog)
            return [
                outcome
                for chunk in parallel_map(
                    _simulate_chunk, payloads, config=replace(config, chunk_size=1)
                )
                for outcome in chunk
            ]
        payloads = [
            (unit.key, unit.plan, unit.options, unit.seed, catalog) for unit in units
        ]
        return parallel_map(_simulate_unit, payloads, config=config)


def execute_units(
    units: tuple[CampaignUnit, ...],
    store: CampaignStore,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    max_units: int | None = None,
    batch: bool = True,
    policy: ExecutionPolicy | None = None,
) -> CampaignResult:
    """Run whatever is missing from the store's cache and assemble the frame.

    ``max_units`` bounds the number of *new* simulations this invocation
    performs (smoke runs; also how the tests emulate an interrupted
    campaign) — remaining units stay pending for the next run.  ``batch``
    selects the vectorized :class:`BatchDirector` execution strategy
    (default); pass ``False`` to force the scalar per-unit path.  A
    :class:`~repro.session.policy.ExecutionPolicy` subsumes both knobs:
    when given, it overrides ``parallel`` and ``batch``.
    """
    if policy is not None:
        parallel = policy.parallel_config()
        batch = policy.use_batch_kernel
    cache = store.cache
    rows_by_key: dict[str, dict] = {}
    pending: list[CampaignUnit] = []
    for unit in units:
        row = cache.get(unit.key)
        if row is not None:
            rows_by_key[unit.key] = row
        else:
            pending.append(unit)
    cache_hits = len(rows_by_key)

    if max_units is not None:
        pending = pending[:max_units]

    config = parallel or ParallelConfig(backend="serial")
    if config.backend != "serial":
        # The executor's serial-fallback threshold is tuned for cheap
        # per-file work; a campaign unit is a whole benchmark simulation, so
        # even a handful of units is worth the pool — and the batch size
        # below would otherwise sit exactly at the default threshold,
        # silently running every batch serially.
        config = replace(config, serial_threshold=0)
    # Units are executed in batches and each batch is persisted before the next
    # starts: a campaign killed mid-run keeps every completed batch, so
    # ``resume`` only re-simulates from the last flush onward.
    batch_size = max(config.chunk_size * config.effective_workers, 1)

    failures: list[tuple[str, str]] = []
    by_key = {unit.key: unit for unit in units}
    for start in range(0, len(pending), batch_size):
        flush_units = pending[start : start + batch_size]
        outcomes = dispatch_simulations(flush_units, config, batch, catalog)
        for key, row, error in outcomes:
            unit = by_key[key]
            if error is None:
                cache.put(key, row)
                rows_by_key[key] = row
                store.record(unit)
            else:
                failures.append((unit.unit_id, error))
                store.record(unit, error=error)

    frame = assemble_frame(units, rows_by_key)
    return CampaignResult(
        frame=frame,
        total_units=len(units),
        cache_hits=cache_hits,
        simulated=len(pending) - len(failures),
        failures=tuple(failures),
        store_directory=str(store.directory),
    )


def run_campaign(
    spec: CampaignSpec,
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    max_units: int | None = None,
    batch: bool = True,
    policy: ExecutionPolicy | None = None,
) -> CampaignResult:
    """Expand ``spec``, execute missing units, return the campaign frame.

    Completed units are content-hash cache hits and are never re-simulated;
    invoking this twice over the same store performs zero new simulations
    the second time.  ``batch=False`` opts out of the vectorized kernel;
    a ``policy`` overrides both ``parallel`` and ``batch``.
    """
    units = spec.expand(catalog)
    store = CampaignStore(store_dir)
    store.initialize(spec, units)
    return execute_units(
        units, store, parallel=parallel, catalog=catalog, max_units=max_units,
        batch=batch, policy=policy,
    )


def resume_campaign(
    store_dir: str | os.PathLike,
    parallel: ParallelConfig | None = None,
    catalog: Catalog | None = None,
    max_units: int | None = None,
    batch: bool = True,
    policy: ExecutionPolicy | None = None,
) -> CampaignResult:
    """Continue an interrupted campaign from its on-disk spec snapshot."""
    store = CampaignStore(store_dir)
    spec = store.load_spec()
    units = spec.expand(catalog)
    return execute_units(
        units, store, parallel=parallel, catalog=catalog, max_units=max_units,
        batch=batch, policy=policy,
    )
