"""Campaign engine: declarative scenario sweeps with content-hash caching.

A *campaign* explores many simulation scenarios at once: a
:class:`CampaignSpec` declares sweeps over catalog generations, node counts,
:class:`~repro.simulator.director.SimulationOptions` fields, load-level sets
and seeds; expansion produces content-addressed units; the runner executes
the missing ones in parallel; results accumulate into one analysis
:class:`~repro.frame.Frame` that flows straight into
:func:`repro.api.analyze`.

Layers
------
* :mod:`repro.campaign.spec` — declarative sweep spec with grid/zip expansion,
* :mod:`repro.campaign.cache` — content-hash keys and the on-disk result store,
* :mod:`repro.campaign.runner` — batched parallel execution with per-unit
  error capture,
* :mod:`repro.campaign.aggregate` — incremental columnar frame assembly,
* :mod:`repro.campaign.store` — resumable campaign directories (spec
  snapshot, manifest, ledger, shard manifest),
* :mod:`repro.campaign.sharding` — the bounded-memory streaming path:
  lazy fixed-size shards, each flushed to a columnar ``.npz`` artifact,
  executed serially or fanned out across a worker pool,
* :mod:`repro.campaign.leases` — lease records in the shard ledger that
  let cooperating worker processes claim shards and reclaim the work of
  crashed peers (with heartbeat renewal distinguishing slow from hung),
* :mod:`repro.campaign.reduce` — online (Welford) reducers that fold the
  per-shard frames into campaign aggregates without the full result set
  ever being resident,
* :mod:`repro.campaign.doctor` — store health checks and conservative
  repair behind ``spectrends campaign doctor`` (torn logs, checksum
  mismatches, orphaned artifacts, stale leases).

Quickstart
----------
::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="epyc-vs-xeon",
        sweep={
            "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
            "seed": [1, 2, 3],
        },
    )
    result = run_campaign(spec, "campaign-store/")
    print(result.describe())
"""

from .aggregate import FrameAccumulator, assemble_frame, summarize_store
from .cache import ResultCache, unit_key
from .doctor import DoctorIssue, DoctorReport, doctor_store
from .leases import DEFAULT_LEASE_TTL, Lease, LeaseHeartbeat, LeaseLedger
from .reduce import FrameReducer, OnlineMoments, reduce_frame
from .runner import CampaignResult, execute_units, resume_campaign, run_campaign
from .sharding import (
    DEFAULT_SHARD_SIZE,
    Shard,
    ShardOutcome,
    StreamingCampaignResult,
    iter_shards,
    resume_streaming,
    run_worker,
    scan_shards,
    stream_campaign,
)
from .spec import OPTION_AXES, PLAN_AXES, CampaignSpec, CampaignUnit
from .store import CampaignStatus, CampaignStore

__all__ = [
    "PLAN_AXES",
    "OPTION_AXES",
    "DEFAULT_SHARD_SIZE",
    "CampaignSpec",
    "CampaignUnit",
    "unit_key",
    "ResultCache",
    "FrameAccumulator",
    "assemble_frame",
    "summarize_store",
    "CampaignResult",
    "execute_units",
    "run_campaign",
    "resume_campaign",
    "Shard",
    "ShardOutcome",
    "StreamingCampaignResult",
    "iter_shards",
    "scan_shards",
    "stream_campaign",
    "resume_streaming",
    "run_worker",
    "DEFAULT_LEASE_TTL",
    "Lease",
    "LeaseHeartbeat",
    "LeaseLedger",
    "DoctorIssue",
    "DoctorReport",
    "doctor_store",
    "FrameReducer",
    "OnlineMoments",
    "reduce_frame",
    "CampaignStatus",
    "CampaignStore",
]
