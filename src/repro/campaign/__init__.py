"""Campaign engine: declarative scenario sweeps with content-hash caching.

A *campaign* explores many simulation scenarios at once: a
:class:`CampaignSpec` declares sweeps over catalog generations, node counts,
:class:`~repro.simulator.director.SimulationOptions` fields, load-level sets
and seeds; expansion produces content-addressed units; the runner executes
the missing ones in parallel; results accumulate into one analysis
:class:`~repro.frame.Frame` that flows straight into
:func:`repro.api.analyze`.

Layers
------
* :mod:`repro.campaign.spec` — declarative sweep spec with grid/zip expansion,
* :mod:`repro.campaign.cache` — content-hash keys and the on-disk result store,
* :mod:`repro.campaign.runner` — batched parallel execution with per-unit
  error capture,
* :mod:`repro.campaign.aggregate` — incremental columnar frame assembly,
* :mod:`repro.campaign.store` — resumable campaign directories (spec
  snapshot, manifest, ledger).

Quickstart
----------
::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="epyc-vs-xeon",
        sweep={
            "cpu_model": ["EPYC 9654", "Xeon Platinum 8480+"],
            "seed": [1, 2, 3],
        },
    )
    result = run_campaign(spec, "campaign-store/")
    print(result.describe())
"""

from .aggregate import FrameAccumulator, assemble_frame
from .cache import ResultCache, unit_key
from .runner import CampaignResult, execute_units, resume_campaign, run_campaign
from .spec import OPTION_AXES, PLAN_AXES, CampaignSpec, CampaignUnit
from .store import CampaignStatus, CampaignStore

__all__ = [
    "PLAN_AXES",
    "OPTION_AXES",
    "CampaignSpec",
    "CampaignUnit",
    "unit_key",
    "ResultCache",
    "FrameAccumulator",
    "assemble_frame",
    "CampaignResult",
    "execute_units",
    "run_campaign",
    "resume_campaign",
    "CampaignStatus",
    "CampaignStore",
]
