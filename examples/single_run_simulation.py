#!/usr/bin/env python3
"""Simulate a single SPECpower_ssj2008 run in detail.

Uses the event-driven workload engine (explicit batch scheduling) rather
than the fast analytic mode, prints the per-interval measurements the way a
SPEC report tabulates them, renders the report text, parses it back and
verifies the round trip — a miniature version of the whole reproduction on
one system.

Run with ``python examples/single_run_simulation.py [cpu_model]``, e.g.
``python examples/single_run_simulation.py "EPYC 9754"``.
"""

from __future__ import annotations

import sys

from repro.core.proportionality import attach_proportionality
from repro.market import FleetSampler, default_catalog
from repro.parser import parse_result_text, records_to_frame, validate_run
from repro.reportgen import render_report
from repro.simulator import RunDirector, SimulationOptions


def main() -> int:
    cpu_model = sys.argv[1] if len(sys.argv) > 1 else "EPYC 9754"
    catalog = default_catalog()
    entry = catalog.get(cpu_model)
    print(f"System under test: 2x {entry.cpu.describe()}")

    # Borrow a plan from the sampler and pin it to the requested CPU.
    from dataclasses import replace

    fleet = FleetSampler(total_parsed_runs=40, catalog=catalog).sample(seed=1)
    plan = replace(
        fleet.analysable()[0],
        cpu_model=cpu_model,
        sockets=2,
        memory_gb=entry.typical_memory_gb_per_socket * 2,
        psu_rating_w=1100.0,
    )

    director = RunDirector(
        catalog=catalog,
        options=SimulationOptions(fidelity="event", interval_duration_s=60.0),
    )
    result = director.run(plan)

    print("\nTarget load | actual load |    ssj_ops | avg power (W) | ssj_ops/W")
    for level in result.load_levels:
        print(f"   {level.target_load * 100:6.0f} %  |   {level.actual_load * 100:6.1f} %  |"
              f" {level.ssj_ops:10,.0f} | {level.average_power_w:13.1f} |"
              f" {level.performance_to_power_ratio:9,.0f}")
    idle = result.active_idle
    print(f"  Active idle |             | {0:10,.0f} | {idle.average_power_w:13.1f} |")
    print(f"\nOverall ssj_ops/W: {result.overall_efficiency:,.0f}")

    # Energy proportionality of this one run.
    frame = attach_proportionality(records_to_frame(
        [parse_result_text(render_report(result), "single.txt").record]
    ))
    row = frame.row(0)
    print(f"EP score {row['ep_score']:.3f}, dynamic range {row['dynamic_range']:.3f}, "
          f"max deviation from proportionality {row['linear_deviation']:.3f}")

    # Round trip through the report format.
    text = render_report(result)
    record = parse_result_text(text, "single.txt").record
    assert validate_run(record).is_valid
    print("\nRendered report parses back cleanly; first lines:")
    print("\n".join(text.splitlines()[:12]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
