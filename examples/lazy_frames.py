#!/usr/bin/env python3
"""Lazy frames walk-through: plans, pushdown, and out-of-core scans.

Streams a small campaign into a sharded store, then answers questions
about it three ways:

1. ``Frame.lazy()`` — the optimizer's ``explain()`` output next to the
   collected result, which is bit-identical to the eager chain,
2. ``scan_shards()`` / ``summarize_store()`` — the same plan run straight
   off the store's ``.npz`` shard artifacts, with the scan's byte counter
   showing how much pushdown + pruning actually avoided reading,
3. ``session.dataset(mmap=True)`` — a warm dataset load whose numeric
   columns are memory-mapped over the artifact instead of copied, visible
   in ``memory_usage(deep=True)``'s resident/mapped split.

See the top-level README.md ("Lazy frames & out-of-core columns") and the
matching ``spectrends campaign query`` CLI.

Run with ``python examples/lazy_frames.py [store_dir]``.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import Session
from repro.campaign import CampaignSpec, scan_shards, stream_campaign, summarize_store
from repro.frame import SCAN_STATS, col

SPEC = CampaignSpec(
    name="lazy-demo",
    sweep={
        "cpu_model": ["Xeon Platinum 8480+", "EPYC 9654"],
        "seed": [1, 2, 3, 4],
    },
    base={"load_levels": [1.0, 0.5, 0.0]},
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store", nargs="?", default=None,
                        help="campaign store directory (default: temporary)")
    args = parser.parse_args()
    store = Path(args.store) if args.store else Path(tempfile.mkdtemp(prefix="lazy-"))

    result = stream_campaign(SPEC, store, shard_size=2)
    print(f"Campaign {SPEC.name!r}: {result.describe()}")

    # -- 1. lazy plans over an in-memory frame ---------------------------- #
    # Campaign frames carry one SPEC-style report row per unit, so the
    # interesting columns are report fields (power_100, power_idle,
    # overall_ssj_ops_per_watt) plus the campaign_* sweep echo columns.
    frame = result.frame()
    spec = {"ops_per_w": ("overall_ssj_ops_per_watt", "mean"),
            "full_load_w": ("power_100", "mean"),
            "runs": ("campaign_seed", "count")}
    plan = (
        frame.lazy()
        .filter(col("power_idle") > 0.0)
        .groupby(["campaign_cpu_model"])
        .agg(spec)
    )
    print("\nOptimized plan (note the fused filter->groupby):")
    print(plan.explain())
    summary = plan.collect()
    eager = (
        frame.filter(frame["power_idle"] > 0.0)
        .groupby(["campaign_cpu_model"])
        .agg(spec)
    )
    print(f"collect() equals the eager chain: {summary.equals(eager)}")

    # -- 2. the same question, straight off the shard artifacts ----------- #
    SCAN_STATS.reset()
    scanned = (
        scan_shards(store)
        .filter(col("campaign_cpu_model") == "EPYC 9654")
        .select(["campaign_cpu_model", "power_100"])
        .collect()
    )
    sidecar_bytes = sum(p.stat().st_size for p in store.rglob("*.npz"))
    print(f"\nscan_shards: {len(scanned)} matching rows, "
          f"{SCAN_STATS.bytes_read} of {sidecar_bytes} artifact bytes read")
    print(summarize_store(
        store, keys=["campaign_cpu_model"],
        metrics={"full_load_w": ("power_100", "mean")},
        where=col("campaign_seed") <= 2,
    ).to_string())

    # -- 3. memory-mapped dataset loads ----------------------------------- #
    # mmap needs a persistent workspace: ephemeral sessions have no artifact
    # on disk to map, so they quietly fall back to the eager load.
    with Session(workspace=store / "workspace") as session:
        session.dataset(runs=60).result()          # cold: simulate + persist
        mapped = session.dataset(runs=60, mmap=True).result()  # warm: map it
        usage = mapped.memory_usage(deep=True)
        resident = int(usage["resident"].values.sum())
        on_disk = int(usage["mapped"].values.sum())
        print(f"\nmmap dataset: {resident} resident bytes vs "
              f"{on_disk} mapped bytes across {len(usage)} columns")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
