#!/usr/bin/env python3
"""Quickstart: generate a small synthetic SPEC Power corpus and analyse it.

This walks the full pipeline of the reproduction in one minute, through the
Session API (one composable, content-hash-cached entry point):

1. generate a corpus of SPEC-style result files (a scaled-down stand-in for
   the 1017 reports published on spec.org),
2. parse + validate it into the flat run table,
3. apply the paper's filter pipeline,
4. print the headline paper-vs-measured findings.

Run with ``python examples/quickstart.py [workspace_dir]``.  Pass a
persistent workspace and run it twice: the second invocation reloads every
artifact from the content-addressed store instead of recomputing it.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import Session


def main() -> int:
    workspace = (
        Path(sys.argv[1]) if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="specpower-"))
    )

    with Session(workspace=workspace) as session:
        print(f"Generating a 200-run synthetic corpus under {workspace} ...")
        corpus = session.corpus(runs=200, seed=7)
        print("  " + corpus.result().describe())

        print("Parsing and deriving the analysis columns ...")
        runs = session.dataset().result()
        print(f"  parsed {len(runs)} runs x {len(runs.columns)} columns")

        print("Running the paper's analysis pipeline ...")
        result = session.analysis(table1=True).result()
        print()
        print(result.summary())

        # The filtered frame is a regular Frame: ad-hoc questions are one-liners.
        filtered = result.filtered
        by_vendor = filtered.groupby("cpu_vendor").agg(
            {"runs": ("run_id", "size"), "mean_efficiency": ("overall_efficiency", "mean")}
        )
        print("Mean overall efficiency by CPU vendor (filtered runs):")
        print(by_vendor.to_string())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
