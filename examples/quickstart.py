#!/usr/bin/env python3
"""Quickstart: generate a small synthetic SPEC Power corpus and analyse it.

This walks the full pipeline of the reproduction in one minute:

1. generate a corpus of SPEC-style result files (a scaled-down stand-in for
   the 1017 reports published on spec.org),
2. parse + validate it into the flat run table,
3. apply the paper's filter pipeline,
4. print the headline paper-vs-measured findings.

Run with ``python examples/quickstart.py [output_dir]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import analyze, generate_corpus, load_dataset


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="specpower-"))
    corpus_dir = output / "corpus"

    print(f"Generating a 200-run synthetic corpus under {corpus_dir} ...")
    report = generate_corpus(corpus_dir, total_parsed_runs=200, seed=7)
    print("  " + report.describe())

    print("Parsing and deriving the analysis columns ...")
    runs = load_dataset(corpus_dir)
    print(f"  parsed {len(runs)} runs x {len(runs.columns)} columns")

    print("Running the paper's analysis pipeline ...")
    result = analyze(runs, include_table1=True)
    print()
    print(result.summary())

    # The filtered frame is a regular Frame: ad-hoc questions are one-liners.
    filtered = result.filtered
    by_vendor = filtered.groupby("cpu_vendor").agg(
        {"runs": ("run_id", "size"), "mean_efficiency": ("overall_efficiency", "mean")}
    )
    print("Mean overall efficiency by CPU vendor (filtered runs):")
    print(by_vendor.to_string())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
