#!/usr/bin/env python3
"""Fleet generation at paper scale and the Section II dataset funnel.

Generates the full 1017-file corpus (960 defect-free runs plus 57 defective
submissions), parses it back, and prints the dataset funnel next to the
paper's numbers:

    1017 downloaded -> 960 parsed -> 676 analysed

Run with ``python examples/fleet_generation.py [output_dir] [--runs N]``.
Generating the full corpus takes on the order of ten seconds; pass
``--runs 240`` for a quicker scaled-down version.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import Session
from repro.core import apply_paper_filters, figure1
from repro.session import ExecutionPolicy


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default=None)
    parser.add_argument("--runs", type=int, default=960,
                        help="number of defect-free runs (default: 960, as in the paper)")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    output = Path(args.output) if args.output else Path(tempfile.mkdtemp(prefix="specpower-fleet-"))
    corpus_dir = output / "corpus"
    session = Session(
        policy=ExecutionPolicy(mode="process", workers=args.jobs, chunk_size=64)
    )

    print(f"Generating {args.runs} clean runs (plus defective submissions) in {corpus_dir} ...")
    corpus = session.corpus(runs=args.runs, seed=2024, directory=corpus_dir)
    print("  " + corpus.result().describe())

    print("Parsing and validating ...")
    dataset = session.dataset(corpus=corpus)
    parse_report = dataset.parse_report()
    print("  " + parse_report.describe())
    print("  rejection reasons (paper: 40 not accepted, 3 ambiguous dates, 4 implausible dates,")
    print("                     3 ambiguous CPUs, 1 missing node count, 5+1 core/thread issues):")
    for reason, count in sorted(parse_report.rejection_counts().items()):
        print(f"    {reason:28s} {count}")

    runs = dataset.result()
    filtered, funnel = apply_paper_filters(runs)
    print()
    print("Analysis filter funnel (paper removes 9 / 6 / 269, keeping 676):")
    print(funnel.describe())

    figures_dir = output / "figures"
    artifact = figure1(runs)
    written = artifact.save(figures_dir)
    print()
    print(f"Figure 1 written to: {', '.join(str(p) for p in written)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
