#!/usr/bin/env python3
"""Campaign engine walk-through: a 2-axis generation x seed sweep.

Declares a sweep over three server generations and three seeds (nine units),
executes it into a resumable store through a :class:`repro.Session`, then
re-runs the identical spec to show the content-hash cache replaying the
campaign with zero new simulations.  The aggregated frame flows straight
into the paper's analysis pipeline, and ``Frame.memory_usage()`` shows what
the aggregation costs.

See the top-level README.md ("Campaign engine" section) for the declarative
spec format and the matching ``spectrends campaign run|status|resume`` CLI.

Run with ``python examples/campaign_sweep.py [store_dir]``; pass a persistent
directory to see warm-cache behaviour across invocations.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro import Session
from repro.campaign import CampaignSpec, CampaignStore
from repro.session.policy import ExecutionPolicy

SPEC = CampaignSpec(
    name="generation-sweep",
    sweep={
        "cpu_model": ["Xeon X5670", "Xeon Platinum 8480+", "EPYC 9654"],
        "seed": [1, 2, 3],
    },
    # A shortened load ladder trades per-level resolution for sweep speed.
    base={"load_levels": [1.0, 0.7, 0.5, 0.2, 0.1, 0.0]},
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store", nargs="?", default=None,
                        help="campaign store directory (default: temporary)")
    args = parser.parse_args()
    store = Path(args.store) if args.store else Path(tempfile.mkdtemp(prefix="campaign-"))

    session = Session()

    print(f"Campaign {SPEC.name!r}: {SPEC.n_units} units -> {store}")
    start = time.perf_counter()
    cold = session.campaign(SPEC, store=store).result()
    print(f"  cold: {cold.describe()}  [{time.perf_counter() - start:.2f}s]")

    # A fresh session proves the warm replay comes from the store on disk,
    # not from the first session's in-memory memo.
    session.close()
    session = Session()
    start = time.perf_counter()
    warm = session.campaign(SPEC, store=store).result()
    print(f"  warm: {warm.describe()}  [{time.perf_counter() - start:.2f}s]")
    assert warm.simulated == 0, "second invocation must be pure cache hits"

    print("\n" + CampaignStore(store).status().describe())

    frame = warm.frame
    print(f"\nCampaign frame: {frame.shape[0]} rows x {frame.shape[1]} columns, "
          f"{frame.nbytes / 1024:.1f} KiB")
    print(frame.memory_usage().head(5).to_string())

    print("\nPer-generation efficiency (ssj_ops/W, mean over seeds):")
    by_gen = (
        frame.groupby("campaign_cpu_model")
        .agg({"overall_ssj_ops_per_watt": "mean"})
        .sort_by("overall_ssj_ops_per_watt")
    )
    print(by_gen.to_string())

    result = session.analyze_frame(frame, table1=False)
    print(f"\nthe analysis pipeline accepted the campaign frame: "
          f"{len(result.filtered)} runs after the paper's filters")
    session.close()

    # Sweeps too large to hold resident stream shard by shard instead:
    # each shard's rows are flushed to a columnar store artifact before the
    # next shard starts, so memory stays O(shard_size) while frame() and
    # the online aggregate remain bit-identical to the unsharded run (see
    # README "Scaling campaigns").
    with Session(policy=ExecutionPolicy(shard_size=4)) as streaming_session:
        streamed = streaming_session.campaign(SPEC, store=store).result()
        print(f"\nstreamed: {streamed.describe()}")
        assert streamed.frame().equals(frame), "sharding must not change a row"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
