#!/usr/bin/env python3
"""Active-idle power analysis (Figures 5 and 6, Section IV).

Reproduces the idle-fraction trend, the extrapolated idle quotient, and the
Section IV correlation exploration of recent runs — including the per-vendor
confounders (core counts, nominal frequency spread) the paper reports.

Run with ``python examples/idle_power_analysis.py [corpus_dir]``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import Session
from repro.core import apply_paper_filters, figure5, figure6, run_correlation_study
from repro.core.trends import idle_fraction_milestones
from repro.stats import bin_by_year


def main() -> int:
    session = Session()
    if len(sys.argv) > 1 and Path(sys.argv[1]).is_dir() and list(Path(sys.argv[1]).glob("*.txt")):
        dataset = session.dataset(corpus=Path(sys.argv[1]))
    else:
        corpus_dir = Path(tempfile.mkdtemp(prefix="specpower-idle-")) / "corpus"
        print(f"Generating a 400-run corpus in {corpus_dir} ...")
        dataset = session.dataset(
            corpus=session.corpus(runs=400, seed=13, directory=corpus_dir)
        )

    runs = dataset.result()
    filtered, _ = apply_paper_filters(runs)

    print("Idle fraction milestones (paper: 70.1 % in 2006, 15.7 % minimum in 2017, "
          "25.7 % in 2024):")
    for finding in idle_fraction_milestones(filtered):
        print("  " + finding.describe())

    print("\nYearly mean idle fraction and extrapolated idle quotient:")
    idle_by_year = bin_by_year(filtered, "idle_fraction")
    quotient_by_year = bin_by_year(filtered, "extrapolated_idle_quotient")
    quotient_lookup = {row["hw_avail_year"]: row for row in quotient_by_year.to_records()}
    for row in idle_by_year.to_records():
        year = row["hw_avail_year"]
        quotient = quotient_lookup.get(year, {}).get("mean")
        print(f"  {year}: idle fraction {row['mean'] * 100:5.1f} %   "
              f"extrapolated idle quotient {quotient:4.2f}   (n={row['count']})")

    print("\nSection IV correlation exploration (runs since 2021):")
    study = run_correlation_study(filtered, since_year=2021)
    print(study.describe())
    print("  conclusive: " + ("yes" if study.is_conclusive() else
                              "no — matches the paper's 'remains inconclusive'"))

    figures_dir = corpus_dir.parent / "figures"
    for artifact in (figure5(filtered), figure6(filtered)):
        for path in artifact.save(figures_dir):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
